//! Unfurling: format × protocol → looplet nest (paper §4 and Figure 3).
//!
//! Each bound level knows how to describe one of its fibers as a looplet
//! nest.  The nests below are direct transcriptions of the paper's Figure 3
//! (formats) and Figure 6 (protocols), adapted to 0-based coordinates and
//! with the implementation-level `Thunk`/`BindExtent` wrappers made
//! explicit.

use finch_cin::Protocol;
use finch_ir::{Expr, Names, Stmt, Var};
use finch_looplets::{Case, Looplet, Phase, Seek, Stepped};

use crate::bound::{BoundLevel, BoundTensor, UnfurlLeaf};

type Nest = Looplet<UnfurlLeaf>;

impl BoundTensor {
    /// Unfurl level `level` of this tensor, for the fiber at parent position
    /// `parent_pos`, under the requested protocol.
    ///
    /// Fresh runtime variables (positions, seek targets) are drawn from
    /// `names`.
    ///
    /// # Panics
    ///
    /// Panics when `level` is out of range for this tensor.
    pub fn unfurl(
        &self,
        level: usize,
        parent_pos: &Expr,
        protocol: Protocol,
        names: &mut Names,
    ) -> Nest {
        assert!(level < self.ndim(), "level {level} out of range");
        let fill =
            || Looplet::Run { body: Box::new(Looplet::Leaf(UnfurlLeaf::Value(self.fill_expr()))) };
        match self.levels()[level].clone() {
            BoundLevel::Dense { size } => self.unfurl_dense(level, parent_pos, size, names),
            BoundLevel::Bitmap { size, tbl } => {
                self.unfurl_bitmap(level, parent_pos, size, tbl, names)
            }
            BoundLevel::SparseList { size: _, pos, idx } => match protocol {
                Protocol::Gallop => {
                    self.unfurl_list_gallop(level, parent_pos, pos, idx, names, fill())
                }
                Protocol::Locate if level + 1 == self.ndim() => {
                    self.unfurl_list_locate(level, parent_pos, pos, idx, names)
                }
                _ => self.unfurl_list_walk(level, parent_pos, pos, idx, names, fill()),
            },
            BoundLevel::SparseBand { size: _, pos, start } => {
                self.unfurl_band(level, parent_pos, pos, start, names, fill())
            }
            BoundLevel::SparseVbl { size: _, pos, idx, ofs } => {
                self.unfurl_vbl(level, parent_pos, pos, idx, ofs, names, fill())
            }
            BoundLevel::RunLength { size: _, pos, idx } => {
                self.unfurl_rle(level, parent_pos, pos, idx, names)
            }
            BoundLevel::PackBits { size: _, pos, idx, ofs } => {
                self.unfurl_packbits(level, parent_pos, pos, idx, ofs, names)
            }
            BoundLevel::Triangular { size: _ } => {
                self.unfurl_triangular(level, parent_pos, names, fill())
            }
            BoundLevel::Symmetric { size: _ } => self.unfurl_symmetric(level, parent_pos, names),
            BoundLevel::Ragged { size: _, pos } => {
                self.unfurl_ragged(level, parent_pos, pos, names, fill())
            }
        }
    }

    /// Figure 6b: a locate protocol for a dense level.
    fn unfurl_dense(
        &self,
        level: usize,
        parent_pos: &Expr,
        size: usize,
        names: &mut Names,
    ) -> Nest {
        let j = names.fresh(&format!("{}_j{}", self.name(), level));
        let pos = Expr::add(Expr::mul(parent_pos.clone(), Expr::int(size as i64)), Expr::Var(j))
            .simplified();
        Looplet::Lookup { var: j, body: Box::new(Looplet::Leaf(self.child_leaf(level, pos))) }
    }

    /// Figure 6c: a locate protocol for a bitmap level, with a runtime
    /// zero check so the compiler can specialise the zero case.
    fn unfurl_bitmap(
        &self,
        level: usize,
        parent_pos: &Expr,
        size: usize,
        tbl: finch_ir::BufId,
        names: &mut Names,
    ) -> Nest {
        let j = names.fresh(&format!("{}_j{}", self.name(), level));
        let pos = Expr::add(Expr::mul(parent_pos.clone(), Expr::int(size as i64)), Expr::Var(j))
            .simplified();
        let leaf = match self.child_leaf(level, pos.clone()) {
            UnfurlLeaf::Value(value) => {
                UnfurlLeaf::Value(Expr::select(Expr::load(tbl, pos), value, self.fill_expr()))
            }
            sub => sub,
        };
        Looplet::Lookup { var: j, body: Box::new(Looplet::Leaf(leaf)) }
    }

    /// Figure 3d: the walking (follower) protocol for a sparse list.
    fn unfurl_list_walk(
        &self,
        level: usize,
        parent_pos: &Expr,
        pos: finch_ir::BufId,
        idx: finch_ir::BufId,
        names: &mut Names,
        fill: Nest,
    ) -> Nest {
        let p = names.fresh(&format!("{}_p{}", self.name(), level));
        let (begin, end) = fiber_bounds(pos, parent_pos);
        let stepper = Looplet::Stepper(Stepped {
            seek: Some(seek_sorted(idx, p, &end, names)),
            stride: Expr::load(idx, Expr::Var(p)),
            body: Box::new(Looplet::Spike {
                body: Box::new(fill.clone()),
                tail: Box::new(Looplet::Leaf(self.child_leaf(level, Expr::Var(p)))),
            }),
            next: vec![advance(p)],
        });
        Looplet::Pipeline {
            phases: vec![
                Phase {
                    stride: Some(last_stored_coordinate(idx, &begin, &end)),
                    body: stepper.with_preamble(vec![Stmt::Let { var: p, init: begin }]),
                },
                Phase { stride: None, body: fill },
            ],
        }
    }

    /// Figure 6a: the galloping (leader) protocol for a sparse list.  The
    /// jumper elects this list as a leader; when another leader declares a
    /// larger stride, the switch falls back to a follower stepper.
    fn unfurl_list_gallop(
        &self,
        level: usize,
        parent_pos: &Expr,
        pos: finch_ir::BufId,
        idx: finch_ir::BufId,
        names: &mut Names,
        fill: Nest,
    ) -> Nest {
        let p = names.fresh(&format!("{}_p{}", self.name(), level));
        let (begin, end) = fiber_bounds(pos, parent_pos);
        let region_hi = names.fresh(&format!("{}_hi{}", self.name(), level));
        let spike = |tensor: &Self| Looplet::Spike {
            body: Box::new(fill.clone()),
            tail: Box::new(Looplet::Leaf(tensor.child_leaf(level, Expr::Var(p)))),
        };
        let follower = Looplet::Stepper(Stepped {
            seek: Some(seek_sorted(idx, p, &end, names)),
            stride: Expr::load(idx, Expr::Var(p)),
            body: Box::new(spike(self)),
            next: vec![advance(p)],
        });
        let jumper = Looplet::Jumper(Stepped {
            seek: Some(seek_sorted(idx, p, &end, names)),
            stride: Expr::load(idx, Expr::Var(p)),
            body: Box::new(Looplet::BindExtent {
                lo: None,
                hi: Some(region_hi),
                body: Box::new(Looplet::Switch {
                    cases: vec![
                        Case {
                            cond: Expr::eq(Expr::load(idx, Expr::Var(p)), Expr::Var(region_hi)),
                            body: spike(self),
                        },
                        Case { cond: Expr::bool(true), body: follower },
                    ],
                }),
            }),
            next: vec![advance(p)],
        });
        Looplet::Pipeline {
            phases: vec![
                Phase {
                    stride: Some(last_stored_coordinate(idx, &begin, &end)),
                    body: jumper.with_preamble(vec![Stmt::Let { var: p, init: begin }]),
                },
                Phase { stride: None, body: fill },
            ],
        }
    }

    /// A locate (random access) protocol for a sparse list: every read
    /// performs a binary search.  Only available for the innermost level.
    fn unfurl_list_locate(
        &self,
        level: usize,
        parent_pos: &Expr,
        pos: finch_ir::BufId,
        idx: finch_ir::BufId,
        names: &mut Names,
    ) -> Nest {
        let j = names.fresh(&format!("{}_j{}", self.name(), level));
        let (begin, end) = fiber_bounds(pos, parent_pos);
        let q = Expr::Search {
            buf: idx,
            lo: Box::new(begin),
            hi: Box::new(Expr::sub(end.clone(), Expr::int(1))),
            key: Box::new(Expr::Var(j)),
            on_abs: false,
        };
        let found = Expr::binary(
            finch_ir::BinOp::And,
            Expr::lt(q.clone(), end),
            Expr::eq(Expr::load(idx, q.clone()), Expr::Var(j)),
        );
        let value = match self.child_leaf(level, q) {
            UnfurlLeaf::Value(v) => v,
            UnfurlLeaf::Subfiber(_) => unreachable!("locate restricted to the innermost level"),
        };
        let leaf = UnfurlLeaf::Value(Expr::select(found, value, self.fill_expr()));
        Looplet::Lookup { var: j, body: Box::new(Looplet::Leaf(leaf)) }
    }

    /// Figure 3f: the banded format — zeros, one dense block, zeros.
    fn unfurl_band(
        &self,
        level: usize,
        parent_pos: &Expr,
        pos: finch_ir::BufId,
        start: finch_ir::BufId,
        names: &mut Names,
        fill: Nest,
    ) -> Nest {
        let j = names.fresh(&format!("{}_j{}", self.name(), level));
        let (begin, end) = fiber_bounds(pos, parent_pos);
        let width = Expr::sub(end, begin.clone()).simplified();
        let s = Expr::load(start, parent_pos.clone());
        // Child position for coordinate j: pos[P] + (j - start[P]).
        let child = Expr::add(begin, Expr::sub(Expr::Var(j), s.clone()));
        Looplet::Pipeline {
            phases: vec![
                Phase { stride: Some(Expr::sub(s.clone(), Expr::int(1))), body: fill.clone() },
                Phase {
                    stride: Some(Expr::sub(Expr::add(s, width), Expr::int(1))),
                    body: Looplet::Lookup {
                        var: j,
                        body: Box::new(Looplet::Leaf(self.child_leaf(level, child))),
                    },
                },
                Phase { stride: None, body: fill },
            ],
        }
    }

    /// Figure 3b: the VBL (variable block list) format — a stepper over
    /// blocks, each block a zero gap followed by a dense lookup region.
    #[allow(clippy::too_many_arguments)] // the format's three arrays plus lowering context
    fn unfurl_vbl(
        &self,
        level: usize,
        parent_pos: &Expr,
        pos: finch_ir::BufId,
        idx: finch_ir::BufId,
        ofs: finch_ir::BufId,
        names: &mut Names,
        fill: Nest,
    ) -> Nest {
        let q = names.fresh(&format!("{}_q{}", self.name(), level));
        let j = names.fresh(&format!("{}_j{}", self.name(), level));
        let (begin, end) = fiber_bounds(pos, parent_pos);
        let block_end = Expr::load(idx, Expr::Var(q));
        let block_width = Expr::sub(
            Expr::load(ofs, Expr::add(Expr::Var(q), Expr::int(1))),
            Expr::load(ofs, Expr::Var(q)),
        );
        // Value position for coordinate j within block q:
        // ofs[q+1] - 1 - (idx[q] - j).
        let value_pos = Expr::sub(
            Expr::sub(Expr::load(ofs, Expr::add(Expr::Var(q), Expr::int(1))), Expr::int(1)),
            Expr::sub(block_end.clone(), Expr::Var(j)),
        );
        let block = Looplet::Pipeline {
            phases: vec![
                Phase {
                    stride: Some(Expr::sub(block_end.clone(), block_width)),
                    body: fill.clone(),
                },
                Phase {
                    stride: None,
                    body: Looplet::Lookup {
                        var: j,
                        body: Box::new(Looplet::Leaf(self.child_leaf(level, value_pos))),
                    },
                },
            ],
        };
        let stepper = Looplet::Stepper(Stepped {
            seek: Some(seek_sorted(idx, q, &end, names)),
            stride: block_end,
            body: Box::new(block),
            next: vec![advance(q)],
        });
        Looplet::Pipeline {
            phases: vec![
                Phase {
                    stride: Some(last_stored_coordinate(idx, &begin, &end)),
                    body: stepper.with_preamble(vec![Stmt::Let { var: q, init: begin }]),
                },
                Phase { stride: None, body: fill },
            ],
        }
    }

    /// Figure 3g: run-length encoding — a stepper whose children are runs.
    fn unfurl_rle(
        &self,
        level: usize,
        parent_pos: &Expr,
        pos: finch_ir::BufId,
        idx: finch_ir::BufId,
        names: &mut Names,
    ) -> Nest {
        let p = names.fresh(&format!("{}_p{}", self.name(), level));
        let (begin, end) = fiber_bounds(pos, parent_pos);
        let stepper = Looplet::Stepper(Stepped {
            seek: Some(seek_sorted(idx, p, &end, names)),
            stride: Expr::load(idx, Expr::Var(p)),
            body: Box::new(Looplet::Run {
                body: Box::new(Looplet::Leaf(self.child_leaf(level, Expr::Var(p)))),
            }),
            next: vec![advance(p)],
        });
        stepper.with_preamble(vec![Stmt::Let { var: p, init: begin }])
    }

    /// Figure 3h: the PackBits format — a stepper whose children switch
    /// between runs of a repeated value and literal (dense) segments.
    fn unfurl_packbits(
        &self,
        level: usize,
        parent_pos: &Expr,
        pos: finch_ir::BufId,
        idx: finch_ir::BufId,
        ofs: finch_ir::BufId,
        names: &mut Names,
    ) -> Nest {
        let p = names.fresh(&format!("{}_p{}", self.name(), level));
        let j = names.fresh(&format!("{}_j{}", self.name(), level));
        let seek_j = names.fresh(&format!("{}_s{}", self.name(), level));
        let (begin, end) = fiber_bounds(pos, parent_pos);
        let marker = Expr::load(idx, Expr::Var(p));
        let seg_end = Expr::sub(Expr::unary(finch_ir::UnOp::Abs, marker.clone()), Expr::int(1));
        // The start coordinate of the current segment: one past the previous
        // segment's end, or 0 for the first segment of the fiber.
        let seg_start = Expr::select(
            Expr::binary(finch_ir::BinOp::Gt, Expr::Var(p), begin.clone()),
            Expr::unary(
                finch_ir::UnOp::Abs,
                Expr::load(idx, Expr::sub(Expr::Var(p), Expr::int(1))),
            ),
            Expr::int(0),
        );
        let run_value = self.child_leaf(level, Expr::load(ofs, Expr::Var(p)));
        let literal_pos =
            Expr::add(Expr::load(ofs, Expr::Var(p)), Expr::sub(Expr::Var(j), seg_start));
        let switch = Looplet::Switch {
            cases: vec![
                Case {
                    cond: Expr::binary(finch_ir::BinOp::Gt, marker, Expr::int(0)),
                    body: Looplet::Run { body: Box::new(Looplet::Leaf(run_value)) },
                },
                Case {
                    cond: Expr::bool(true),
                    body: Looplet::Lookup {
                        var: j,
                        body: Box::new(Looplet::Leaf(self.child_leaf(level, literal_pos))),
                    },
                },
            ],
        };
        let stepper = Looplet::Stepper(Stepped {
            seek: Some(Seek {
                var: seek_j,
                body: vec![Stmt::Assign {
                    var: p,
                    value: Expr::Search {
                        buf: idx,
                        lo: Box::new(Expr::Var(p)),
                        hi: Box::new(Expr::sub(end, Expr::int(1))),
                        key: Box::new(Expr::add(Expr::Var(seek_j), Expr::int(1))),
                        on_abs: true,
                    },
                }],
            }),
            stride: seg_end,
            body: Box::new(switch),
            next: vec![advance(p)],
        });
        stepper.with_preamble(vec![Stmt::Let { var: p, init: begin }])
    }

    /// Figure 3a: packed lower-triangular storage.
    fn unfurl_triangular(
        &self,
        level: usize,
        parent_pos: &Expr,
        names: &mut Names,
        fill: Nest,
    ) -> Nest {
        let j = names.fresh(&format!("{}_j{}", self.name(), level));
        let offset = triangle_offset(parent_pos);
        let pos = Expr::add(offset, Expr::Var(j));
        Looplet::Pipeline {
            phases: vec![
                Phase {
                    stride: Some(parent_pos.clone()),
                    body: Looplet::Lookup {
                        var: j,
                        body: Box::new(Looplet::Leaf(self.child_leaf(level, pos))),
                    },
                },
                Phase { stride: None, body: fill },
            ],
        }
    }

    /// Figure 3c: packed symmetric storage — the upper triangle reads from
    /// the mirrored position.
    fn unfurl_symmetric(&self, level: usize, parent_pos: &Expr, names: &mut Names) -> Nest {
        let j_low = names.fresh(&format!("{}_j{}", self.name(), level));
        let j_high = names.fresh(&format!("{}_j{}", self.name(), level));
        let low_pos = Expr::add(triangle_offset(parent_pos), Expr::Var(j_low));
        let high_pos = Expr::add(triangle_offset(&Expr::Var(j_high)), parent_pos.clone());
        Looplet::Pipeline {
            phases: vec![
                Phase {
                    stride: Some(parent_pos.clone()),
                    body: Looplet::Lookup {
                        var: j_low,
                        body: Box::new(Looplet::Leaf(self.child_leaf(level, low_pos))),
                    },
                },
                Phase {
                    stride: None,
                    body: Looplet::Lookup {
                        var: j_high,
                        body: Box::new(Looplet::Leaf(self.child_leaf(level, high_pos))),
                    },
                },
            ],
        }
    }

    /// Figure 3e: ragged rows — a dense prefix followed by fill.
    fn unfurl_ragged(
        &self,
        level: usize,
        parent_pos: &Expr,
        pos: finch_ir::BufId,
        names: &mut Names,
        fill: Nest,
    ) -> Nest {
        let j = names.fresh(&format!("{}_j{}", self.name(), level));
        let (begin, end) = fiber_bounds(pos, parent_pos);
        let len = Expr::sub(end, begin.clone());
        let child = Expr::add(begin, Expr::Var(j));
        Looplet::Pipeline {
            phases: vec![
                Phase {
                    stride: Some(Expr::sub(len, Expr::int(1))),
                    body: Looplet::Lookup {
                        var: j,
                        body: Box::new(Looplet::Leaf(self.child_leaf(level, child))),
                    },
                },
                Phase { stride: None, body: fill },
            ],
        }
    }
}

/// The inclusive fiber entry range `[pos[P], pos[P+1])` as `(begin, end)`
/// expressions (`end` is exclusive).
fn fiber_bounds(pos: finch_ir::BufId, parent_pos: &Expr) -> (Expr, Expr) {
    let begin = Expr::load(pos, parent_pos.clone()).simplified();
    let end = Expr::load(pos, Expr::add(parent_pos.clone(), Expr::int(1)).simplified());
    (begin, end)
}

/// The last stored coordinate of the fiber, or `-1` when the fiber is empty
/// (which makes the stored-entries phase empty).
fn last_stored_coordinate(idx: finch_ir::BufId, begin: &Expr, end: &Expr) -> Expr {
    Expr::select(
        Expr::binary(finch_ir::BinOp::Gt, end.clone(), begin.clone()),
        Expr::load(idx, Expr::sub(end.clone(), Expr::int(1))),
        Expr::int(-1),
    )
}

/// A `seek` that binary-searches the sorted coordinate array for the first
/// entry at or after the requested index.
fn seek_sorted(idx: finch_ir::BufId, state: Var, end: &Expr, names: &mut Names) -> Seek {
    let target = names.fresh("seek_i");
    Seek {
        var: target,
        body: vec![Stmt::Assign {
            var: state,
            value: Expr::Search {
                buf: idx,
                lo: Box::new(Expr::Var(state)),
                hi: Box::new(Expr::sub(end.clone(), Expr::int(1))),
                key: Box::new(Expr::Var(target)),
                on_abs: false,
            },
        }],
    }
}

/// `state += 1`.
fn advance(state: Var) -> Stmt {
    Stmt::Assign { var: state, value: Expr::add(Expr::Var(state), Expr::int(1)) }
}

/// `P * (P + 1) / 2`, the packed-triangle row offset.
fn triangle_offset(p: &Expr) -> Expr {
    Expr::binary(
        finch_ir::BinOp::Div,
        Expr::mul(p.clone(), Expr::add(p.clone(), Expr::int(1))),
        Expr::int(2),
    )
    .simplified()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use finch_ir::BufferSet;
    use finch_looplets::Style;

    fn unfurl_inner(t: &Tensor, protocol: Protocol) -> (Nest, Names) {
        let mut bufs = BufferSet::new();
        let mut names = Names::new();
        let b = BoundTensor::bind(t, &mut bufs);
        let level = t.ndim() - 1;
        let parent = Expr::int(0);
        let nest = b.unfurl(level, &parent, protocol, &mut names);
        (nest, names)
    }

    #[test]
    fn sparse_list_walk_matches_the_paper_shape() {
        let t = Tensor::sparse_list_vector(
            "A",
            &[0.0, 1.9, 0.0, 3.0, 2.7, 0.0, 0.0, 0.0, 5.5, 0.0, 0.0],
        );
        let (nest, _) = unfurl_inner(&t, Protocol::Walk);
        // Pipeline(Phase(Thunk(Stepper(Spike(Run, tail)))), Phase(Run))
        let text = format!("{nest}");
        assert!(text.starts_with("Pipeline(Phase(Thunk(Stepper(Spike("), "got {text}");
        assert!(text.ends_with("Phase(Run(Value(Lit(Float(0.0))))))"), "got {text}");
    }

    #[test]
    fn sparse_list_gallop_wraps_a_jumper_with_a_switch() {
        let t = Tensor::sparse_list_vector("A", &[0.0, 1.0, 0.0, 2.0]);
        let (nest, _) = unfurl_inner(&t, Protocol::Gallop);
        let text = format!("{nest}");
        assert!(text.contains("Jumper(BindExtent(Switch(Case(Spike("), "got {text}");
        assert!(text.contains("Case(Stepper(Spike("), "got {text}");
    }

    #[test]
    fn band_unfurls_into_three_phases() {
        let t = Tensor::band_vector("B", &[0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0]);
        let (nest, _) = unfurl_inner(&t, Protocol::Default);
        match &nest {
            Looplet::Pipeline { phases } => {
                assert_eq!(phases.len(), 3);
                assert_eq!(phases[0].body.style(), Style::Run);
                assert_eq!(phases[1].body.style(), Style::Lookup);
                assert_eq!(phases[2].body.style(), Style::Run);
            }
            other => panic!("expected pipeline, got {other}"),
        }
    }

    #[test]
    fn vbl_unfurls_blocks_as_run_then_lookup() {
        let t = Tensor::vbl_vector("V", &[0.0, 0.0, 2.7, 5.0, 0.9, 0.0, 0.0, 1.4, 2.3, 0.0, 0.0]);
        let (nest, _) = unfurl_inner(&t, Protocol::Default);
        let text = format!("{nest}");
        assert!(
            text.contains("Stepper(Pipeline(Phase(Run("),
            "blocks should be a zero gap followed by a dense region: {text}"
        );
    }

    #[test]
    fn rle_unfurls_into_a_stepper_of_runs() {
        let t = Tensor::rle_vector("R", &[3.0, 3.0, 3.0, 1.0, 1.0, 1.0, 2.0, 2.0, 5.0, 2.0, 4.0]);
        let (nest, _) = unfurl_inner(&t, Protocol::Default);
        let text = format!("{nest}");
        assert!(text.starts_with("Thunk(Stepper(Run("), "got {text}");
    }

    #[test]
    fn packbits_unfurls_into_a_stepper_of_switches() {
        let t =
            Tensor::packbits_vector("P", &[1.0, 1.0, 1.0, 1.0, 9.0, 7.0, 2.0, 2.0, 2.0, 2.0, 3.0]);
        let (nest, _) = unfurl_inner(&t, Protocol::Default);
        let text = format!("{nest}");
        assert!(text.starts_with("Thunk(Stepper(Switch(Case(Run("), "got {text}");
        assert!(text.contains("Case(Lookup("), "got {text}");
    }

    #[test]
    fn dense_and_bitmap_unfurl_into_lookups() {
        let t = Tensor::dense_vector("D", &[1.0, 0.0, 2.0]);
        let (nest, _) = unfurl_inner(&t, Protocol::Locate);
        assert_eq!(nest.style(), Style::Lookup);

        let t = Tensor::bitmap_vector("B", &[1.0, 0.0, 2.0]);
        let (nest, _) = unfurl_inner(&t, Protocol::Locate);
        assert_eq!(nest.style(), Style::Lookup);
        // The bitmap leaf contains a select on the bytemap.
        let text = format!("{nest}");
        assert!(text.contains("Select"), "got {text}");
    }

    #[test]
    fn triangular_symmetric_and_ragged_unfurl_into_pipelines() {
        let data = vec![
            1.0, 0.0, 0.0, //
            2.0, 3.0, 0.0, //
            4.0, 5.0, 6.0,
        ];
        for t in [
            Tensor::triangular_matrix("T", 3, &data),
            Tensor::symmetric_matrix("S", 3, &data),
            Tensor::ragged_matrix("G", 3, 3, &data),
        ] {
            let mut bufs = BufferSet::new();
            let mut names = Names::new();
            let b = BoundTensor::bind(&t, &mut bufs);
            let nest = b.unfurl(1, &Expr::int(2), Protocol::Default, &mut names);
            assert_eq!(nest.style(), Style::Pipeline, "format {}", t.levels()[1].format_name());
        }
    }

    #[test]
    fn outer_dense_level_produces_subfiber_leaves() {
        let t = Tensor::csr_matrix("A", 3, 4, &[0.0; 12]);
        let mut bufs = BufferSet::new();
        let mut names = Names::new();
        let b = BoundTensor::bind(&t, &mut bufs);
        let nest = b.unfurl(0, &Expr::int(0), Protocol::Default, &mut names);
        match nest {
            Looplet::Lookup { body, .. } => match *body {
                Looplet::Leaf(UnfurlLeaf::Subfiber(_)) => {}
                other => panic!("expected a subfiber leaf, got {other}"),
            },
            other => panic!("expected lookup, got {other}"),
        }
    }
}
