//! Level formats: the per-dimension storage schemes of Figure 3.
//!
//! A level describes how the fibers of one dimension are stored.  Positions
//! are 0-based everywhere; a level maps a *parent position* `p` (which fiber
//! of this level) and a coordinate `i` to a *child position* (an entry in
//! the next level, or in the values array for the innermost level), or to
//! the fill value when the coordinate is not stored.

use finch_ir::Value;

/// The storage scheme of one dimension of a [`Tensor`](crate::Tensor).
///
/// Array fields follow the paper's naming: `pos` delimits the entries of
/// each fiber, `idx` stores coordinates (or block/run end coordinates),
/// `ofs` stores value offsets, `start` stores band starts, `tbl` is a
/// bytemap.
#[derive(Debug, Clone, PartialEq)]
pub enum Level {
    /// Every coordinate `0..size` is stored: child position `p * size + i`.
    Dense {
        /// The dimension size.
        size: usize,
    },
    /// Sorted coordinate list ("compressed"): fiber `p` owns entries
    /// `pos[p]..pos[p+1]`, entry `q` has coordinate `idx[q]` and child
    /// position `q`.
    SparseList {
        /// The dimension size.
        size: usize,
        /// Fiber boundaries, length `nfibers + 1`.
        pos: Vec<i64>,
        /// Sorted coordinates of stored entries.
        idx: Vec<i64>,
    },
    /// A single variably-wide dense block per fiber: fiber `p` stores
    /// coordinates `start[p] .. start[p] + (pos[p+1]-pos[p]) - 1`, child
    /// positions `pos[p]..pos[p+1]`.
    SparseBand {
        /// The dimension size.
        size: usize,
        /// Value boundaries per fiber, length `nfibers + 1`.
        pos: Vec<i64>,
        /// First stored coordinate per fiber, length `nfibers`.
        start: Vec<i64>,
    },
    /// Variable block list: fiber `p` owns blocks `pos[p]..pos[p+1]`; block
    /// `q` ends at coordinate `idx[q]` and stores `ofs[q+1]-ofs[q]`
    /// contiguous values ending at child position `ofs[q+1]-1`.
    SparseVbl {
        /// The dimension size.
        size: usize,
        /// Block boundaries per fiber, length `nfibers + 1`.
        pos: Vec<i64>,
        /// Inclusive end coordinate of each block.
        idx: Vec<i64>,
        /// Value offsets, length `nblocks + 1`.
        ofs: Vec<i64>,
    },
    /// Run-length encoding: fiber `p` owns runs `pos[p]..pos[p+1]`; run `q`
    /// ends at coordinate `idx[q]` (inclusive) and repeats the value at
    /// child position `q`.  The last run of a fiber ends at `size - 1`.
    RunLength {
        /// The dimension size.
        size: usize,
        /// Run boundaries per fiber, length `nfibers + 1`.
        pos: Vec<i64>,
        /// Inclusive end coordinate of each run.
        idx: Vec<i64>,
    },
    /// PackBits-style mix of runs and literal (dense) segments: fiber `p`
    /// owns segments `pos[p]..pos[p+1]`.  Segment `q` ends at coordinate
    /// `|idx[q]| - 1`; a positive `idx[q]` marks a run repeating the value
    /// at child position `ofs[q]`, a negative `idx[q]` marks a literal
    /// segment whose values are stored contiguously starting at child
    /// position `ofs[q]`.
    ///
    /// (The paper's Figure 3h overlays segment and value positions; this
    /// reproduction keeps an explicit `ofs` array so that coordinates can be
    /// 0-based, which is recorded as a deviation in DESIGN.md.)
    PackBits {
        /// The dimension size.
        size: usize,
        /// Segment boundaries per fiber, length `nfibers + 1`.
        pos: Vec<i64>,
        /// Signed segment end markers (`±(end + 1)`).
        idx: Vec<i64>,
        /// Value offset of each segment, length `nsegments + 1`.
        ofs: Vec<i64>,
    },
    /// A dense bytemap alongside dense values: coordinate `i` of fiber `p`
    /// is stored iff `tbl[p * size + i]`, at child position `p * size + i`.
    Bitmap {
        /// The dimension size.
        size: usize,
        /// The bytemap, length `nfibers * size`.
        tbl: Vec<bool>,
    },
    /// Packed lower-triangular storage: fiber `p` stores coordinates
    /// `0..=p` at child positions `p * (p + 1) / 2 + i`; coordinates above
    /// the diagonal read as the fill value.
    Triangular {
        /// The dimension size (the matrix is `size × size`).
        size: usize,
    },
    /// Packed symmetric storage: like [`Level::Triangular`] below the
    /// diagonal, and mirrored (`A[i, j] = A[j, i]`) above it.
    Symmetric {
        /// The dimension size.
        size: usize,
    },
    /// Ragged rows: fiber `p` stores its first `pos[p+1]-pos[p]` coordinates
    /// contiguously (child positions `pos[p]..`), the rest read as fill.
    Ragged {
        /// The dimension size (maximum row length).
        size: usize,
        /// Row boundaries, length `nfibers + 1`.
        pos: Vec<i64>,
    },
}

impl Level {
    /// The dimension size this level represents.
    pub fn size(&self) -> usize {
        match self {
            Level::Dense { size }
            | Level::SparseList { size, .. }
            | Level::SparseBand { size, .. }
            | Level::SparseVbl { size, .. }
            | Level::RunLength { size, .. }
            | Level::PackBits { size, .. }
            | Level::Bitmap { size, .. }
            | Level::Triangular { size }
            | Level::Symmetric { size }
            | Level::Ragged { size, .. } => *size,
        }
    }

    /// A short name for the format (used in reports and benchmark labels).
    pub fn format_name(&self) -> &'static str {
        match self {
            Level::Dense { .. } => "dense",
            Level::SparseList { .. } => "sparse-list",
            Level::SparseBand { .. } => "sparse-band",
            Level::SparseVbl { .. } => "sparse-vbl",
            Level::RunLength { .. } => "rle",
            Level::PackBits { .. } => "packbits",
            Level::Bitmap { .. } => "bitmap",
            Level::Triangular { .. } => "triangular",
            Level::Symmetric { .. } => "symmetric",
            Level::Ragged { .. } => "ragged",
        }
    }

    /// The number of child positions (entries in the next level / values
    /// array) used by the first `nfibers` fibers of this level.
    pub fn child_span(&self, nfibers: usize) -> usize {
        match self {
            Level::Dense { size } | Level::Bitmap { size, .. } => nfibers * size,
            Level::SparseList { pos, .. }
            | Level::SparseBand { pos, .. }
            | Level::RunLength { pos, .. }
            | Level::Ragged { pos, .. } => pos[nfibers] as usize,
            Level::SparseVbl { pos, ofs, .. } => ofs[pos[nfibers] as usize] as usize,
            Level::PackBits { pos, ofs, .. } => ofs[pos[nfibers] as usize] as usize,
            Level::Triangular { .. } | Level::Symmetric { .. } => {
                // Fiber p stores p + 1 entries; the whole triangle is packed
                // once and shared across the (single) parent fiber.
                nfibers * (nfibers + 1) / 2
            }
        }
    }

    /// Reference semantics of the level: the child position of coordinate
    /// `i` in fiber `p`, or `None` when the coordinate is not stored.
    ///
    /// This is the slow-path oracle used by [`Tensor::value_at`](crate::Tensor::value_at)
    /// and by the test suite; the compiler never calls it.
    pub fn locate(&self, p: usize, i: usize) -> Option<usize> {
        if i >= self.size() {
            return None;
        }
        match self {
            Level::Dense { size } => Some(p * size + i),
            Level::SparseList { pos, idx, .. } => {
                let (lo, hi) = (pos[p] as usize, pos[p + 1] as usize);
                idx[lo..hi].binary_search(&(i as i64)).ok().map(|k| lo + k)
            }
            Level::SparseBand { pos, start, .. } => {
                let width = (pos[p + 1] - pos[p]) as usize;
                let s = start[p] as usize;
                if width > 0 && i >= s && i < s + width {
                    Some(pos[p] as usize + (i - s))
                } else {
                    None
                }
            }
            Level::SparseVbl { pos, idx, ofs, .. } => {
                let (lo, hi) = (pos[p] as usize, pos[p + 1] as usize);
                for q in lo..hi {
                    let end = idx[q] as usize;
                    let width = (ofs[q + 1] - ofs[q]) as usize;
                    let begin = end + 1 - width;
                    if i >= begin && i <= end {
                        return Some(ofs[q] as usize + (i - begin));
                    }
                }
                None
            }
            Level::RunLength { pos, idx, .. } => {
                let (lo, hi) = (pos[p] as usize, pos[p + 1] as usize);
                (lo..hi).find(|&q| i as i64 <= idx[q])
            }
            Level::PackBits { pos, idx, ofs, .. } => {
                let (lo, hi) = (pos[p] as usize, pos[p + 1] as usize);
                let mut begin = 0usize;
                for q in lo..hi {
                    let end = (idx[q].unsigned_abs() as usize) - 1;
                    if i <= end {
                        return if idx[q] > 0 {
                            Some(ofs[q] as usize)
                        } else {
                            Some(ofs[q] as usize + (i - begin))
                        };
                    }
                    begin = end + 1;
                }
                None
            }
            Level::Bitmap { size, tbl } => {
                if tbl[p * size + i] {
                    Some(p * size + i)
                } else {
                    None
                }
            }
            Level::Triangular { .. } => {
                if i <= p {
                    Some(p * (p + 1) / 2 + i)
                } else {
                    None
                }
            }
            Level::Symmetric { .. } => {
                if i <= p {
                    Some(p * (p + 1) / 2 + i)
                } else {
                    Some(i * (i + 1) / 2 + p)
                }
            }
            Level::Ragged { pos, .. } => {
                let len = (pos[p + 1] - pos[p]) as usize;
                if i < len {
                    Some(pos[p] as usize + i)
                } else {
                    None
                }
            }
        }
    }

    /// The number of explicitly stored entries in fiber `p` (used for
    /// statistics and tests).
    pub fn stored_in_fiber(&self, p: usize) -> usize {
        match self {
            Level::Dense { size } => *size,
            Level::Bitmap { size, tbl } => {
                tbl[p * size..(p + 1) * size].iter().filter(|&&b| b).count()
            }
            Level::SparseList { pos, .. }
            | Level::SparseBand { pos, .. }
            | Level::Ragged { pos, .. } => (pos[p + 1] - pos[p]) as usize,
            Level::SparseVbl { pos, ofs, .. } => {
                (ofs[pos[p + 1] as usize] - ofs[pos[p] as usize]) as usize
            }
            Level::RunLength { pos, .. } => (pos[p + 1] - pos[p]) as usize,
            Level::PackBits { pos, .. } => (pos[p + 1] - pos[p]) as usize,
            Level::Triangular { .. } | Level::Symmetric { .. } => p + 1,
        }
    }

    /// The natural fill value of a level (all the paper's formats use zero).
    pub fn default_fill() -> Value {
        Value::Float(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_locate_is_row_major() {
        let l = Level::Dense { size: 4 };
        assert_eq!(l.locate(2, 3), Some(11));
        assert_eq!(l.locate(0, 4), None);
        assert_eq!(l.child_span(3), 12);
    }

    #[test]
    fn sparse_list_locate_finds_stored_coordinates_only() {
        let l = Level::SparseList { size: 10, pos: vec![0, 2, 5], idx: vec![1, 7, 0, 3, 9] };
        assert_eq!(l.locate(0, 1), Some(0));
        assert_eq!(l.locate(0, 7), Some(1));
        assert_eq!(l.locate(0, 3), None);
        assert_eq!(l.locate(1, 3), Some(3));
        assert_eq!(l.locate(1, 9), Some(4));
        assert_eq!(l.stored_in_fiber(1), 3);
        assert_eq!(l.child_span(2), 5);
    }

    #[test]
    fn band_locate_covers_exactly_the_band() {
        let l = Level::SparseBand { size: 11, pos: vec![0, 5], start: vec![3] };
        assert_eq!(l.locate(0, 2), None);
        assert_eq!(l.locate(0, 3), Some(0));
        assert_eq!(l.locate(0, 7), Some(4));
        assert_eq!(l.locate(0, 8), None);
    }

    #[test]
    fn vbl_locate_handles_multiple_blocks() {
        // Fiber 0: block ending at 4 of width 3 (coords 2,3,4 -> vals 0,1,2),
        //          block ending at 8 of width 2 (coords 7,8   -> vals 3,4).
        let l = Level::SparseVbl { size: 11, pos: vec![0, 2], idx: vec![4, 8], ofs: vec![0, 3, 5] };
        assert_eq!(l.locate(0, 2), Some(0));
        assert_eq!(l.locate(0, 4), Some(2));
        assert_eq!(l.locate(0, 5), None);
        assert_eq!(l.locate(0, 7), Some(3));
        assert_eq!(l.locate(0, 8), Some(4));
        assert_eq!(l.stored_in_fiber(0), 5);
    }

    #[test]
    fn rle_locate_returns_the_covering_run() {
        let l = Level::RunLength { size: 11, pos: vec![0, 3], idx: vec![2, 5, 10] };
        assert_eq!(l.locate(0, 0), Some(0));
        assert_eq!(l.locate(0, 2), Some(0));
        assert_eq!(l.locate(0, 3), Some(1));
        assert_eq!(l.locate(0, 10), Some(2));
    }

    #[test]
    fn packbits_locate_distinguishes_runs_and_literals() {
        // Fiber 0: run over coords 0..=2 (value at ofs 0), literal over 3..=5
        // (values at ofs 1..=3), run over 6..=10 (value at ofs 4).
        let l = Level::PackBits {
            size: 11,
            pos: vec![0, 3],
            idx: vec![3, -6, 11],
            ofs: vec![0, 1, 4, 5],
        };
        assert_eq!(l.locate(0, 1), Some(0));
        assert_eq!(l.locate(0, 3), Some(1));
        assert_eq!(l.locate(0, 5), Some(3));
        assert_eq!(l.locate(0, 9), Some(4));
    }

    #[test]
    fn triangular_and_symmetric_locate() {
        let t = Level::Triangular { size: 4 };
        assert_eq!(t.locate(2, 1), Some(4));
        assert_eq!(t.locate(1, 2), None);
        let s = Level::Symmetric { size: 4 };
        assert_eq!(s.locate(2, 1), Some(4));
        assert_eq!(s.locate(1, 2), Some(4));
        assert_eq!(s.locate(3, 3), Some(9));
    }

    #[test]
    fn ragged_locate_respects_row_lengths() {
        let l = Level::Ragged { size: 6, pos: vec![0, 3, 3, 5] };
        assert_eq!(l.locate(0, 2), Some(2));
        assert_eq!(l.locate(0, 3), None);
        assert_eq!(l.locate(1, 0), None);
        assert_eq!(l.locate(2, 1), Some(4));
    }

    #[test]
    fn bitmap_locate_checks_the_table() {
        let l = Level::Bitmap { size: 3, tbl: vec![true, false, true, false, true, false] };
        assert_eq!(l.locate(0, 0), Some(0));
        assert_eq!(l.locate(0, 1), None);
        assert_eq!(l.locate(1, 1), Some(4));
        assert_eq!(l.stored_in_fiber(1), 1);
    }

    #[test]
    fn format_names_are_distinct() {
        use std::collections::HashSet;
        let levels = vec![
            Level::Dense { size: 1 },
            Level::SparseList { size: 1, pos: vec![0, 0], idx: vec![] },
            Level::SparseBand { size: 1, pos: vec![0, 0], start: vec![0] },
            Level::SparseVbl { size: 1, pos: vec![0, 0], idx: vec![], ofs: vec![0] },
            Level::RunLength { size: 1, pos: vec![0, 1], idx: vec![0] },
            Level::PackBits { size: 1, pos: vec![0, 1], idx: vec![1], ofs: vec![0, 1] },
            Level::Bitmap { size: 1, tbl: vec![false] },
            Level::Triangular { size: 1 },
            Level::Symmetric { size: 1 },
            Level::Ragged { size: 1, pos: vec![0, 0] },
        ];
        let names: HashSet<_> = levels.iter().map(|l| l.format_name()).collect();
        assert_eq!(names.len(), levels.len());
    }
}
