//! Binding tensors to interpreter buffers.
//!
//! Before a tensor can be referenced by generated code, its arrays (`pos`,
//! `idx`, `ofs`, `start`, `tbl`, values) must be registered in the kernel's
//! [`BufferSet`].  [`BoundTensor`] records the resulting [`BufId`]s and the
//! per-level metadata the unfurler needs.

use finch_ir::{BufId, Buffer, BufferSet, Expr, Var};
use finch_looplets::Leaf;

use crate::level::Level;
use crate::tensor::Tensor;

/// The leaf payload produced by unfurling: either the value of the element
/// (innermost level) or the position of the subfiber in the next level.
#[derive(Debug, Clone, PartialEq)]
pub enum UnfurlLeaf {
    /// The element's value as a target-IR expression.
    Value(Expr),
    /// The child position of the subfiber in the next level.
    Subfiber(Expr),
}

impl UnfurlLeaf {
    /// The contained expression, whichever kind it is.
    pub fn expr(&self) -> &Expr {
        match self {
            UnfurlLeaf::Value(e) | UnfurlLeaf::Subfiber(e) => e,
        }
    }
}

impl Leaf for UnfurlLeaf {
    fn substitute_var(&self, var: Var, replacement: &Expr) -> Self {
        match self {
            UnfurlLeaf::Value(e) => UnfurlLeaf::Value(e.substitute(var, replacement)),
            UnfurlLeaf::Subfiber(e) => UnfurlLeaf::Subfiber(e.substitute(var, replacement)),
        }
    }
}

/// One level of a bound tensor: the level sizes plus the buffer ids of its
/// arrays.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundLevel {
    /// See [`Level::Dense`].
    Dense {
        /// Dimension size.
        size: usize,
    },
    /// See [`Level::SparseList`].
    SparseList {
        /// Dimension size.
        size: usize,
        /// Fiber boundaries buffer.
        pos: BufId,
        /// Coordinates buffer.
        idx: BufId,
    },
    /// See [`Level::SparseBand`].
    SparseBand {
        /// Dimension size.
        size: usize,
        /// Value boundaries buffer.
        pos: BufId,
        /// Band start buffer.
        start: BufId,
    },
    /// See [`Level::SparseVbl`].
    SparseVbl {
        /// Dimension size.
        size: usize,
        /// Block boundaries buffer.
        pos: BufId,
        /// Block end coordinates buffer.
        idx: BufId,
        /// Value offsets buffer.
        ofs: BufId,
    },
    /// See [`Level::RunLength`].
    RunLength {
        /// Dimension size.
        size: usize,
        /// Run boundaries buffer.
        pos: BufId,
        /// Run end coordinates buffer.
        idx: BufId,
    },
    /// See [`Level::PackBits`].
    PackBits {
        /// Dimension size.
        size: usize,
        /// Segment boundaries buffer.
        pos: BufId,
        /// Signed segment end markers buffer.
        idx: BufId,
        /// Value offsets buffer.
        ofs: BufId,
    },
    /// See [`Level::Bitmap`].
    Bitmap {
        /// Dimension size.
        size: usize,
        /// Bytemap buffer.
        tbl: BufId,
    },
    /// See [`Level::Triangular`].
    Triangular {
        /// Dimension size.
        size: usize,
    },
    /// See [`Level::Symmetric`].
    Symmetric {
        /// Dimension size.
        size: usize,
    },
    /// See [`Level::Ragged`].
    Ragged {
        /// Dimension size.
        size: usize,
        /// Row boundaries buffer.
        pos: BufId,
    },
}

impl BoundLevel {
    /// The dimension size of the level.
    pub fn size(&self) -> usize {
        match self {
            BoundLevel::Dense { size }
            | BoundLevel::SparseList { size, .. }
            | BoundLevel::SparseBand { size, .. }
            | BoundLevel::SparseVbl { size, .. }
            | BoundLevel::RunLength { size, .. }
            | BoundLevel::PackBits { size, .. }
            | BoundLevel::Bitmap { size, .. }
            | BoundLevel::Triangular { size }
            | BoundLevel::Symmetric { size }
            | BoundLevel::Ragged { size, .. } => *size,
        }
    }
}

/// A tensor whose arrays have been registered as interpreter buffers, ready
/// to be unfurled into looplet nests.
#[derive(Debug, Clone)]
pub struct BoundTensor {
    name: String,
    fill: f64,
    levels: Vec<BoundLevel>,
    values: BufId,
}

impl BoundTensor {
    /// Register every array of `tensor` in `bufs` and return the bound
    /// handle.  Buffers are named `"{tensor}_{array}{level}"` so generated
    /// code stays readable (`A_pos1`, `A_idx1`, `A_val`, ...).
    pub fn bind(tensor: &Tensor, bufs: &mut BufferSet) -> Self {
        let name = tensor.name().to_string();
        let mut levels = Vec::with_capacity(tensor.ndim());
        for (k, level) in tensor.levels().iter().enumerate() {
            let bl = match level {
                Level::Dense { size } => BoundLevel::Dense { size: *size },
                Level::Triangular { size } => BoundLevel::Triangular { size: *size },
                Level::Symmetric { size } => BoundLevel::Symmetric { size: *size },
                Level::SparseList { size, pos, idx } => BoundLevel::SparseList {
                    size: *size,
                    pos: bufs.add(&format!("{name}_pos{k}"), Buffer::I64(pos.clone().into())),
                    idx: bufs.add(&format!("{name}_idx{k}"), Buffer::I64(idx.clone().into())),
                },
                Level::SparseBand { size, pos, start } => BoundLevel::SparseBand {
                    size: *size,
                    pos: bufs.add(&format!("{name}_pos{k}"), Buffer::I64(pos.clone().into())),
                    start: bufs.add(&format!("{name}_start{k}"), Buffer::I64(start.clone().into())),
                },
                Level::SparseVbl { size, pos, idx, ofs } => BoundLevel::SparseVbl {
                    size: *size,
                    pos: bufs.add(&format!("{name}_pos{k}"), Buffer::I64(pos.clone().into())),
                    idx: bufs.add(&format!("{name}_idx{k}"), Buffer::I64(idx.clone().into())),
                    ofs: bufs.add(&format!("{name}_ofs{k}"), Buffer::I64(ofs.clone().into())),
                },
                Level::RunLength { size, pos, idx } => BoundLevel::RunLength {
                    size: *size,
                    pos: bufs.add(&format!("{name}_pos{k}"), Buffer::I64(pos.clone().into())),
                    idx: bufs.add(&format!("{name}_idx{k}"), Buffer::I64(idx.clone().into())),
                },
                Level::PackBits { size, pos, idx, ofs } => BoundLevel::PackBits {
                    size: *size,
                    pos: bufs.add(&format!("{name}_pos{k}"), Buffer::I64(pos.clone().into())),
                    idx: bufs.add(&format!("{name}_idx{k}"), Buffer::I64(idx.clone().into())),
                    ofs: bufs.add(&format!("{name}_ofs{k}"), Buffer::I64(ofs.clone().into())),
                },
                Level::Bitmap { size, tbl } => BoundLevel::Bitmap {
                    size: *size,
                    tbl: bufs.add(&format!("{name}_tbl{k}"), Buffer::Bool(tbl.clone())),
                },
                Level::Ragged { size, pos } => BoundLevel::Ragged {
                    size: *size,
                    pos: bufs.add(&format!("{name}_pos{k}"), Buffer::I64(pos.clone().into())),
                },
            };
            levels.push(bl);
        }
        let values = bufs.add(&format!("{name}_val"), Buffer::F64(tensor.values().to_vec().into()));
        BoundTensor { name, fill: tensor.fill(), levels, values }
    }

    /// The tensor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.levels.len()
    }

    /// Dimension size of level `k`.
    pub fn dim(&self, k: usize) -> usize {
        self.levels[k].size()
    }

    /// The bound levels.
    pub fn levels(&self) -> &[BoundLevel] {
        &self.levels
    }

    /// The values buffer.
    pub fn values(&self) -> BufId {
        self.values
    }

    /// The fill value this tensor was bound with (baked into the generated
    /// code by [`BoundTensor::fill_expr`], so a rebind must match it).
    pub fn fill(&self) -> f64 {
        self.fill
    }

    /// The fill value as an expression.
    pub fn fill_expr(&self) -> Expr {
        Expr::float(self.fill)
    }

    /// The leaf a level hands to the compiler for a given child position:
    /// the element value for the innermost level, the subfiber position
    /// otherwise.
    pub(crate) fn child_leaf(&self, level: usize, child_pos: Expr) -> UnfurlLeaf {
        if level + 1 == self.levels.len() {
            UnfurlLeaf::Value(Expr::load(self.values, child_pos))
        } else {
            UnfurlLeaf::Subfiber(child_pos)
        }
    }

    /// The value of a zero-dimensional (scalar) tensor.
    pub fn scalar_value(&self) -> Expr {
        Expr::load(self.values, Expr::int(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_registers_named_buffers() {
        let t = Tensor::csr_matrix("A", 2, 4, &[0.0, 1.0, 0.0, 2.0, 3.0, 0.0, 0.0, 0.0]);
        let mut bufs = BufferSet::new();
        let b = BoundTensor::bind(&t, &mut bufs);
        assert_eq!(b.ndim(), 2);
        assert_eq!(b.dim(1), 4);
        assert!(bufs.lookup("A_pos1").is_some());
        assert!(bufs.lookup("A_idx1").is_some());
        assert!(bufs.lookup("A_val").is_some());
        assert_eq!(bufs.get(b.values()).len(), 3);
    }

    #[test]
    fn child_leaf_distinguishes_levels() {
        let t = Tensor::csr_matrix("A", 2, 4, &[0.0; 8]);
        let mut bufs = BufferSet::new();
        let b = BoundTensor::bind(&t, &mut bufs);
        assert!(matches!(b.child_leaf(0, Expr::int(1)), UnfurlLeaf::Subfiber(_)));
        assert!(matches!(b.child_leaf(1, Expr::int(1)), UnfurlLeaf::Value(_)));
    }

    #[test]
    fn unfurl_leaf_substitution_reaches_the_expression() {
        let mut names = finch_ir::Names::new();
        let v = names.fresh("p");
        let leaf = UnfurlLeaf::Subfiber(Expr::add(Expr::Var(v), Expr::int(1)));
        let s = leaf.substitute_var(v, &Expr::int(5));
        assert_eq!(s.expr(), &Expr::add(Expr::int(5), Expr::int(1)));
    }

    #[test]
    fn every_level_kind_binds() {
        let data = vec![1.0, 1.0, 0.0, 2.0, 2.0, 2.0, 0.0, 0.0, 3.0];
        let tensors = vec![
            Tensor::csr_matrix("a", 3, 3, &data),
            Tensor::vbl_matrix("b", 3, 3, &data),
            Tensor::band_matrix("c", 3, 3, &data),
            Tensor::rle_matrix("d", 3, 3, &data),
            Tensor::packbits_matrix("e", 3, 3, &data),
            Tensor::bitmap_matrix("f", 3, 3, &data),
            Tensor::ragged_matrix("g", 3, 3, &data),
            Tensor::triangular_matrix("h", 3, &data),
            Tensor::symmetric_matrix("i", 3, &data),
        ];
        let mut bufs = BufferSet::new();
        for t in &tensors {
            let b = BoundTensor::bind(t, &mut bufs);
            assert_eq!(b.ndim(), 2);
            assert_eq!(b.name(), t.name());
        }
    }
}
