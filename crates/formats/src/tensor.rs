//! The [`Tensor`] container: a stack of levels plus a values array.

use std::error::Error;
use std::fmt;

use finch_ir::Value;

use crate::level::Level;

/// Errors reported when constructing a malformed tensor.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// A `pos` array is not monotonically non-decreasing or has the wrong
    /// length.
    BadPositions {
        /// Which level.
        level: usize,
        /// Details.
        detail: String,
    },
    /// Coordinates are out of range or unsorted.
    BadCoordinates {
        /// Which level.
        level: usize,
        /// Details.
        detail: String,
    },
    /// The values array does not match the number of stored positions.
    BadValues {
        /// Expected number of values.
        expected: usize,
        /// Actual number of values.
        actual: usize,
    },
    /// Dense input data did not match the requested shape.
    ShapeMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Provided number of elements.
        actual: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::BadPositions { level, detail } => {
                write!(f, "invalid position array at level {level}: {detail}")
            }
            TensorError::BadCoordinates { level, detail } => {
                write!(f, "invalid coordinates at level {level}: {detail}")
            }
            TensorError::BadValues { expected, actual } => {
                write!(f, "values array has {actual} entries, expected {expected}")
            }
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "dense data has {actual} elements, expected {expected}")
            }
        }
    }
}

impl Error for TensorError {}

/// A structured tensor: a fiber tree of [`Level`]s with a flat values array
/// and a fill (background) value.
///
/// Levels are ordered outermost first; the values array is indexed by the
/// child positions of the innermost level.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    name: String,
    levels: Vec<Level>,
    values: Vec<f64>,
    fill: f64,
}

impl Tensor {
    /// Construct a tensor from its parts, validating the level arrays.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] when positions are non-monotonic,
    /// coordinates are out of range, or the values array has the wrong
    /// length.
    pub fn new(
        name: impl Into<String>,
        levels: Vec<Level>,
        values: Vec<f64>,
        fill: f64,
    ) -> Result<Self, TensorError> {
        let t = Tensor { name: name.into(), levels, values, fill };
        t.validate()?;
        Ok(t)
    }

    /// Construct a tensor from its parts **without validating** them — the
    /// untrusted-boundary constructor.  Use it to carry possibly-corrupt
    /// wire data up to a service boundary that calls [`Tensor::validate`]
    /// itself and surfaces failures as typed errors; [`Tensor::new`] is the
    /// eager-validating constructor for trusted callers.
    pub fn from_raw_parts(
        name: impl Into<String>,
        levels: Vec<Level>,
        values: Vec<f64>,
        fill: f64,
    ) -> Self {
        Tensor { name: name.into(), levels, values, fill }
    }

    /// A zero-dimensional tensor holding a single value.
    pub fn scalar(name: impl Into<String>, value: f64) -> Self {
        Tensor { name: name.into(), levels: Vec::new(), values: vec![value], fill: 0.0 }
    }

    /// A dense vector.
    pub fn dense_vector(name: impl Into<String>, data: &[f64]) -> Self {
        Tensor {
            name: name.into(),
            levels: vec![Level::Dense { size: data.len() }],
            values: data.to_vec(),
            fill: 0.0,
        }
    }

    /// A dense row-major matrix.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != nrows * ncols`.
    pub fn dense_matrix(name: impl Into<String>, nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense matrix data must match its shape");
        Tensor {
            name: name.into(),
            levels: vec![Level::Dense { size: nrows }, Level::Dense { size: ncols }],
            values: data.to_vec(),
            fill: 0.0,
        }
    }

    /// The tensor's name (used to name interpreter buffers).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the tensor (useful when the same data is bound under several
    /// roles in one kernel, e.g. `A` and its transpose).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replace the fill (background) value.
    pub fn with_fill(mut self, fill: f64) -> Self {
        self.fill = fill;
        self
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.levels.len()
    }

    /// The dimension sizes, outermost first.
    pub fn shape(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.size()).collect()
    }

    /// The levels, outermost first.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// The flat values array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The fill (background) value.
    pub fn fill(&self) -> f64 {
        self.fill
    }

    /// The fill value as an IR [`Value`].
    pub fn fill_value(&self) -> Value {
        Value::Float(self.fill)
    }

    /// The element at the given coordinates, using the slow reference
    /// traversal (the oracle the compiler-generated code is tested against).
    ///
    /// # Panics
    ///
    /// Panics when the number of coordinates does not match [`Tensor::ndim`].
    pub fn value_at(&self, coords: &[usize]) -> f64 {
        assert_eq!(coords.len(), self.ndim(), "coordinate rank mismatch");
        let mut p = 0usize;
        for (level, &i) in self.levels.iter().zip(coords) {
            match level.locate(p, i) {
                Some(q) => p = q,
                None => return self.fill,
            }
        }
        self.values[p]
    }

    /// Materialise the tensor as a row-major dense array.
    pub fn to_dense(&self) -> Vec<f64> {
        let shape = self.shape();
        let total: usize = shape.iter().product();
        if self.ndim() == 0 {
            return self.values.clone();
        }
        let mut out = Vec::with_capacity(total);
        let mut coords = vec![0usize; self.ndim()];
        for flat in 0..total {
            let mut rest = flat;
            for (k, &dim) in shape.iter().enumerate().rev() {
                coords[k] = rest % dim;
                rest /= dim;
            }
            out.push(self.value_at(&coords));
        }
        out
    }

    /// Number of elements different from the fill value.
    pub fn nnz(&self) -> usize {
        self.to_dense().iter().filter(|&&v| v != self.fill).count()
    }

    /// Number of explicitly stored values.
    pub fn stored(&self) -> usize {
        self.values.len()
    }

    /// Check the level arrays for structural soundness: monotone `pos`
    /// arrays starting at 0 that never point past their data, sorted
    /// in-range coordinates per fiber, and a values array matching the
    /// innermost level's span.  [`Tensor::new`] runs this eagerly; callers
    /// holding a [`Tensor::from_raw_parts`] tensor (untrusted wire data)
    /// should run it at their trust boundary.
    ///
    /// # Errors
    ///
    /// Returns the first [`TensorError`] found, outermost level first.
    pub fn validate(&self) -> Result<(), TensorError> {
        let mut nfibers = 1usize;
        for (k, level) in self.levels.iter().enumerate() {
            match level {
                Level::Dense { .. } | Level::Triangular { .. } | Level::Symmetric { .. } => {}
                Level::Bitmap { size, tbl } => {
                    if tbl.len() != nfibers * size {
                        return Err(TensorError::BadPositions {
                            level: k,
                            detail: format!(
                                "bytemap has {} entries, expected {}",
                                tbl.len(),
                                nfibers * size
                            ),
                        });
                    }
                }
                Level::SparseList { size, pos, idx } => {
                    check_pos(k, pos, nfibers)?;
                    check_sorted_coords(k, pos, idx, *size)?;
                }
                Level::RunLength { size, pos, idx } | Level::PackBits { size, pos, idx, .. } => {
                    check_pos(k, pos, nfibers)?;
                    check_pos_bound(k, pos, idx.len())?;
                    for p in 0..nfibers {
                        let (lo, hi) = (pos[p] as usize, pos[p + 1] as usize);
                        let mut prev = -1i64;
                        for &raw in &idx[lo..hi] {
                            let end = if matches!(level, Level::PackBits { .. }) {
                                raw.abs() - 1
                            } else {
                                raw
                            };
                            if end <= prev || end >= *size as i64 {
                                return Err(TensorError::BadCoordinates {
                                    level: k,
                                    detail: format!("segment end {end} out of order in fiber {p}"),
                                });
                            }
                            prev = end;
                        }
                        if hi > lo && prev != *size as i64 - 1 {
                            return Err(TensorError::BadCoordinates {
                                level: k,
                                detail: format!("fiber {p} does not cover the dimension"),
                            });
                        }
                    }
                }
                Level::SparseBand { pos, start, size } => {
                    check_pos(k, pos, nfibers)?;
                    for p in 0..nfibers {
                        let width = (pos[p + 1] - pos[p]) as usize;
                        if width > 0 && start[p] as usize + width > *size {
                            return Err(TensorError::BadCoordinates {
                                level: k,
                                detail: format!("band of fiber {p} exceeds the dimension"),
                            });
                        }
                    }
                }
                Level::SparseVbl { pos, idx, ofs, size } => {
                    check_pos(k, pos, nfibers)?;
                    for p in 0..nfibers {
                        let (lo, hi) = (pos[p] as usize, pos[p + 1] as usize);
                        let mut prev_end = -1i64;
                        for q in lo..hi {
                            let width = ofs[q + 1] - ofs[q];
                            let begin = idx[q] + 1 - width;
                            if begin <= prev_end || idx[q] >= *size as i64 || width <= 0 {
                                return Err(TensorError::BadCoordinates {
                                    level: k,
                                    detail: format!("block {q} of fiber {p} is malformed"),
                                });
                            }
                            prev_end = idx[q];
                        }
                    }
                }
                Level::Ragged { pos, size } => {
                    check_pos(k, pos, nfibers)?;
                    for p in 0..nfibers {
                        if (pos[p + 1] - pos[p]) as usize > *size {
                            return Err(TensorError::BadCoordinates {
                                level: k,
                                detail: format!("row {p} longer than the dimension"),
                            });
                        }
                    }
                }
            }
            nfibers = level.child_span(nfibers);
        }
        if self.values.len() != nfibers {
            return Err(TensorError::BadValues { expected: nfibers, actual: self.values.len() });
        }
        Ok(())
    }
}

fn check_pos(level: usize, pos: &[i64], nfibers: usize) -> Result<(), TensorError> {
    if pos.len() != nfibers + 1 {
        return Err(TensorError::BadPositions {
            level,
            detail: format!("pos has {} entries, expected {}", pos.len(), nfibers + 1),
        });
    }
    if pos.windows(2).any(|w| w[1] < w[0]) || pos[0] != 0 {
        return Err(TensorError::BadPositions {
            level,
            detail: "pos is not monotonic from 0".into(),
        });
    }
    Ok(())
}

/// A monotonic `pos` array must not point past the end of the array it
/// indexes, or the per-fiber validation loops would go out of bounds.
fn check_pos_bound(level: usize, pos: &[i64], len: usize) -> Result<(), TensorError> {
    match pos.last() {
        Some(&last) if last as usize > len => Err(TensorError::BadPositions {
            level,
            detail: format!("pos points past the end of the data ({last} > {len})"),
        }),
        _ => Ok(()),
    }
}

fn check_sorted_coords(
    level: usize,
    pos: &[i64],
    idx: &[i64],
    size: usize,
) -> Result<(), TensorError> {
    check_pos_bound(level, pos, idx.len())?;
    for p in 0..pos.len() - 1 {
        let (lo, hi) = (pos[p] as usize, pos[p + 1] as usize);
        let mut prev = -1i64;
        for &c in &idx[lo..hi] {
            if c <= prev || c >= size as i64 {
                return Err(TensorError::BadCoordinates {
                    level,
                    detail: format!("coordinate {c} out of order in fiber {p}"),
                });
            }
            prev = c;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_vector_roundtrip() {
        let data = vec![1.0, 0.0, 2.5, -3.0];
        let t = Tensor::dense_vector("x", &data);
        assert_eq!(t.to_dense(), data);
        assert_eq!(t.ndim(), 1);
        assert_eq!(t.shape(), vec![4]);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.value_at(&[2]), 2.5);
    }

    #[test]
    fn dense_matrix_roundtrip() {
        let data: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let t = Tensor::dense_matrix("A", 3, 4, &data);
        assert_eq!(t.to_dense(), data);
        assert_eq!(t.value_at(&[2, 3]), 11.0);
        assert_eq!(t.shape(), vec![3, 4]);
    }

    #[test]
    fn scalar_tensors_hold_one_value() {
        let t = Tensor::scalar("C", 7.5);
        assert_eq!(t.ndim(), 0);
        assert_eq!(t.to_dense(), vec![7.5]);
    }

    #[test]
    fn csr_like_tensor_via_new() {
        // 2x5 matrix with rows {1: 2.0 at col 1} and {4.0 at col 0, 5.0 at col 4}
        let t = Tensor::new(
            "A",
            vec![
                Level::Dense { size: 2 },
                Level::SparseList { size: 5, pos: vec![0, 1, 3], idx: vec![1, 0, 4] },
            ],
            vec![2.0, 4.0, 5.0],
            0.0,
        )
        .unwrap();
        assert_eq!(t.to_dense(), vec![0.0, 2.0, 0.0, 0.0, 0.0, 4.0, 0.0, 0.0, 0.0, 5.0]);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.stored(), 3);
    }

    #[test]
    fn validation_rejects_bad_pos() {
        let err = Tensor::new(
            "A",
            vec![Level::SparseList { size: 5, pos: vec![0, 2, 1], idx: vec![0, 1] }],
            vec![1.0, 2.0],
            0.0,
        )
        .unwrap_err();
        assert!(matches!(err, TensorError::BadPositions { .. }));
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn validation_rejects_unsorted_coordinates() {
        let err = Tensor::new(
            "A",
            vec![
                Level::Dense { size: 1 },
                Level::SparseList { size: 5, pos: vec![0, 2], idx: vec![3, 1] },
            ],
            vec![1.0, 2.0],
            0.0,
        )
        .unwrap_err();
        assert!(matches!(err, TensorError::BadCoordinates { .. }));
    }

    #[test]
    fn validation_rejects_pos_past_end_of_idx() {
        // pos claims 5 stored entries but idx only has 2; must be an Err,
        // not an out-of-bounds panic, even when an early coordinate is
        // also invalid.
        let err = Tensor::new(
            "x",
            vec![
                Level::Dense { size: 1 },
                Level::SparseList { size: 4, pos: vec![0, 5], idx: vec![5, 1] },
            ],
            vec![1.0, 2.0],
            0.0,
        )
        .unwrap_err();
        assert!(matches!(err, TensorError::BadPositions { .. }));
    }

    #[test]
    fn validation_rejects_wrong_value_count() {
        let err = Tensor::new("x", vec![Level::Dense { size: 3 }], vec![1.0], 0.0).unwrap_err();
        assert!(matches!(err, TensorError::BadValues { expected: 3, actual: 1 }));
    }

    #[test]
    fn from_raw_parts_defers_validation() {
        // A corrupted CSR: pos is not monotonic.  Construction succeeds
        // (no panic, no eager check); validate() reports the corruption.
        let t = Tensor::from_raw_parts(
            "A",
            vec![
                Level::Dense { size: 2 },
                Level::SparseList { size: 5, pos: vec![0, 3, 1], idx: vec![1, 2, 4] },
            ],
            vec![1.0, 2.0, 3.0],
            0.0,
        );
        assert!(matches!(t.validate(), Err(TensorError::BadPositions { .. })));

        // Well-formed raw parts validate cleanly and behave like new().
        let ok = Tensor::from_raw_parts(
            "B",
            vec![Level::SparseList { size: 4, pos: vec![0, 2], idx: vec![0, 3] }],
            vec![7.0, 8.0],
            0.0,
        );
        ok.validate().unwrap();
        assert_eq!(ok.to_dense(), vec![7.0, 0.0, 0.0, 8.0]);
    }

    #[test]
    fn nonzero_fill_changes_background_reads() {
        let t = Tensor::new(
            "A",
            vec![Level::SparseList { size: 4, pos: vec![0, 1], idx: vec![2] }],
            vec![9.0],
            0.0,
        )
        .unwrap()
        .with_fill(1.0);
        assert_eq!(t.to_dense(), vec![1.0, 1.0, 9.0, 1.0]);
    }
}
