//! Conversions between dense data and the structured formats.
//!
//! These constructors are what a user of the library reaches for first:
//! give them a dense vector / matrix (or a COO triple list) and get back a
//! [`Tensor`] in the requested format.  Each conversion is written so that
//! `to_dense()` of the result reproduces the input exactly, which the
//! property tests in `tests/` rely on.

use crate::level::Level;
use crate::tensor::Tensor;

impl Tensor {
    // -- vectors ------------------------------------------------------------

    /// A sparse-list ("compressed") vector holding the nonzeros of `data`.
    pub fn sparse_list_vector(name: impl Into<String>, data: &[f64]) -> Self {
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for (i, &v) in data.iter().enumerate() {
            if v != 0.0 {
                idx.push(i as i64);
                vals.push(v);
            }
        }
        let pos = vec![0, idx.len() as i64];
        Tensor::new(name, vec![Level::SparseList { size: data.len(), pos, idx }], vals, 0.0)
            .expect("sparse list conversion is well-formed")
    }

    /// A sparse-band vector: stores the (single) contiguous range spanning
    /// the first to the last nonzero of `data`.
    pub fn band_vector(name: impl Into<String>, data: &[f64]) -> Self {
        let first = data.iter().position(|&v| v != 0.0);
        let (start, vals) = match first {
            None => (0i64, Vec::new()),
            Some(first) => {
                let last = data.iter().rposition(|&v| v != 0.0).expect("nonzero exists");
                (first as i64, data[first..=last].to_vec())
            }
        };
        let pos = vec![0, vals.len() as i64];
        Tensor::new(
            name,
            vec![Level::SparseBand { size: data.len(), pos, start: vec![start] }],
            vals,
            0.0,
        )
        .expect("band conversion is well-formed")
    }

    /// A variable-block-list (VBL) vector: stores each maximal contiguous
    /// group of nonzeros as one dense block.
    pub fn vbl_vector(name: impl Into<String>, data: &[f64]) -> Self {
        let (pos, idx, ofs, vals) = vbl_rows(&[data.to_vec()]);
        Tensor::new(name, vec![Level::SparseVbl { size: data.len(), pos, idx, ofs }], vals, 0.0)
            .expect("vbl conversion is well-formed")
    }

    /// A run-length-encoded vector: stores one value per maximal run of
    /// equal values.
    pub fn rle_vector(name: impl Into<String>, data: &[f64]) -> Self {
        let (pos, idx, vals) = rle_rows(&[data.to_vec()]);
        Tensor::new(name, vec![Level::RunLength { size: data.len(), pos, idx }], vals, 0.0)
            .expect("rle conversion is well-formed")
    }

    /// A PackBits-encoded vector: long runs of equal values become run
    /// segments, everything else becomes literal segments.
    pub fn packbits_vector(name: impl Into<String>, data: &[f64]) -> Self {
        let (pos, idx, ofs, vals) = packbits_rows(&[data.to_vec()], 3);
        Tensor::new(name, vec![Level::PackBits { size: data.len(), pos, idx, ofs }], vals, 0.0)
            .expect("packbits conversion is well-formed")
    }

    /// A bitmap (bytemap + dense values) vector.
    pub fn bitmap_vector(name: impl Into<String>, data: &[f64]) -> Self {
        let tbl: Vec<bool> = data.iter().map(|&v| v != 0.0).collect();
        Tensor::new(name, vec![Level::Bitmap { size: data.len(), tbl }], data.to_vec(), 0.0)
            .expect("bitmap conversion is well-formed")
    }

    // -- matrices (dense outer rows) -----------------------------------------

    /// CSR: dense rows over sparse-list columns.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != nrows * ncols`.
    pub fn csr_matrix(name: impl Into<String>, nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense matrix data must match its shape");
        let mut pos = vec![0i64];
        let mut idx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..nrows {
            for c in 0..ncols {
                let v = data[r * ncols + c];
                if v != 0.0 {
                    idx.push(c as i64);
                    vals.push(v);
                }
            }
            pos.push(idx.len() as i64);
        }
        Tensor::new(
            name,
            vec![Level::Dense { size: nrows }, Level::SparseList { size: ncols, pos, idx }],
            vals,
            0.0,
        )
        .expect("csr conversion is well-formed")
    }

    /// CSR built from sorted-or-unsorted COO triples `(row, col, value)`.
    /// Later duplicates overwrite earlier ones.
    pub fn csr_from_coo(
        name: impl Into<String>,
        nrows: usize,
        ncols: usize,
        triples: &[(usize, usize, f64)],
    ) -> Self {
        let mut dense = vec![0.0; nrows * ncols];
        for &(r, c, v) in triples {
            dense[r * ncols + c] = v;
        }
        Tensor::csr_matrix(name, nrows, ncols, &dense)
    }

    /// Dense rows over VBL columns (the paper's clustered format, Fig. 3b).
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != nrows * ncols`.
    pub fn vbl_matrix(name: impl Into<String>, nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense matrix data must match its shape");
        let rows: Vec<Vec<f64>> =
            (0..nrows).map(|r| data[r * ncols..(r + 1) * ncols].to_vec()).collect();
        let (pos, idx, ofs, vals) = vbl_rows(&rows);
        Tensor::new(
            name,
            vec![Level::Dense { size: nrows }, Level::SparseVbl { size: ncols, pos, idx, ofs }],
            vals,
            0.0,
        )
        .expect("vbl conversion is well-formed")
    }

    /// Dense rows over single-band columns (the paper's banded format,
    /// Fig. 3f).
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != nrows * ncols`.
    pub fn band_matrix(name: impl Into<String>, nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense matrix data must match its shape");
        let mut pos = vec![0i64];
        let mut start = Vec::new();
        let mut vals = Vec::new();
        for r in 0..nrows {
            let row = &data[r * ncols..(r + 1) * ncols];
            match row.iter().position(|&v| v != 0.0) {
                None => start.push(0),
                Some(first) => {
                    let last = row.iter().rposition(|&v| v != 0.0).expect("nonzero exists");
                    start.push(first as i64);
                    vals.extend_from_slice(&row[first..=last]);
                }
            }
            pos.push(vals.len() as i64);
        }
        Tensor::new(
            name,
            vec![Level::Dense { size: nrows }, Level::SparseBand { size: ncols, pos, start }],
            vals,
            0.0,
        )
        .expect("band conversion is well-formed")
    }

    /// Dense rows over run-length-encoded columns (Fig. 3g).
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != nrows * ncols`.
    pub fn rle_matrix(name: impl Into<String>, nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense matrix data must match its shape");
        let rows: Vec<Vec<f64>> =
            (0..nrows).map(|r| data[r * ncols..(r + 1) * ncols].to_vec()).collect();
        let (pos, idx, vals) = rle_rows(&rows);
        Tensor::new(
            name,
            vec![Level::Dense { size: nrows }, Level::RunLength { size: ncols, pos, idx }],
            vals,
            0.0,
        )
        .expect("rle conversion is well-formed")
    }

    /// Dense rows over PackBits columns (Fig. 3h).
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != nrows * ncols`.
    pub fn packbits_matrix(
        name: impl Into<String>,
        nrows: usize,
        ncols: usize,
        data: &[f64],
    ) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense matrix data must match its shape");
        let rows: Vec<Vec<f64>> =
            (0..nrows).map(|r| data[r * ncols..(r + 1) * ncols].to_vec()).collect();
        let (pos, idx, ofs, vals) = packbits_rows(&rows, 3);
        Tensor::new(
            name,
            vec![Level::Dense { size: nrows }, Level::PackBits { size: ncols, pos, idx, ofs }],
            vals,
            0.0,
        )
        .expect("packbits conversion is well-formed")
    }

    /// Dense rows over bitmap columns (Fig. 6c).
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != nrows * ncols`.
    pub fn bitmap_matrix(
        name: impl Into<String>,
        nrows: usize,
        ncols: usize,
        data: &[f64],
    ) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense matrix data must match its shape");
        let tbl: Vec<bool> = data.iter().map(|&v| v != 0.0).collect();
        Tensor::new(
            name,
            vec![Level::Dense { size: nrows }, Level::Bitmap { size: ncols, tbl }],
            data.to_vec(),
            0.0,
        )
        .expect("bitmap conversion is well-formed")
    }

    /// Packed lower-triangular storage (Fig. 3a): entries above the diagonal
    /// are not stored and read as zero.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != n * n`.
    pub fn triangular_matrix(name: impl Into<String>, n: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n * n, "dense matrix data must match its shape");
        let mut vals = Vec::with_capacity(n * (n + 1) / 2);
        for r in 0..n {
            for c in 0..=r {
                vals.push(data[r * n + c]);
            }
        }
        Tensor::new(name, vec![Level::Dense { size: n }, Level::Triangular { size: n }], vals, 0.0)
            .expect("triangular conversion is well-formed")
    }

    /// Packed symmetric storage (Fig. 3c): only the lower triangle is
    /// stored, reads above the diagonal are mirrored.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != n * n`.
    pub fn symmetric_matrix(name: impl Into<String>, n: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n * n, "dense matrix data must match its shape");
        let mut vals = Vec::with_capacity(n * (n + 1) / 2);
        for r in 0..n {
            for c in 0..=r {
                vals.push(data[r * n + c]);
            }
        }
        Tensor::new(name, vec![Level::Dense { size: n }, Level::Symmetric { size: n }], vals, 0.0)
            .expect("symmetric conversion is well-formed")
    }

    /// Ragged rows (Fig. 3e): each row stores its prefix up to the last
    /// nonzero, the rest reads as zero.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != nrows * ncols`.
    pub fn ragged_matrix(
        name: impl Into<String>,
        nrows: usize,
        ncols: usize,
        data: &[f64],
    ) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense matrix data must match its shape");
        let mut pos = vec![0i64];
        let mut vals = Vec::new();
        for r in 0..nrows {
            let row = &data[r * ncols..(r + 1) * ncols];
            let len = row.iter().rposition(|&v| v != 0.0).map_or(0, |p| p + 1);
            vals.extend_from_slice(&row[..len]);
            pos.push(vals.len() as i64);
        }
        Tensor::new(
            name,
            vec![Level::Dense { size: nrows }, Level::Ragged { size: ncols, pos }],
            vals,
            0.0,
        )
        .expect("ragged conversion is well-formed")
    }

    /// Convert a matrix tensor to its transpose, materialised densely and
    /// re-encoded with the provided converter.  Used by the triangle
    /// counting benchmark, which (like the paper) transposes its last
    /// argument before the kernel runs.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not two-dimensional.
    pub fn transposed_dense(&self, name: impl Into<String>) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose requires a matrix");
        let shape = self.shape();
        let (nrows, ncols) = (shape[0], shape[1]);
        let dense = self.to_dense();
        let mut out = vec![0.0; nrows * ncols];
        for r in 0..nrows {
            for c in 0..ncols {
                out[c * nrows + r] = dense[r * ncols + c];
            }
        }
        Tensor::dense_matrix(name, ncols, nrows, &out)
    }
}

/// Shared helper: encode rows as maximal contiguous nonzero blocks.
fn vbl_rows(rows: &[Vec<f64>]) -> (Vec<i64>, Vec<i64>, Vec<i64>, Vec<f64>) {
    let mut pos = vec![0i64];
    let mut idx = Vec::new();
    let mut ofs = vec![0i64];
    let mut vals = Vec::new();
    for row in rows {
        let mut c = 0usize;
        while c < row.len() {
            if row[c] != 0.0 {
                let begin = c;
                while c < row.len() && row[c] != 0.0 {
                    c += 1;
                }
                let end = c - 1;
                idx.push(end as i64);
                vals.extend_from_slice(&row[begin..=end]);
                ofs.push(vals.len() as i64);
            } else {
                c += 1;
            }
        }
        pos.push(idx.len() as i64);
    }
    (pos, idx, ofs, vals)
}

/// Shared helper: encode rows as runs of equal values covering each row.
fn rle_rows(rows: &[Vec<f64>]) -> (Vec<i64>, Vec<i64>, Vec<f64>) {
    let mut pos = vec![0i64];
    let mut idx = Vec::new();
    let mut vals = Vec::new();
    for row in rows {
        let mut c = 0usize;
        while c < row.len() {
            let v = row[c];
            let begin = c;
            while c < row.len() && row[c] == v {
                c += 1;
            }
            let _ = begin;
            idx.push((c - 1) as i64);
            vals.push(v);
        }
        pos.push(idx.len() as i64);
    }
    (pos, idx, vals)
}

/// Shared helper: PackBits encoding with a minimum run length.
fn packbits_rows(rows: &[Vec<f64>], min_run: usize) -> (Vec<i64>, Vec<i64>, Vec<i64>, Vec<f64>) {
    let mut pos = vec![0i64];
    let mut idx = Vec::new();
    let mut ofs = vec![0i64];
    let mut vals = Vec::new();
    for row in rows {
        let mut c = 0usize;
        let mut literal_start: Option<usize> = None;
        while c < row.len() {
            // Measure the run starting at c.
            let v = row[c];
            let mut end = c;
            while end + 1 < row.len() && row[end + 1] == v {
                end += 1;
            }
            let run_len = end - c + 1;
            if run_len >= min_run {
                // Flush any pending literal segment first.
                if let Some(ls) = literal_start.take() {
                    idx.push(-(c as i64)); // segment covering ls..=c-1, marker -(end+1)
                    vals.extend_from_slice(&row[ls..c]);
                    ofs.push(vals.len() as i64);
                }
                idx.push((end + 1) as i64);
                vals.push(v);
                ofs.push(vals.len() as i64);
            } else if literal_start.is_none() {
                literal_start = Some(c);
            }
            c = end + 1;
            if run_len < min_run {
                // The short run stays pending as part of the literal segment.
                continue;
            }
        }
        if let Some(ls) = literal_start.take() {
            idx.push(-(row.len() as i64));
            vals.extend_from_slice(&row[ls..]);
            ofs.push(vals.len() as i64);
        }
        pos.push(idx.len() as i64);
    }
    (pos, idx, ofs, vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vec() -> Vec<f64> {
        vec![0.0, 1.9, 0.0, 3.0, 2.7, 0.0, 0.0, 0.0, 5.5, 0.0, 0.0]
    }

    fn banded_vec() -> Vec<f64> {
        vec![0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0]
    }

    #[test]
    fn vector_formats_roundtrip() {
        let data = sample_vec();
        for t in [
            Tensor::sparse_list_vector("x", &data),
            Tensor::vbl_vector("x", &data),
            Tensor::rle_vector("x", &data),
            Tensor::packbits_vector("x", &data),
            Tensor::bitmap_vector("x", &data),
        ] {
            assert_eq!(t.to_dense(), data, "format {}", t.levels()[0].format_name());
        }
        // The band format stores one contiguous range, so it only roundtrips
        // banded data exactly.
        let banded = banded_vec();
        assert_eq!(Tensor::band_vector("b", &banded).to_dense(), banded);
    }

    #[test]
    fn band_vector_of_scattered_data_stores_the_hull() {
        let data = sample_vec();
        let t = Tensor::band_vector("b", &data);
        // The hull from the first to the last nonzero is stored explicitly,
        // including interior zeros, so the roundtrip is still exact.
        assert_eq!(t.to_dense(), data);
        assert_eq!(t.stored(), 8);
    }

    #[test]
    fn matrix_formats_roundtrip() {
        // The clustered example of the paper's Figure 1c, as two rows.
        let data = vec![
            0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0, //
            0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0,
        ];
        for t in [
            Tensor::csr_matrix("A", 2, 11, &data),
            Tensor::vbl_matrix("A", 2, 11, &data),
            Tensor::band_matrix("A", 2, 11, &data),
            Tensor::rle_matrix("A", 2, 11, &data),
            Tensor::packbits_matrix("A", 2, 11, &data),
            Tensor::bitmap_matrix("A", 2, 11, &data),
            Tensor::ragged_matrix("A", 2, 11, &data),
        ] {
            assert_eq!(t.to_dense(), data, "format {}", t.levels()[1].format_name());
        }
    }

    #[test]
    fn csr_from_coo_places_triples() {
        let t = Tensor::csr_from_coo("A", 3, 3, &[(0, 1, 2.0), (2, 0, 4.0), (2, 2, 6.0)]);
        assert_eq!(t.to_dense(), vec![0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 4.0, 0.0, 6.0]);
        assert_eq!(t.nnz(), 3);
    }

    #[test]
    fn triangular_and_symmetric_roundtrip() {
        let n = 4;
        let mut lower = vec![0.0; n * n];
        let mut sym = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..=r {
                let v = (r * n + c + 1) as f64;
                lower[r * n + c] = v;
                sym[r * n + c] = v;
                sym[c * n + r] = v;
            }
        }
        assert_eq!(Tensor::triangular_matrix("L", n, &lower).to_dense(), lower);
        assert_eq!(Tensor::symmetric_matrix("S", n, &sym).to_dense(), sym);
    }

    #[test]
    fn rle_compresses_repeated_values() {
        let data = vec![3.0, 3.0, 3.0, 1.0, 1.0, 1.0, 2.0, 2.0, 5.0, 2.0, 4.0];
        let t = Tensor::rle_vector("img", &data);
        assert_eq!(t.to_dense(), data);
        assert_eq!(t.stored(), 6, "six runs expected");
    }

    #[test]
    fn packbits_mixes_runs_and_literals() {
        let data = vec![1.0, 1.0, 1.0, 1.0, 9.0, 7.0, 2.0, 2.0, 2.0, 2.0, 3.0];
        let t = Tensor::packbits_vector("img", &data);
        assert_eq!(t.to_dense(), data);
        // Storage: run(1.0) + literal(9,7) + run(2.0) + literal(3) = 6 values,
        // versus 11 dense.
        assert!(t.stored() < data.len());
    }

    #[test]
    fn transpose_matches_manual_transpose() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let a = Tensor::csr_matrix("A", 2, 3, &data);
        let at = a.transposed_dense("At");
        assert_eq!(at.shape(), vec![3, 2]);
        assert_eq!(at.value_at(&[2, 1]), 6.0);
        assert_eq!(at.value_at(&[0, 1]), 4.0);
    }

    #[test]
    fn empty_rows_are_handled_by_every_matrix_format() {
        let data = vec![
            0.0, 0.0, 0.0, 0.0, //
            0.0, 7.0, 8.0, 0.0, //
            0.0, 0.0, 0.0, 0.0,
        ];
        for t in [
            Tensor::csr_matrix("A", 3, 4, &data),
            Tensor::vbl_matrix("A", 3, 4, &data),
            Tensor::band_matrix("A", 3, 4, &data),
            Tensor::rle_matrix("A", 3, 4, &data),
            Tensor::packbits_matrix("A", 3, 4, &data),
            Tensor::ragged_matrix("A", 3, 4, &data),
        ] {
            assert_eq!(t.to_dense(), data, "format {}", t.levels()[1].format_name());
        }
    }
}
