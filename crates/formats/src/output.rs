//! Output-level assembly: turning the arrays a kernel assembled at run time
//! into a first-class [`Tensor`].
//!
//! The paper's compiler is format-polymorphic on *both* sides of an
//! assignment: an output can be a preallocated dense buffer, or a compressed
//! level whose `pos`/`idx`/`val` arrays are appended to as the kernel visits
//! stored coordinates.  A [`LevelSpec`] names the requested storage of one
//! output dimension, and [`OutputBuilder`] finalizes the raw arrays into a
//! validated [`Tensor`] — so a kernel's result can be re-bound as an input
//! of a follow-up kernel (kernel chaining).

use crate::level::Level;
use crate::tensor::{Tensor, TensorError};

/// The requested storage scheme of one output dimension.
///
/// This is the output-side counterpart of [`Level`]: a `Level` describes
/// arrays that already exist, a `LevelSpec` describes the arrays a kernel
/// must assemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelSpec {
    /// Every coordinate `0..size` is materialised (the classic preallocated
    /// output buffer).
    Dense {
        /// The dimension size.
        size: usize,
    },
    /// Only visited coordinates are materialised, appended in order to
    /// `pos`/`idx`/`val` arrays (the paper's compressed level).
    SparseList {
        /// The dimension size.
        size: usize,
    },
}

impl LevelSpec {
    /// The dimension size of the level.
    pub fn size(&self) -> usize {
        match self {
            LevelSpec::Dense { size } | LevelSpec::SparseList { size } => *size,
        }
    }

    /// A short name for the format (mirrors [`Level::format_name`]).
    pub fn format_name(&self) -> &'static str {
        match self {
            LevelSpec::Dense { .. } => "dense",
            LevelSpec::SparseList { .. } => "sparse-list",
        }
    }
}

/// Finalizes the arrays assembled by a kernel into a validated [`Tensor`].
///
/// ```
/// use finch_formats::{LevelSpec, OutputBuilder};
///
/// // A length-6 sparse vector with entries at coordinates 1 and 4.
/// let builder = OutputBuilder::new("C", vec![LevelSpec::SparseList { size: 6 }]);
/// let t = builder.finalize_sparse_list(vec![0, 2], vec![1, 4], vec![2.5, 7.0], 0.0).unwrap();
/// assert_eq!(t.to_dense(), vec![0.0, 2.5, 0.0, 0.0, 7.0, 0.0]);
/// assert_eq!(t.stored(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct OutputBuilder {
    name: String,
    specs: Vec<LevelSpec>,
}

impl OutputBuilder {
    /// A builder for an output named `name` with the given level stack
    /// (outermost first).
    pub fn new(name: impl Into<String>, specs: Vec<LevelSpec>) -> Self {
        OutputBuilder { name: name.into(), specs }
    }

    /// The level stack, outermost first.
    pub fn specs(&self) -> &[LevelSpec] {
        &self.specs
    }

    /// The dimension sizes, outermost first.
    pub fn shape(&self) -> Vec<usize> {
        self.specs.iter().map(|s| s.size()).collect()
    }

    /// Finalize an all-dense output: `values` holds one element per
    /// coordinate in row-major order (a zero-dimensional stack holds the
    /// single scalar).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] when `values` does not match the shape.
    pub fn finalize_dense(&self, values: Vec<f64>, fill: f64) -> Result<Tensor, TensorError> {
        let levels = self.specs.iter().map(|s| Level::Dense { size: s.size() }).collect();
        Tensor::new(self.name.clone(), levels, values, fill)
    }

    /// Finalize a stack whose innermost level is a sparse list assembled as
    /// `pos`/`idx`/`val` (all outer levels dense): the shape the kernel-side
    /// `Append`/`FiberEnd` assembly produces.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] when the arrays are structurally invalid —
    /// `pos` not monotonic from 0 or not covering every outer fiber
    /// (e.g. the kernel never ran), coordinates unsorted or out of range,
    /// or a value count that does not match the stored entries.
    pub fn finalize_sparse_list(
        &self,
        pos: Vec<i64>,
        idx: Vec<i64>,
        values: Vec<f64>,
        fill: f64,
    ) -> Result<Tensor, TensorError> {
        let (inner, outer) = self.specs.split_last().expect("a sparse stack has a level");
        let mut levels: Vec<Level> =
            outer.iter().map(|s| Level::Dense { size: s.size() }).collect();
        levels.push(Level::SparseList { size: inner.size(), pos, idx });
        Tensor::new(self.name.clone(), levels, values, fill)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_finalize_matches_dense_constructors() {
        let b = OutputBuilder::new("C", vec![LevelSpec::Dense { size: 3 }]);
        let t = b.finalize_dense(vec![1.0, 0.0, 2.0], 0.0).unwrap();
        assert_eq!(t.to_dense(), vec![1.0, 0.0, 2.0]);
        assert_eq!(t.name(), "C");
        assert_eq!(b.shape(), vec![3]);
    }

    #[test]
    fn scalar_finalize_is_zero_dimensional() {
        let b = OutputBuilder::new("C", Vec::new());
        let t = b.finalize_dense(vec![7.5], 0.0).unwrap();
        assert_eq!(t.ndim(), 0);
        assert_eq!(t.to_dense(), vec![7.5]);
    }

    #[test]
    fn sparse_list_finalize_roundtrips_through_to_dense() {
        let b = OutputBuilder::new("C", vec![LevelSpec::SparseList { size: 5 }]);
        let t = b.finalize_sparse_list(vec![0, 2], vec![0, 3], vec![4.0, 9.0], 0.0).unwrap();
        assert_eq!(t.to_dense(), vec![4.0, 0.0, 0.0, 9.0, 0.0]);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn csr_shaped_output_finalizes_with_dense_outer_levels() {
        let b = OutputBuilder::new(
            "C",
            vec![LevelSpec::Dense { size: 2 }, LevelSpec::SparseList { size: 4 }],
        );
        let t = b.finalize_sparse_list(vec![0, 1, 3], vec![2, 0, 3], vec![5.0, 6.0, 7.0], 0.0);
        let t = t.unwrap();
        assert_eq!(t.to_dense(), vec![0.0, 0.0, 5.0, 0.0, 6.0, 0.0, 0.0, 7.0]);
        assert_eq!(t.shape(), vec![2, 4]);
    }

    #[test]
    fn malformed_assembly_is_rejected_not_panicking() {
        let b = OutputBuilder::new("C", vec![LevelSpec::SparseList { size: 5 }]);
        // pos never closed (kernel never ran): one entry instead of two.
        assert!(b.finalize_sparse_list(vec![0], vec![], vec![], 0.0).is_err());
        // Unsorted coordinates.
        assert!(b.finalize_sparse_list(vec![0, 2], vec![3, 1], vec![1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn spec_accessors() {
        assert_eq!(LevelSpec::Dense { size: 4 }.size(), 4);
        assert_eq!(LevelSpec::SparseList { size: 4 }.format_name(), "sparse-list");
        assert_eq!(LevelSpec::Dense { size: 4 }.format_name(), "dense");
    }
}
