//! # finch-formats — fiber-tree tensor storage and looplet unfurling
//!
//! The paper (§4) views a multidimensional array as a tree of *fibers*: each
//! **level** stores, for every fiber of one dimension, how that fiber's
//! stored entries map to coordinates and to positions in the next level (or
//! in the values array, for the innermost level).  Looplets then "further
//! decompose the remaining unidimensional structure": each level knows how
//! to **unfurl** one of its fibers into a looplet nest, and the compiler
//! merges the nests of all accessed tensors into one coiterating loop.
//!
//! This crate provides:
//!
//! * the [`Level`] formats of the paper's Figure 3 — dense, sparse list
//!   (compressed), sparse band, sparse VBL (variable block list), run-length,
//!   PackBits, bitmap, lower-triangular, symmetric and ragged;
//! * the [`Tensor`] container (levels + values + fill value), with
//!   conversions to and from dense data that serve as correctness oracles;
//! * [`BoundTensor`], which registers a tensor's arrays as interpreter
//!   buffers and **unfurls** any fiber into a [`Looplet`](finch_looplets::Looplet)
//!   nest under a chosen access [`Protocol`](finch_cin::Protocol) (walk,
//!   gallop, locate — paper §7).
//!
//! ```
//! use finch_formats::Tensor;
//!
//! let dense = vec![0.0, 1.5, 0.0, 0.0, 2.5, 0.0];
//! let t = Tensor::sparse_list_vector("x", &dense);
//! assert_eq!(t.to_dense(), dense);
//! assert_eq!(t.nnz(), 2);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod bound;
mod convert;
mod level;
mod output;
mod tensor;
mod unfurl;

pub use bound::{BoundLevel, BoundTensor, UnfurlLeaf};
pub use level::Level;
pub use output::{LevelSpec, OutputBuilder};
pub use tensor::{Tensor, TensorError};
