//! Pointwise expressions of concrete index notation.

use finch_ir::{Expr, Value};

use crate::index::{Access, IndexVar};

/// The pointwise operators available in CIN expressions.
///
/// Operators with identities/annihilators are understood by the rewrite
/// engine (`finch-rewrite`), which is how sparse and structural
/// optimisations such as zero-annihilation are expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CinOp {
    /// n-ary addition.
    Add,
    /// Binary subtraction.
    Sub,
    /// n-ary multiplication.
    Mul,
    /// Binary division.
    Div,
    /// n-ary minimum.
    Min,
    /// n-ary maximum.
    Max,
    /// n-ary logical and.
    And,
    /// n-ary logical or.
    Or,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// First non-missing argument (paper §8).
    Coalesce,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Round and clamp to `0..=255` (`round(UInt8, ...)` in the paper's
    /// alpha-blending kernel).
    Round,
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
}

impl CinOp {
    /// The printed name of the operator.
    pub fn name(self) -> &'static str {
        match self {
            CinOp::Add => "+",
            CinOp::Sub => "-",
            CinOp::Mul => "*",
            CinOp::Div => "/",
            CinOp::Min => "min",
            CinOp::Max => "max",
            CinOp::And => "&&",
            CinOp::Or => "||",
            CinOp::Eq => "==",
            CinOp::Ne => "!=",
            CinOp::Lt => "<",
            CinOp::Le => "<=",
            CinOp::Gt => ">",
            CinOp::Ge => ">=",
            CinOp::Coalesce => "coalesce",
            CinOp::Sqrt => "sqrt",
            CinOp::Abs => "abs",
            CinOp::Round => "round",
            CinOp::Neg => "neg",
            CinOp::Not => "!",
        }
    }

    /// Whether the operator is associative and may be written with any
    /// number of arguments (flattened by the rewrite engine).
    pub fn is_variadic(self) -> bool {
        matches!(
            self,
            CinOp::Add
                | CinOp::Mul
                | CinOp::Min
                | CinOp::Max
                | CinOp::And
                | CinOp::Or
                | CinOp::Coalesce
        )
    }

    /// The identity element of the operator, if it has one.
    pub fn identity(self) -> Option<Value> {
        match self {
            CinOp::Add => Some(Value::Float(0.0)),
            CinOp::Mul => Some(Value::Float(1.0)),
            CinOp::Min => Some(Value::Float(f64::INFINITY)),
            CinOp::Max => Some(Value::Float(f64::NEG_INFINITY)),
            CinOp::And => Some(Value::Bool(true)),
            CinOp::Or => Some(Value::Bool(false)),
            _ => None,
        }
    }

    /// The annihilator of the operator, if it has one (`x * 0 = 0`,
    /// `x && false = false`, ...).
    pub fn annihilator(self) -> Option<Value> {
        match self {
            CinOp::Mul => Some(Value::Float(0.0)),
            CinOp::And => Some(Value::Bool(false)),
            CinOp::Or => Some(Value::Bool(true)),
            _ => None,
        }
    }
}

/// A pointwise CIN expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CinExpr {
    /// A literal value.
    Literal(Value),
    /// An index variable used as a value.
    Index(IndexVar),
    /// An escaped target-IR expression (the paper's `$value` escape); the
    /// compiler introduces these as it progressively resolves accesses.
    Dyn(Expr),
    /// A tensor access.
    Access(Access),
    /// A pointwise function application.
    Call {
        /// The operator applied.
        op: CinOp,
        /// Its arguments.
        args: Vec<CinExpr>,
    },
}

impl CinExpr {
    /// Integer literal.
    pub fn int(x: i64) -> CinExpr {
        CinExpr::Literal(Value::Int(x))
    }

    /// Float literal.
    pub fn float(x: f64) -> CinExpr {
        CinExpr::Literal(Value::Float(x))
    }

    /// Build a call.
    pub fn call(op: CinOp, args: Vec<CinExpr>) -> CinExpr {
        CinExpr::Call { op, args }
    }

    /// If the expression is a literal (directly or behind a `Dyn` escape),
    /// return its value.
    pub fn as_literal(&self) -> Option<Value> {
        match self {
            CinExpr::Literal(v) => Some(*v),
            CinExpr::Dyn(e) => e.as_lit(),
            _ => None,
        }
    }

    /// Rewrite the expression bottom-up: `f` is applied to every node after
    /// its children; returning `Some` replaces the node.
    pub fn map(&self, f: &mut dyn FnMut(&CinExpr) -> Option<CinExpr>) -> CinExpr {
        let rebuilt = match self {
            CinExpr::Literal(_) | CinExpr::Index(_) | CinExpr::Dyn(_) | CinExpr::Access(_) => {
                self.clone()
            }
            CinExpr::Call { op, args } => {
                CinExpr::Call { op: *op, args: args.iter().map(|a| a.map(f)).collect() }
            }
        };
        f(&rebuilt).unwrap_or(rebuilt)
    }

    /// Visit every node (pre-order).
    pub fn visit(&self, f: &mut dyn FnMut(&CinExpr)) {
        f(self);
        if let CinExpr::Call { args, .. } = self {
            args.iter().for_each(|a| a.visit(f));
        }
    }

    /// Collect all accesses appearing in the expression.
    pub fn accesses(&self) -> Vec<Access> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let CinExpr::Access(a) = e {
                out.push(a.clone());
            }
        });
        out
    }

    /// Does the expression mention the given index variable (either as a
    /// value or inside an access)?
    pub fn mentions_index(&self, index: &IndexVar) -> bool {
        let mut found = false;
        self.visit(&mut |e| match e {
            CinExpr::Index(v) if v == index => found = true,
            CinExpr::Access(a) if a.index_vars().iter().any(|v| v == index) => {
                found = true;
            }
            _ => {}
        });
        found
    }
}

impl From<Value> for CinExpr {
    fn from(v: Value) -> Self {
        CinExpr::Literal(v)
    }
}

impl From<f64> for CinExpr {
    fn from(v: f64) -> Self {
        CinExpr::float(v)
    }
}

impl From<i64> for CinExpr {
    fn from(v: i64) -> Self {
        CinExpr::int(v)
    }
}

impl From<Access> for CinExpr {
    fn from(a: Access) -> Self {
        CinExpr::Access(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexVar;

    #[test]
    fn identities_and_annihilators() {
        assert!(CinOp::Add.identity().unwrap().is_zero());
        assert!(CinOp::Mul.identity().unwrap().is_one());
        assert!(CinOp::Mul.annihilator().unwrap().is_zero());
        assert_eq!(CinOp::And.annihilator(), Some(Value::Bool(false)));
        assert_eq!(CinOp::Sub.identity(), None);
    }

    #[test]
    fn variadic_operators() {
        assert!(CinOp::Add.is_variadic());
        assert!(CinOp::Coalesce.is_variadic());
        assert!(!CinOp::Sub.is_variadic());
        assert!(!CinOp::Eq.is_variadic());
    }

    #[test]
    fn accesses_are_collected() {
        let i = IndexVar::new("i");
        let a = Access::new("A", vec![i.clone().into()]);
        let b = Access::new("B", vec![i.clone().into()]);
        let e = CinExpr::call(
            CinOp::Mul,
            vec![a.clone().into(), b.clone().into(), CinExpr::float(2.0)],
        );
        let acc = e.accesses();
        assert_eq!(acc.len(), 2);
        assert!(e.mentions_index(&i));
        assert!(!e.mentions_index(&IndexVar::new("j")));
    }

    #[test]
    fn map_rewrites_bottom_up() {
        let e = CinExpr::call(CinOp::Add, vec![CinExpr::int(1), CinExpr::int(2)]);
        let folded = e.map(&mut |node| match node {
            CinExpr::Call { op: CinOp::Add, args } => {
                let sum: i64 = args.iter().filter_map(|a| a.as_literal()?.as_int().ok()).sum();
                Some(CinExpr::int(sum))
            }
            _ => None,
        });
        assert_eq!(folded.as_literal(), Some(Value::Int(3)));
    }

    #[test]
    fn as_literal_sees_through_dyn_escapes() {
        let e = CinExpr::Dyn(finch_ir::Expr::float(4.0));
        assert_eq!(e.as_literal(), Some(Value::Float(4.0)));
        let e = CinExpr::Index(IndexVar::new("i"));
        assert_eq!(e.as_literal(), None);
    }
}
