//! A small builder DSL for constructing CIN programs in Rust.
//!
//! The paper writes kernels like
//!
//! ```text
//! @∀ i j  y[i] += A[i, j] * x[j]
//! ```
//!
//! With this module the same kernel is written as
//!
//! ```
//! use finch_cin::build::*;
//! let (i, j) = (idx("i"), idx("j"));
//! let kernel = forall(
//!     i.clone(),
//!     forall(
//!         j.clone(),
//!         add_assign(
//!             access("y", [i.clone()]),
//!             mul(access("A", [i, j.clone()]), access("x", [j])),
//!         ),
//!     ),
//! );
//! assert!(format!("{kernel}").contains("y[i] += (A[i, j] * x[j])"));
//! ```

use finch_ir::Value;

use crate::expr::{CinExpr, CinOp};
use crate::index::{Access, IndexExpr, IndexVar, TensorRef};
use crate::stmt::{CinStmt, Reduction};

/// Create an index variable.
pub fn idx(name: &str) -> IndexVar {
    IndexVar::new(name)
}

/// Create an access `tensor[indices...]`.
pub fn access<I>(tensor: impl Into<TensorRef>, indices: I) -> Access
where
    I: IntoIterator,
    I::Item: Into<IndexExpr>,
{
    Access::new(tensor, indices.into_iter().map(Into::into).collect())
}

/// An access to a zero-dimensional (scalar) tensor, `tensor[]`.
pub fn scalar(tensor: impl Into<TensorRef>) -> Access {
    Access::new(tensor, Vec::new())
}

/// A float literal.
pub fn lit(x: f64) -> CinExpr {
    CinExpr::Literal(Value::Float(x))
}

/// An integer literal.
pub fn lit_int(x: i64) -> CinExpr {
    CinExpr::Literal(Value::Int(x))
}

/// n-ary addition.
pub fn add(a: impl Into<CinExpr>, b: impl Into<CinExpr>) -> CinExpr {
    CinExpr::call(CinOp::Add, vec![a.into(), b.into()])
}

/// Binary subtraction.
pub fn sub(a: impl Into<CinExpr>, b: impl Into<CinExpr>) -> CinExpr {
    CinExpr::call(CinOp::Sub, vec![a.into(), b.into()])
}

/// n-ary multiplication.
pub fn mul(a: impl Into<CinExpr>, b: impl Into<CinExpr>) -> CinExpr {
    CinExpr::call(CinOp::Mul, vec![a.into(), b.into()])
}

/// Multiplication of three factors.
pub fn mul3(a: impl Into<CinExpr>, b: impl Into<CinExpr>, c: impl Into<CinExpr>) -> CinExpr {
    CinExpr::call(CinOp::Mul, vec![a.into(), b.into(), c.into()])
}

/// `coalesce(args...)`: the first non-missing argument.
pub fn coalesce(args: Vec<CinExpr>) -> CinExpr {
    CinExpr::call(CinOp::Coalesce, args)
}

/// `sqrt(a)`.
pub fn sqrt(a: impl Into<CinExpr>) -> CinExpr {
    CinExpr::call(CinOp::Sqrt, vec![a.into()])
}

/// `round(UInt8, a)` — round and clamp to `0..=255`.
pub fn round_u8(a: impl Into<CinExpr>) -> CinExpr {
    CinExpr::call(CinOp::Round, vec![a.into()])
}

/// `a != 0` as a 0/1 mask (used by the paper's masked convolution kernel).
pub fn nonzero_mask(a: impl Into<CinExpr>) -> CinExpr {
    CinExpr::call(CinOp::Ne, vec![a.into(), lit(0.0)])
}

/// Equality comparison.
pub fn eq(a: impl Into<CinExpr>, b: impl Into<CinExpr>) -> CinExpr {
    CinExpr::call(CinOp::Eq, vec![a.into(), b.into()])
}

/// Strictly-greater comparison (e.g. the guard of a threshold filter).
pub fn gt(a: impl Into<CinExpr>, b: impl Into<CinExpr>) -> CinExpr {
    CinExpr::call(CinOp::Gt, vec![a.into(), b.into()])
}

/// Strictly-less comparison.
pub fn lt(a: impl Into<CinExpr>, b: impl Into<CinExpr>) -> CinExpr {
    CinExpr::call(CinOp::Lt, vec![a.into(), b.into()])
}

/// `A[...] = rhs`.
pub fn assign(lhs: Access, rhs: impl Into<CinExpr>) -> CinStmt {
    CinStmt::Assign { lhs, reduction: Reduction::Overwrite, rhs: rhs.into() }
}

/// `A[...] += rhs`.
pub fn add_assign(lhs: Access, rhs: impl Into<CinExpr>) -> CinStmt {
    CinStmt::Assign { lhs, reduction: Reduction::Reduce(CinOp::Add), rhs: rhs.into() }
}

/// `A[...] <<op>>= rhs`.
pub fn reduce_assign(lhs: Access, op: CinOp, rhs: impl Into<CinExpr>) -> CinStmt {
    CinStmt::Assign { lhs, reduction: Reduction::Reduce(op), rhs: rhs.into() }
}

/// `@∀ index body`.
pub fn forall(index: IndexVar, body: CinStmt) -> CinStmt {
    CinStmt::Forall { index, extent: None, body: Box::new(body) }
}

/// `@∀ index ∈ lo:hi body`.
pub fn forall_in(
    index: IndexVar,
    lo: impl Into<CinExpr>,
    hi: impl Into<CinExpr>,
    body: CinStmt,
) -> CinStmt {
    CinStmt::Forall { index, extent: Some((lo.into(), hi.into())), body: Box::new(body) }
}

/// `consumer where producer`.
pub fn where_(consumer: CinStmt, producer: CinStmt) -> CinStmt {
    CinStmt::Where { consumer: Box::new(consumer), producer: Box::new(producer) }
}

/// `@sieve cond body`.
pub fn sieve(cond: impl Into<CinExpr>, body: CinStmt) -> CinStmt {
    CinStmt::Sieve { cond: cond.into(), body: Box::new(body) }
}

/// `@multi stmts...`.
pub fn multi(stmts: Vec<CinStmt>) -> CinStmt {
    CinStmt::Multi(stmts)
}

/// `@pass outputs...`.
pub fn pass(outputs: Vec<TensorRef>) -> CinStmt {
    CinStmt::Pass(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::Protocol;

    #[test]
    fn spmspv_kernel_builds() {
        let (i, j) = (idx("i"), idx("j"));
        let kernel = forall(
            i.clone(),
            forall(
                j.clone(),
                add_assign(
                    access("y", [i.clone()]),
                    mul(access("A", [i.into(), j.gallop()]), access("x", [j.gallop()])),
                ),
            ),
        );
        let reads = kernel.read_accesses();
        assert_eq!(reads.len(), 2);
        assert_eq!(reads[0].indices[1].protocol(), Protocol::Gallop);
    }

    #[test]
    fn convolution_kernel_with_modifiers_builds() {
        let (i, j) = (idx("i"), idx("j"));
        // B[i] += coalesce(A[permit[offset(2 - i)[j]]], 0) * F[permit[j]]
        let a_idx = j.clone().walk().offset(sub(lit_int(2), CinExpr::Index(i.clone()))).permit();
        let stmt = forall(
            i.clone(),
            forall(
                j.clone(),
                add_assign(
                    access("B", [i]),
                    mul(
                        coalesce(vec![access("A", [a_idx]).into(), lit(0.0)]),
                        coalesce(vec![access("F", [j.walk().permit()]).into(), lit(0.0)]),
                    ),
                ),
            ),
        );
        assert_eq!(stmt.read_accesses().len(), 2);
    }

    #[test]
    fn explicit_extents_are_recorded() {
        let i = idx("i");
        let s = forall_in(i.clone(), lit_int(0), lit_int(9), add_assign(scalar("C"), lit(1.0)));
        match s {
            CinStmt::Forall { extent: Some((lo, hi)), .. } => {
                assert_eq!(lo.as_literal().unwrap().as_int().unwrap(), 0);
                assert_eq!(hi.as_literal().unwrap().as_int().unwrap(), 9);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
