//! Index variables, tensor references, protocols and index modifiers.

use std::fmt;

use crate::expr::CinExpr;

/// A surface-level index variable (`i`, `j`, ...).
///
/// Index variables are identified by name; the compiler maps them to
/// target-IR loop variables during lowering.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexVar(String);

impl IndexVar {
    /// Create an index variable with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        IndexVar(name.into())
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Access through this index with the galloping (leader) protocol.
    pub fn gallop(&self) -> IndexExpr {
        IndexExpr::Var { index: self.clone(), protocol: Protocol::Gallop }
    }

    /// Access through this index with the walking (follower) protocol.
    pub fn walk(&self) -> IndexExpr {
        IndexExpr::Var { index: self.clone(), protocol: Protocol::Walk }
    }

    /// Access through this index with the locate (random access) protocol.
    pub fn locate(&self) -> IndexExpr {
        IndexExpr::Var { index: self.clone(), protocol: Protocol::Locate }
    }
}

impl fmt::Display for IndexVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A reference to a tensor by name.  The compiler resolves names to bound
/// formats at compile time.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorRef(String);

impl TensorRef {
    /// Create a tensor reference with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TensorRef(name.into())
    }

    /// The tensor's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TensorRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TensorRef {
    fn from(s: &str) -> Self {
        TensorRef::new(s)
    }
}

impl From<String> for TensorRef {
    fn from(s: String) -> Self {
        TensorRef::new(s)
    }
}

/// The access protocol requested for one mode of an access (paper §7).
///
/// The same level format can be traversed in several ways; the protocol
/// annotation selects which looplet nest the format unfurls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protocol {
    /// Let the format choose its natural protocol (dense levels locate,
    /// sparse levels walk).
    #[default]
    Default,
    /// Iterate over stored entries in ascending order, following other
    /// iterators (lowered through a [`Stepper`](finch_looplets) nest).
    Walk,
    /// Iterate over stored entries but lead the coiteration, skipping ahead
    /// with binary search (lowered through a `Jumper` nest; merging two
    /// galloping lists yields the mutual-lookahead intersection).
    Gallop,
    /// Random access by index (lowered through a `Lookup` nest).
    Locate,
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Protocol::Default => "default",
            Protocol::Walk => "walk",
            Protocol::Gallop => "gallop",
            Protocol::Locate => "locate",
        };
        f.write_str(s)
    }
}

/// An index expression: an index variable possibly wrapped by modifiers
/// (paper §8).
#[derive(Debug, Clone, PartialEq)]
pub enum IndexExpr {
    /// A plain index variable with a protocol annotation.
    Var {
        /// The index variable.
        index: IndexVar,
        /// The requested protocol.
        protocol: Protocol,
    },
    /// `offset(delta)[i]`: access the parent at `i - delta`, i.e. shift the
    /// parent's coordinate system forward by `delta`.
    Offset {
        /// The shift amount.
        delta: CinExpr,
        /// The wrapped index expression.
        base: Box<IndexExpr>,
    },
    /// `window(lo, hi)[i]`: access the slice `lo..=hi` of the parent; the
    /// mode's dimension becomes `0..=hi-lo`.
    Window {
        /// Inclusive start of the slice (in parent coordinates).
        lo: CinExpr,
        /// Inclusive end of the slice.
        hi: CinExpr,
        /// The wrapped index expression.
        base: Box<IndexExpr>,
    },
    /// `permit[i]`: allow out-of-bounds access; out-of-bounds elements read
    /// as `missing` (eliminated by `coalesce`).
    Permit {
        /// The wrapped index expression.
        base: Box<IndexExpr>,
    },
}

impl IndexExpr {
    /// The index variable at the core of this expression.
    pub fn index_var(&self) -> &IndexVar {
        match self {
            IndexExpr::Var { index, .. } => index,
            IndexExpr::Offset { base, .. }
            | IndexExpr::Window { base, .. }
            | IndexExpr::Permit { base } => base.index_var(),
        }
    }

    /// The protocol annotation at the core of this expression.
    pub fn protocol(&self) -> Protocol {
        match self {
            IndexExpr::Var { protocol, .. } => *protocol,
            IndexExpr::Offset { base, .. }
            | IndexExpr::Window { base, .. }
            | IndexExpr::Permit { base } => base.protocol(),
        }
    }

    /// Wrap with `offset(delta)`.
    pub fn offset(self, delta: CinExpr) -> IndexExpr {
        IndexExpr::Offset { delta, base: Box::new(self) }
    }

    /// Wrap with `window(lo, hi)`.
    pub fn window(self, lo: CinExpr, hi: CinExpr) -> IndexExpr {
        IndexExpr::Window { lo, hi, base: Box::new(self) }
    }

    /// Wrap with `permit`.
    pub fn permit(self) -> IndexExpr {
        IndexExpr::Permit { base: Box::new(self) }
    }
}

impl From<IndexVar> for IndexExpr {
    fn from(index: IndexVar) -> Self {
        IndexExpr::Var { index, protocol: Protocol::Default }
    }
}

impl From<&IndexVar> for IndexExpr {
    fn from(index: &IndexVar) -> Self {
        IndexExpr::Var { index: index.clone(), protocol: Protocol::Default }
    }
}

/// An access into a tensor: `A[i, offset(2)[j], permit[k]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// The accessed tensor.
    pub tensor: TensorRef,
    /// One index expression per mode, outermost first.
    pub indices: Vec<IndexExpr>,
}

impl Access {
    /// Create an access.
    pub fn new(tensor: impl Into<TensorRef>, indices: Vec<IndexExpr>) -> Self {
        Access { tensor: tensor.into(), indices }
    }

    /// Number of modes accessed.
    pub fn rank(&self) -> usize {
        self.indices.len()
    }

    /// The index variables of this access, outermost first.
    pub fn index_vars(&self) -> Vec<IndexVar> {
        self.indices.iter().map(|e| e.index_var().clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_selectors_on_index_vars() {
        let i = IndexVar::new("i");
        assert_eq!(i.gallop().protocol(), Protocol::Gallop);
        assert_eq!(i.walk().protocol(), Protocol::Walk);
        assert_eq!(i.locate().protocol(), Protocol::Locate);
        assert_eq!(IndexExpr::from(i.clone()).protocol(), Protocol::Default);
        assert_eq!(i.gallop().index_var(), &i);
    }

    #[test]
    fn modifiers_preserve_the_inner_variable_and_protocol() {
        let j = IndexVar::new("j");
        let e = j.gallop().offset(CinExpr::int(2)).permit();
        assert_eq!(e.index_var().name(), "j");
        assert_eq!(e.protocol(), Protocol::Gallop);
        let w = IndexExpr::from(&j).window(CinExpr::int(3), CinExpr::int(5));
        assert_eq!(w.index_var(), &j);
    }

    #[test]
    fn access_reports_rank_and_vars() {
        let i = IndexVar::new("i");
        let j = IndexVar::new("j");
        let a = Access::new("A", vec![i.clone().into(), j.clone().into()]);
        assert_eq!(a.rank(), 2);
        assert_eq!(a.index_vars(), vec![i, j]);
        assert_eq!(a.tensor.name(), "A");
    }

    #[test]
    fn tensor_ref_conversions() {
        let t: TensorRef = "B".into();
        assert_eq!(t.name(), "B");
        let t: TensorRef = String::from("C").into();
        assert_eq!(format!("{t}"), "C");
    }
}
