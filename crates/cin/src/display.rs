//! Textual rendering of CIN programs, approximating the paper's notation
//! (`@∀` is written `@forall`, `<<op>>=` as `op=`).

use std::fmt;

use crate::expr::{CinExpr, CinOp};
use crate::index::{Access, IndexExpr, Protocol};
use crate::stmt::{CinStmt, Reduction};

impl fmt::Display for IndexExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexExpr::Var { index, protocol } => match protocol {
                Protocol::Default => write!(f, "{index}"),
                other => write!(f, "{index}::{other}"),
            },
            IndexExpr::Offset { delta, base } => write!(f, "offset({delta})[{base}]"),
            IndexExpr::Window { lo, hi, base } => write!(f, "window({lo}, {hi})[{base}]"),
            IndexExpr::Permit { base } => write!(f, "permit[{base}]"),
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.tensor)?;
        for (k, ix) in self.indices.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{ix}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for CinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CinExpr::Literal(v) => write!(f, "{v}"),
            CinExpr::Index(i) => write!(f, "{i}"),
            CinExpr::Dyn(e) => write!(f, "$({e:?})"),
            CinExpr::Access(a) => write!(f, "{a}"),
            CinExpr::Call { op, args } => match op {
                CinOp::Add
                | CinOp::Sub
                | CinOp::Mul
                | CinOp::Div
                | CinOp::And
                | CinOp::Or
                | CinOp::Eq
                | CinOp::Ne
                | CinOp::Lt
                | CinOp::Le
                | CinOp::Gt
                | CinOp::Ge => {
                    write!(f, "(")?;
                    for (k, a) in args.iter().enumerate() {
                        if k > 0 {
                            write!(f, " {} ", op.name())?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
                _ => {
                    write!(f, "{}(", op.name())?;
                    for (k, a) in args.iter().enumerate() {
                        if k > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            },
        }
    }
}

impl fmt::Display for CinStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CinStmt::Assign { lhs, reduction, rhs } => match reduction {
                Reduction::Overwrite => write!(f, "{lhs} = {rhs}"),
                Reduction::Reduce(op) => write!(f, "{lhs} {}= {rhs}", op.name()),
            },
            CinStmt::Forall { index, extent, body } => match extent {
                Some((lo, hi)) => write!(f, "@forall {index} in {lo}:{hi} {body}"),
                None => write!(f, "@forall {index} {body}"),
            },
            CinStmt::Where { consumer, producer } => write!(f, "({consumer}) where ({producer})"),
            CinStmt::Multi(stmts) => {
                write!(f, "@multi ")?;
                for (k, s) in stmts.iter().enumerate() {
                    if k > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
            CinStmt::Sieve { cond, body } => write!(f, "@sieve {cond} {body}"),
            CinStmt::Pass(ts) => {
                write!(f, "@pass")?;
                for t in ts {
                    write!(f, " {t}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::build::*;
    use crate::expr::CinExpr;

    #[test]
    fn renders_the_paper_style_notation() {
        let (i, j) = (idx("i"), idx("j"));
        let s = forall(
            i.clone(),
            forall(
                j.clone(),
                add_assign(
                    access("y", [i.clone()]),
                    mul(access("A", [i.into(), j.gallop()]), access("x", [j.gallop()])),
                ),
            ),
        );
        let text = format!("{s}");
        assert_eq!(text, "@forall i @forall j y[i] += (A[i, j::gallop] * x[j::gallop])");
    }

    #[test]
    fn renders_index_modifiers() {
        let j = idx("j");
        let e = access("A", [j.walk().offset(lit_int(2)).permit()]);
        assert_eq!(format!("{e}"), "A[permit[offset(2)[j::walk]]]");
    }

    #[test]
    fn renders_where_sieve_multi_and_pass() {
        let s = where_(assign(scalar("O"), lit(1.0)), add_assign(scalar("o"), lit(2.0)));
        assert_eq!(format!("{s}"), "(O[] = 1.0) where (o[] += 2.0)");
        let s = sieve(eq(lit(1.0), lit(1.0)), pass(vec!["C".into()]));
        assert_eq!(format!("{s}"), "@sieve (1.0 == 1.0) @pass C");
        let s = multi(vec![pass(vec!["A".into()]), pass(vec!["B".into()])]);
        assert_eq!(format!("{s}"), "@multi @pass A; @pass B");
    }

    #[test]
    fn renders_function_style_calls() {
        let e = coalesce(vec![CinExpr::float(1.0), CinExpr::float(2.0)]);
        assert_eq!(format!("{e}"), "coalesce(1.0, 2.0)");
        let e = sqrt(lit(4.0));
        assert_eq!(format!("{e}"), "sqrt(4.0)");
    }
}
