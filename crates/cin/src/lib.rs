//! # finch-cin — extended concrete index notation
//!
//! Concrete index notation (CIN) is the surface language the Finch compiler
//! lowers (paper §5).  A CIN program is a tree of statements — assignments
//! with optional reduction operators, `forall` loops over index variables,
//! `where` (producer/consumer) statements, `multi` statements, `sieve`
//! statements and `pass` no-ops — whose expressions are pointwise functions
//! over *accesses* into named tensors.
//!
//! This reproduction implements the paper's *extended* CIN: accesses may
//! carry **protocol annotations** (walk / gallop / locate, §7) and **index
//! modifiers** (`window`, `offset`, `permit`, §8), which is what lets the
//! same source expression describe concatenation, slicing, padding and
//! convolution over structured inputs.
//!
//! The crate is deliberately independent of any particular tensor storage:
//! tensors are referred to by name ([`TensorRef`]) and bound to concrete
//! formats by the compiler in `finch-core`.
//!
//! ```
//! use finch_cin::build::*;
//!
//! // C[] += A[i] * B[i]       (a dot product)
//! let i = idx("i");
//! let stmt = forall(
//!     i.clone(),
//!     add_assign(scalar("C"), mul(access("A", [i.clone()]), access("B", [i]))),
//! );
//! assert_eq!(format!("{stmt}"), "@forall i C[] += (A[i] * B[i])");
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod build;
mod display;
mod expr;
mod index;
mod stmt;

pub use expr::{CinExpr, CinOp};
pub use index::{Access, IndexExpr, IndexVar, Protocol, TensorRef};
pub use stmt::{CinStmt, Reduction};
