//! Statements of concrete index notation.

use crate::expr::{CinExpr, CinOp};
use crate::index::{Access, IndexVar, TensorRef};

/// How an assignment combines the computed value with the existing output
/// element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reduction {
    /// `A[i] = e` — overwrite.
    Overwrite,
    /// `A[i] <<op>>= e` — combine with the given operator (`+=`, `*=`,
    /// `min=`, ...).
    Reduce(CinOp),
}

impl Reduction {
    /// The reduction's operator, when it has one.
    pub fn op(self) -> Option<CinOp> {
        match self {
            Reduction::Overwrite => None,
            Reduction::Reduce(op) => Some(op),
        }
    }
}

/// A statement of (extended) concrete index notation.
#[derive(Debug, Clone, PartialEq)]
pub enum CinStmt {
    /// Update a single output element.
    Assign {
        /// The output access.
        lhs: Access,
        /// How the value is combined with the existing element.
        reduction: Reduction,
        /// The pointwise expression computed.
        rhs: CinExpr,
    },
    /// Repeat the body for each value of an index variable.
    Forall {
        /// The quantified index.
        index: IndexVar,
        /// An explicit extent (inclusive bounds); when absent the extent is
        /// inferred from the dimensions of accessed tensors.
        extent: Option<(CinExpr, CinExpr)>,
        /// The repeated statement.
        body: Box<CinStmt>,
    },
    /// `consumer where producer`: compute the producer's results, then run
    /// the consumer which may read them.
    Where {
        /// The statement that uses the produced results.
        consumer: Box<CinStmt>,
        /// The statement that produces intermediate results.
        producer: Box<CinStmt>,
    },
    /// Compute several statements at once.
    Multi(
        /// The constituent statements.
        Vec<CinStmt>,
    ),
    /// Only execute the body on iterations where the condition holds.
    Sieve {
        /// The guard condition.
        cond: CinExpr,
        /// The guarded statement.
        body: Box<CinStmt>,
    },
    /// A no-op that only remembers which outputs it is not writing to.
    Pass(
        /// The outputs left unmodified.
        Vec<TensorRef>,
    ),
}

impl CinStmt {
    /// The result tensors of the statement (paper §5.1): the outputs an
    /// enclosing `where` would have to initialise.
    pub fn results(&self) -> Vec<TensorRef> {
        match self {
            CinStmt::Assign { lhs, .. } => vec![lhs.tensor.clone()],
            CinStmt::Forall { body, .. } | CinStmt::Sieve { body, .. } => body.results(),
            CinStmt::Where { consumer, .. } => consumer.results(),
            CinStmt::Multi(stmts) => {
                let mut out = Vec::new();
                for s in stmts {
                    for r in s.results() {
                        if !out.contains(&r) {
                            out.push(r);
                        }
                    }
                }
                out
            }
            CinStmt::Pass(ts) => ts.clone(),
        }
    }

    /// Visit every statement node (pre-order).
    pub fn visit(&self, f: &mut dyn FnMut(&CinStmt)) {
        f(self);
        match self {
            CinStmt::Forall { body, .. } | CinStmt::Sieve { body, .. } => body.visit(f),
            CinStmt::Where { consumer, producer } => {
                producer.visit(f);
                consumer.visit(f);
            }
            CinStmt::Multi(stmts) => stmts.iter().for_each(|s| s.visit(f)),
            CinStmt::Assign { .. } | CinStmt::Pass(_) => {}
        }
    }

    /// Rewrite every expression in the statement tree with `f` (applied via
    /// [`CinExpr::map`], i.e. bottom-up within each expression).
    pub fn map_exprs(&self, f: &mut dyn FnMut(&CinExpr) -> Option<CinExpr>) -> CinStmt {
        match self {
            CinStmt::Assign { lhs, reduction, rhs } => {
                CinStmt::Assign { lhs: lhs.clone(), reduction: *reduction, rhs: rhs.map(f) }
            }
            CinStmt::Forall { index, extent, body } => CinStmt::Forall {
                index: index.clone(),
                extent: extent.as_ref().map(|(lo, hi)| (lo.map(f), hi.map(f))),
                body: Box::new(body.map_exprs(f)),
            },
            CinStmt::Where { consumer, producer } => CinStmt::Where {
                consumer: Box::new(consumer.map_exprs(f)),
                producer: Box::new(producer.map_exprs(f)),
            },
            CinStmt::Multi(stmts) => CinStmt::Multi(stmts.iter().map(|s| s.map_exprs(f)).collect()),
            CinStmt::Sieve { cond, body } => {
                CinStmt::Sieve { cond: cond.map(f), body: Box::new(body.map_exprs(f)) }
            }
            CinStmt::Pass(ts) => CinStmt::Pass(ts.clone()),
        }
    }

    /// Rewrite statement nodes bottom-up: children are rewritten first, then
    /// `f` may replace the rebuilt node.
    pub fn map_stmts(&self, f: &mut dyn FnMut(&CinStmt) -> Option<CinStmt>) -> CinStmt {
        let rebuilt = match self {
            CinStmt::Assign { .. } | CinStmt::Pass(_) => self.clone(),
            CinStmt::Forall { index, extent, body } => CinStmt::Forall {
                index: index.clone(),
                extent: extent.clone(),
                body: Box::new(body.map_stmts(f)),
            },
            CinStmt::Where { consumer, producer } => CinStmt::Where {
                consumer: Box::new(consumer.map_stmts(f)),
                producer: Box::new(producer.map_stmts(f)),
            },
            CinStmt::Multi(stmts) => CinStmt::Multi(stmts.iter().map(|s| s.map_stmts(f)).collect()),
            CinStmt::Sieve { cond, body } => {
                CinStmt::Sieve { cond: cond.clone(), body: Box::new(body.map_stmts(f)) }
            }
        };
        f(&rebuilt).unwrap_or(rebuilt)
    }

    /// All read accesses appearing in right-hand sides and conditions.
    pub fn read_accesses(&self) -> Vec<Access> {
        let mut out = Vec::new();
        self.visit(&mut |s| match s {
            CinStmt::Assign { rhs, .. } => out.extend(rhs.accesses()),
            CinStmt::Sieve { cond, .. } => out.extend(cond.accesses()),
            _ => {}
        });
        out
    }

    /// All output (left-hand-side) accesses.
    pub fn write_accesses(&self) -> Vec<Access> {
        let mut out = Vec::new();
        self.visit(&mut |s| {
            if let CinStmt::Assign { lhs, .. } = s {
                out.push(lhs.clone());
            }
        });
        out
    }

    /// Is the statement a `pass` (possibly an empty `multi` of passes)?
    /// Used by the rewrite engine to drop loops whose bodies do nothing.
    pub fn is_pass(&self) -> bool {
        match self {
            CinStmt::Pass(_) => true,
            CinStmt::Multi(stmts) => stmts.iter().all(|s| s.is_pass()),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn results_of_nested_statements() {
        let i = idx("i");
        let s = forall(i.clone(), add_assign(access("y", [i.clone()]), access("A", [i])));
        assert_eq!(s.results(), vec![TensorRef::new("y")]);

        let w = where_(s.clone(), assign(scalar("t"), lit(1.0)));
        assert_eq!(w.results(), vec![TensorRef::new("y")]);

        let m = CinStmt::Multi(vec![s, assign(scalar("z"), lit(0.0))]);
        assert_eq!(m.results(), vec![TensorRef::new("y"), TensorRef::new("z")]);
    }

    #[test]
    fn read_and_write_accesses_are_separated() {
        let i = idx("i");
        let s = forall(
            i.clone(),
            add_assign(access("y", [i.clone()]), mul(access("A", [i.clone()]), access("x", [i]))),
        );
        let reads: Vec<_> = s.read_accesses().iter().map(|a| a.tensor.name().to_string()).collect();
        let writes: Vec<_> =
            s.write_accesses().iter().map(|a| a.tensor.name().to_string()).collect();
        assert_eq!(reads, vec!["A", "x"]);
        assert_eq!(writes, vec!["y"]);
    }

    #[test]
    fn is_pass_sees_through_multi() {
        let p = CinStmt::Pass(vec![TensorRef::new("C")]);
        assert!(p.is_pass());
        assert!(CinStmt::Multi(vec![p.clone(), p.clone()]).is_pass());
        let a = assign(scalar("C"), lit(1.0));
        assert!(!a.is_pass());
        assert!(!CinStmt::Multi(vec![p, a]).is_pass());
    }

    #[test]
    fn map_stmts_can_replace_nested_nodes() {
        let i = idx("i");
        let s = forall(i.clone(), add_assign(scalar("C"), lit(0.0)));
        // Replace any assignment adding literal zero with a pass.
        let out = s.map_stmts(&mut |node| match node {
            CinStmt::Assign { lhs, rhs, .. }
                if rhs.as_literal().map(|v| v.is_zero()) == Some(true) =>
            {
                Some(CinStmt::Pass(vec![lhs.tensor.clone()]))
            }
            _ => None,
        });
        match out {
            CinStmt::Forall { body, .. } => assert!(body.is_pass()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reduction_op_accessor() {
        assert_eq!(Reduction::Overwrite.op(), None);
        assert_eq!(Reduction::Reduce(CinOp::Add).op(), Some(CinOp::Add));
    }
}
