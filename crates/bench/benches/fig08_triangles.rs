//! Figure 8: triangle counting with two-finger versus galloping
//! intersections on power-law graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use finch_bench::fig08_variants;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_triangles");
    group.sample_size(10);
    for (n, epn, seed) in [(64usize, 3usize, 11u64), (96, 4, 12)] {
        for mut v in fig08_variants(n, epn, seed) {
            group.bench_with_input(BenchmarkId::new(v.label.clone(), n), &n, |b, _| {
                b.iter(|| v.kernel.run().expect("kernel runs"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
