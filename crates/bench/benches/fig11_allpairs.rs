//! Figure 11: all-pairs image similarity over dense, sparse list, VBL and
//! RLE image batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use finch_bench::fig11_variants;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_allpairs");
    group.sample_size(10);
    for dataset in ["mnist", "omniglot"] {
        for mut v in fig11_variants(12, 16, dataset) {
            group.bench_with_input(BenchmarkId::new(v.label.clone(), dataset), &dataset, |b, _| {
                b.iter(|| v.kernel.run().expect("kernel runs"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
