//! Figure 7: SpMSpV coiteration strategies (follower, leader/gallop, VBL)
//! against the two-finger TACO-style baseline, for a vector with 10% density
//! (7a) and with a fixed count of 10 nonzeros (7b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use finch_bench::{fig07_variants, fig07_vector};

fn bench(c: &mut Criterion) {
    let n = 128;
    for (figure, fraction, count) in [("fig07a", Some(0.10), None), ("fig07b", None, Some(10))] {
        let mut group = c.benchmark_group(figure);
        group.sample_size(10);
        let xv = fig07_vector(n, fraction, count, 71);
        for mut v in fig07_variants(n, &xv, 1) {
            group.bench_with_input(BenchmarkId::new(v.label.clone(), n), &n, |b, _| {
                b.iter(|| v.kernel.run().expect("kernel runs"))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
