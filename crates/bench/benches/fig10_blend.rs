//! Figure 10: alpha blending over dense, sparse and run-length encoded
//! images (Omniglot-like strokes and Humansketches-like drawings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use finch_bench::fig10_variants;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_blend");
    group.sample_size(10);
    for (dataset, sketches) in [("omniglot-like", false), ("sketches-like", true)] {
        for mut v in fig10_variants(64, sketches, 5) {
            group.bench_with_input(BenchmarkId::new(v.label.clone(), dataset), &dataset, |b, _| {
                b.iter(|| v.kernel.run().expect("kernel runs"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
