//! Figure 9: dense versus masked sparse convolution as the input density
//! increases (the crossover experiment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use finch_bench::fig09_variants;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig09_conv");
    group.sample_size(10);
    for (density, variants) in fig09_variants(48, 5, &[0.01, 0.05, 0.40]) {
        for mut v in variants {
            group.bench_with_input(
                BenchmarkId::new(v.label.clone(), format!("{density}")),
                &density,
                |b, _| b.iter(|| v.kernel.run().expect("kernel runs")),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
