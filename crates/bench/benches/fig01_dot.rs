//! Figure 1: the motivating dot product — a scattered sparse list against a
//! single dense band, comparing the looplet coiteration (list x band) with
//! the iterator-over-nonzeros two-finger merge (list x list).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use finch_bench::fig01_variants;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig01_dot");
    group.sample_size(20);
    for (width, variants) in fig01_variants(20_000, 400, &[50, 3_000]) {
        for mut v in variants {
            group.bench_with_input(BenchmarkId::new(v.label.clone(), width), &width, |b, _| {
                b.iter(|| v.kernel.run().expect("kernel runs"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
