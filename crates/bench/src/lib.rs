//! # finch-bench — the experiment harness for the Looplets evaluation
//!
//! Each module of this crate prepares the workloads and compiled kernels of
//! one figure of the paper's evaluation (§9).  The `figures` binary times
//! them — on both execution engines, tree-walk and bytecode, side by side —
//! prints one table per figure (wall-clock plus machine-independent work
//! counters), and emits the machine-readable `BENCH_figures.json` (see
//! [`report`]); the Criterion benches in `benches/` time the same kernels
//! under Criterion's statistics.
//!
//! Problem sizes are scaled down from the paper (the substrate is an
//! instrumented VM, not native code); the *relative* shapes are what
//! EXPERIMENTS.md compares against the paper.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fuzz;
pub mod report;
pub mod trace;

use std::time::Instant;

use finch::{CompiledKernel, Engine, Kernel, LevelSpec, Tensor};
use finch_baseline::datagen;
use finch_cin::build::*;
use finch_cin::{CinExpr, IndexVar, Protocol};

/// One prepared experiment variant: a label and a compiled kernel ready to
/// be run repeatedly.
pub struct Variant {
    /// Human-readable strategy/format label.
    pub label: String,
    /// The compiled kernel.
    pub kernel: CompiledKernel,
}

impl Variant {
    fn new(label: &str, kernel: CompiledKernel) -> Self {
        Variant { label: label.to_string(), kernel }
    }
}

/// Median wall-clock seconds of `runs` executions of a compiled kernel on
/// its currently selected engine, together with the work counters of one
/// execution.
pub fn time_kernel(kernel: &mut CompiledKernel, runs: usize) -> (f64, finch::ExecStats) {
    time_kernel_with(kernel, runs, kernel.engine())
}

/// Median wall-clock seconds of `runs` executions of a compiled kernel on
/// an explicitly chosen engine, together with the work counters of one
/// execution.  Used by the `figures` binary to report tree-walk and
/// bytecode timings side by side.
pub fn time_kernel_with(
    kernel: &mut CompiledKernel,
    runs: usize,
    engine: Engine,
) -> (f64, finch::ExecStats) {
    // One untimed warmup: the first run after a (re)compile allocates the
    // persistent VM and faults the buffers in; timed runs see steady state.
    let stats = kernel.run_with(engine).expect("benchmark kernel runs");
    // Microsecond kernels are unmeasurable one run at a time (clock
    // granularity and scheduler noise swamp the signal), so size each
    // timed sample to span at least ~200µs and report per-run seconds.
    let start = Instant::now();
    kernel.run_with(engine).expect("benchmark kernel runs");
    let estimate = start.elapsed().as_secs_f64();
    let batch = ((2e-4 / estimate.max(1e-9)) as usize).clamp(1, 1024);
    let mut times = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        for _ in 0..batch {
            kernel.run_with(engine).expect("benchmark kernel runs");
        }
        times.push(start.elapsed().as_secs_f64() / batch as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    (times[times.len() / 2], stats)
}

fn protocol_index(p: Protocol, v: &IndexVar) -> finch_cin::IndexExpr {
    match p {
        Protocol::Gallop => v.gallop(),
        Protocol::Walk => v.walk(),
        Protocol::Locate => v.locate(),
        Protocol::Default => v.clone().into(),
    }
}

// ---------------------------------------------------------------------------
// Figure 1: the motivating dot product (sparse list × sparse band)
// ---------------------------------------------------------------------------

/// Figure 1: dot products of a scattered sparse list against a single dense
/// band, for a sweep of band widths.  Returns `(band_width, variants)`.
pub fn fig01_variants(n: usize, nnz: usize, band_widths: &[usize]) -> Vec<(usize, Vec<Variant>)> {
    band_widths
        .iter()
        .map(|&w| {
            let a_data = datagen::counted_sparse_vector(n, nnz, 101);
            let mut b_data = vec![0.0; n];
            let start = n / 3;
            for k in 0..w.min(n - start) {
                b_data[start + k] = 1.0 + (k % 7) as f64;
            }
            let a = Tensor::sparse_list_vector("A", &a_data);
            let b_band = Tensor::band_vector("B", &b_data);
            let b_list = Tensor::sparse_list_vector("B", &b_data);
            let variants = vec![
                Variant::new(
                    "looplets: list x band",
                    dot_kernel(&a, &b_band, Protocol::Walk, Protocol::Default),
                ),
                Variant::new(
                    "iterator-over-nonzeros",
                    dot_kernel(&a, &b_list, Protocol::Walk, Protocol::Walk),
                ),
            ];
            (w, variants)
        })
        .collect()
}

/// `C[] += A[i] * B[i]` under the given protocols.
pub fn dot_kernel(a: &Tensor, b: &Tensor, pa: Protocol, pb: Protocol) -> CompiledKernel {
    let mut kernel = Kernel::new();
    kernel.bind_input(a).bind_input(b).bind_output_scalar("C");
    let i = idx("i");
    let program = forall(
        i.clone(),
        add_assign(
            scalar("C"),
            mul(
                access(a.name(), [protocol_index(pa, &i)]),
                access(b.name(), [protocol_index(pb, &i)]),
            ),
        ),
    );
    kernel.compile(&program).expect("dot kernel compiles")
}

// ---------------------------------------------------------------------------
// Figure 7: SpMSpV
// ---------------------------------------------------------------------------

/// The SpMSpV kernel `y[i] += A[i,j] * x[j]`.
pub fn spmspv_kernel(a: &Tensor, x: &Tensor, pa: Protocol, px: Protocol) -> CompiledKernel {
    let nrows = a.shape()[0];
    let mut kernel = Kernel::new();
    kernel.bind_input(a).bind_input(x).bind_output("y", &[nrows], 0.0);
    let (i, j) = (idx("i"), idx("j"));
    let program = forall(
        i.clone(),
        forall(
            j.clone(),
            add_assign(
                access("y", [i.clone()]),
                mul(
                    access(a.name(), [i.into(), protocol_index(pa, &j)]),
                    access(x.name(), [protocol_index(px, &j)]),
                ),
            ),
        ),
    );
    kernel.compile(&program).expect("spmspv kernel compiles")
}

/// The SpMSpV strategies of Figure 7 for one matrix/vector pair.  The first
/// variant ("two-finger") is the TACO stand-in that speedups are measured
/// against.
pub fn fig07_variants(n: usize, xv: &[f64], seed: u64) -> Vec<Variant> {
    let dense_a = datagen::scientific_matrix(n, 2, 4, 0.004, seed);
    let x = Tensor::sparse_list_vector("x", xv);
    let csr = || Tensor::csr_matrix("A", n, n, &dense_a);
    let vbl = Tensor::vbl_matrix("A", n, n, &dense_a);
    vec![
        Variant::new(
            "two-finger (TACO-style)",
            spmspv_kernel(&csr(), &x, Protocol::Walk, Protocol::Walk),
        ),
        Variant::new(
            "A leads (gallop)",
            spmspv_kernel(&csr(), &x, Protocol::Gallop, Protocol::Walk),
        ),
        Variant::new(
            "x leads (gallop)",
            spmspv_kernel(&csr(), &x, Protocol::Walk, Protocol::Gallop),
        ),
        Variant::new("gallop both", spmspv_kernel(&csr(), &x, Protocol::Gallop, Protocol::Gallop)),
        Variant::new("VBL", spmspv_kernel(&vbl, &x, Protocol::Walk, Protocol::Walk)),
    ]
}

/// Figure 7a: `x` has a fraction of nonzeros; Figure 7b: `x` has a fixed
/// count of nonzeros.
pub fn fig07_vector(
    n: usize,
    dense_fraction: Option<f64>,
    count: Option<usize>,
    seed: u64,
) -> Vec<f64> {
    match (dense_fraction, count) {
        (Some(f), _) => datagen::random_sparse_vector(n, f, seed),
        (_, Some(c)) => datagen::counted_sparse_vector(n, c, seed),
        _ => datagen::random_sparse_vector(n, 0.1, seed),
    }
}

// ---------------------------------------------------------------------------
// Figure 8: triangle counting
// ---------------------------------------------------------------------------

/// The triangle counting kernel over a pre-transposed last argument.
pub fn triangle_kernel(adj: &[f64], n: usize, gallop: bool) -> CompiledKernel {
    let a = Tensor::csr_matrix("A", n, n, adj);
    let a2 = Tensor::csr_matrix("A2", n, n, adj);
    // The adjacency matrix is symmetric, so its transpose is itself; bind it
    // under a separate name the way the paper pre-transposes the argument.
    let at = Tensor::csr_matrix("At", n, n, adj);
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_input(&a2).bind_input(&at).bind_output_scalar("C");
    let (i, j, k) = (idx("i"), idx("j"), idx("k"));
    let inner = |v: &IndexVar| if gallop { v.gallop() } else { v.walk() };
    let program = forall(
        i.clone(),
        forall(
            j.clone(),
            forall(
                k.clone(),
                add_assign(
                    scalar("C"),
                    mul3(
                        access(
                            "A",
                            [
                                finch_cin::IndexExpr::from(i.clone()),
                                finch_cin::IndexExpr::from(j.clone()),
                            ],
                        ),
                        access("A2", [finch_cin::IndexExpr::from(j), inner(&k)]),
                        access("At", [finch_cin::IndexExpr::from(i), inner(&k)]),
                    ),
                ),
            ),
        ),
    );
    kernel.compile(&program).expect("triangle kernel compiles")
}

/// Figure 8 variants for one power-law graph.
pub fn fig08_variants(n: usize, edges_per_node: usize, seed: u64) -> Vec<Variant> {
    let adj = datagen::power_law_graph(n, edges_per_node, seed);
    vec![
        Variant::new("two-finger (TACO-style)", triangle_kernel(&adj, n, false)),
        Variant::new("gallop", triangle_kernel(&adj, n, true)),
    ]
}

// ---------------------------------------------------------------------------
// Figure 9: convolution
// ---------------------------------------------------------------------------

/// The masked sparse convolution kernel of Figure 9 (square filter of odd
/// size `ksize`).
pub fn conv_kernel(
    grid: &[f64],
    size: usize,
    ksize: usize,
    filter: &[f64],
    sparse: bool,
) -> CompiledKernel {
    let (a, aw) = if sparse {
        (Tensor::csr_matrix("A", size, size, grid), Tensor::csr_matrix("Aw", size, size, grid))
    } else {
        (Tensor::dense_matrix("A", size, size, grid), Tensor::dense_matrix("Aw", size, size, grid))
    };
    let f = Tensor::dense_matrix("F", ksize, ksize, filter);
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_input(&aw).bind_input(&f).bind_output("C", &[size, size], 0.0);
    let (i, k, j, l) = (idx("i"), idx("k"), idx("j"), idx("l"));
    let half = (ksize / 2) as i64;
    let row_index = j.walk().offset(sub(lit_int(half), CinExpr::Index(i.clone()))).permit();
    let col_index = l.walk().offset(sub(lit_int(half), CinExpr::Index(k.clone()))).permit();
    let body = if sparse {
        add_assign(
            access("C", [i.clone(), k.clone()]),
            mul3(
                nonzero_mask(access("A", [i.clone(), k.clone()])),
                coalesce(vec![access("Aw", [row_index, col_index]).into(), lit(0.0)]),
                access("F", [j.clone(), l.clone()]),
            ),
        )
    } else {
        add_assign(
            access("C", [i.clone(), k.clone()]),
            mul(
                coalesce(vec![access("Aw", [row_index, col_index]).into(), lit(0.0)]),
                access("F", [j.clone(), l.clone()]),
            ),
        )
    };
    let program = forall(
        i,
        forall(
            k,
            forall_in(
                j,
                lit_int(0),
                lit_int(ksize as i64 - 1),
                forall_in(l, lit_int(0), lit_int(ksize as i64 - 1), body),
            ),
        ),
    );
    kernel.compile(&program).expect("convolution kernel compiles")
}

/// Figure 9: dense vs sparse convolution over a density sweep.  Returns
/// `(density, variants)`.
pub fn fig09_variants(size: usize, ksize: usize, densities: &[f64]) -> Vec<(f64, Vec<Variant>)> {
    let filter: Vec<f64> = (0..ksize * ksize).map(|v| 0.5 + (v % 5) as f64 * 0.1).collect();
    densities
        .iter()
        .map(|&d| {
            let grid = datagen::sparse_grid(size, size, d, 900 + (d * 1000.0) as u64);
            let variants = vec![
                Variant::new(
                    "dense (OpenCV-style)",
                    conv_kernel(&grid, size, ksize, &filter, false),
                ),
                Variant::new(
                    "sparse (masked, CSR)",
                    conv_kernel(&grid, size, ksize, &filter, true),
                ),
            ];
            (d, variants)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 10: alpha blending
// ---------------------------------------------------------------------------

/// The alpha blending kernel `A[i,j] = round(α·B[i,j] + β·C[i,j])`.
pub fn blend_kernel(b: &Tensor, c: &Tensor, alpha: f64, beta: f64) -> CompiledKernel {
    let shape = b.shape();
    let mut kernel = Kernel::new();
    kernel.bind_input(b).bind_input(c).bind_output("A", &shape, 0.0);
    let (i, j) = (idx("i"), idx("j"));
    let program = forall(
        i.clone(),
        forall(
            j.clone(),
            assign(
                access("A", [i.clone(), j.clone()]),
                round_u8(add(
                    mul(lit(alpha), access(b.name(), [i.clone(), j.clone()])),
                    mul(lit(beta), access(c.name(), [i, j])),
                )),
            ),
        ),
    );
    kernel.compile(&program).expect("blend kernel compiles")
}

/// Figure 10: blending variants over a dataset generator ("omniglot"-like
/// strokes or "sketches"-like dense drawings).
pub fn fig10_variants(size: usize, sketches: bool, seed: u64) -> Vec<Variant> {
    let (fg, bg) = if sketches {
        (datagen::sketch_image(size, seed), datagen::sketch_image(size, seed + 1))
    } else {
        (datagen::stroke_image(size, 3, seed), datagen::stroke_image(size, 2, seed + 1))
    };
    let (alpha, beta) = (0.6, 0.4);
    vec![
        Variant::new(
            "dense (OpenCV-style)",
            blend_kernel(
                &Tensor::dense_matrix("B", size, size, &fg),
                &Tensor::dense_matrix("Cimg", size, size, &bg),
                alpha,
                beta,
            ),
        ),
        Variant::new(
            "sparse list",
            blend_kernel(
                &Tensor::csr_matrix("B", size, size, &fg),
                &Tensor::csr_matrix("Cimg", size, size, &bg),
                alpha,
                beta,
            ),
        ),
        Variant::new(
            "run-length (RLE)",
            blend_kernel(
                &Tensor::rle_matrix("B", size, size, &fg),
                &Tensor::rle_matrix("Cimg", size, size, &bg),
                alpha,
                beta,
            ),
        ),
    ]
}

// ---------------------------------------------------------------------------
// Figure 11: all-pairs image similarity
// ---------------------------------------------------------------------------

/// The all-pairs image similarity kernel of Figure 11 over a batch of
/// linearised images.
pub fn all_pairs_kernel(a: &Tensor, a2: &Tensor) -> CompiledKernel {
    let n = a.shape()[0];
    let mut kernel = Kernel::new();
    kernel
        .bind_input(a)
        .bind_input(a2)
        .bind_output("R", &[n], 0.0)
        .bind_output("O", &[n, n], 0.0)
        .bind_output_scalar("o");
    let (k, l, ij, ij2) = (idx("k"), idx("l"), idx("ij"), idx("ij2"));
    let squares = forall(
        k.clone(),
        forall(
            ij.clone(),
            add_assign(
                access("R", [k.clone()]),
                mul(access(a.name(), [k.clone(), ij.clone()]), access(a.name(), [k.clone(), ij])),
            ),
        ),
    );
    let pairwise = forall(
        k.clone(),
        forall(
            l.clone(),
            where_(
                assign(
                    access("O", [k.clone(), l.clone()]),
                    sqrt(add(
                        add(access("R", [k.clone()]), access("R", [l.clone()])),
                        mul(lit(-2.0), CinExpr::Access(scalar("o"))),
                    )),
                ),
                forall(
                    ij2.clone(),
                    add_assign(
                        scalar("o"),
                        mul(
                            access(a.name(), [k.clone(), ij2.clone()]),
                            access(a2.name(), [l.clone(), ij2]),
                        ),
                    ),
                ),
            ),
        ),
    );
    kernel.compile(&multi(vec![squares, pairwise])).expect("all-pairs kernel compiles")
}

/// Figure 11: format variants over one image batch.  `dataset` selects the
/// generator: "mnist" (blobs), "emnist" (blobs, different seed), "omniglot"
/// (strokes).
pub fn fig11_variants(count: usize, img: usize, dataset: &str) -> Vec<Variant> {
    let m = img * img;
    let batch = match dataset {
        "omniglot" => {
            datagen::image_batch(count, img, 311, |s, seed| datagen::stroke_image(s, 2, seed))
        }
        "emnist" => datagen::image_batch(count, img, 251, datagen::blob_image),
        _ => datagen::image_batch(count, img, 211, datagen::blob_image),
    };
    let build = |name: &str, a: Tensor, a2: Tensor| Variant::new(name, all_pairs_kernel(&a, &a2));
    vec![
        build(
            "dense",
            Tensor::dense_matrix("A", count, m, &batch),
            Tensor::dense_matrix("A2", count, m, &batch),
        ),
        build(
            "sparse list",
            Tensor::csr_matrix("A", count, m, &batch),
            Tensor::csr_matrix("A2", count, m, &batch),
        ),
        build(
            "VBL",
            Tensor::vbl_matrix("A", count, m, &batch),
            Tensor::vbl_matrix("A2", count, m, &batch),
        ),
        build(
            "run-length (RLE)",
            Tensor::rle_matrix("A", count, m, &batch),
            Tensor::rle_matrix("A2", count, m, &batch),
        ),
    ]
}

// ---------------------------------------------------------------------------
// Sparse output assembly (figS): elementwise multiply and threshold filter
// ---------------------------------------------------------------------------

/// The sparse·sparse elementwise multiply `C[i] = A[i] * B[i]`, with the
/// result either written into a preallocated dense buffer (the baseline
/// paying O(n) write traffic) or append-assembled as a sparse list (O(nnz)).
pub fn ewise_mul_kernel(a: &Tensor, b: &Tensor, sparse_out: bool) -> CompiledKernel {
    let n = a.shape()[0];
    let mut kernel = Kernel::new();
    kernel.bind_input(a).bind_input(b);
    if sparse_out {
        kernel.bind_output_format("C", &[LevelSpec::SparseList { size: n }]);
    } else {
        kernel.bind_output("C", &[n], 0.0);
    }
    let i = idx("i");
    let program = forall(
        i.clone(),
        assign(access("C", [i.clone()]), mul(access(a.name(), [i.clone()]), access(b.name(), [i]))),
    );
    kernel.compile(&program).expect("elementwise multiply compiles")
}

/// The threshold filter `C[i] = A[i] where A[i] > t`, keeping only entries
/// above the threshold; output format as in [`ewise_mul_kernel`].
pub fn threshold_kernel(a: &Tensor, threshold: f64, sparse_out: bool) -> CompiledKernel {
    let n = a.shape()[0];
    let mut kernel = Kernel::new();
    kernel.bind_input(a);
    if sparse_out {
        kernel.bind_output_format("C", &[LevelSpec::SparseList { size: n }]);
    } else {
        kernel.bind_output("C", &[n], 0.0);
    }
    let i = idx("i");
    let program = forall(
        i.clone(),
        sieve(
            gt(access(a.name(), [i.clone()]), lit(threshold)),
            assign(access("C", [i.clone()]), access(a.name(), [i])),
        ),
    );
    kernel.compile(&program).expect("threshold filter compiles")
}

/// One sparse-output workload group: its label, its dense-output baseline
/// and sparse-output variants (in that order), and the stored-entry count
/// the sparse assembly must produce (the dense oracle's nnz).
pub struct OutputGroup {
    /// Group label for the table and the JSON report.
    pub group: String,
    /// Dense-output baseline first, `SparseList`-output variant second.
    pub variants: Vec<Variant>,
    /// Expected stored entries of the sparse output, from the dense oracle.
    pub oracle_nnz: usize,
}

impl OutputGroup {
    /// Run both variants once (on clones, so the timed kernels are left
    /// untouched) and assert the assembly contract: the sparse output
    /// stores exactly the oracle's nnz, materialises to the dense
    /// baseline's result, and writes strictly less than the dense variant.
    ///
    /// # Panics
    ///
    /// Panics when any part of the contract is violated — used by both the
    /// `figures` binary (before timing) and the unit tests, so the CI smoke
    /// run checks correctness, not just timing.
    pub fn assert_assembly(&self) {
        let mut dense = self.variants[0].kernel.clone();
        let mut sparse = self.variants[1].kernel.clone();
        let dense_stats = dense.run().expect("dense baseline runs");
        let sparse_stats = sparse.run().expect("sparse assembly runs");
        let t = sparse.output_tensor("C").expect("sparse output finalizes");
        assert_eq!(
            t.stored(),
            self.oracle_nnz,
            "{}: sparse output stored-entry count diverges from the oracle",
            self.group
        );
        assert_eq!(
            t.to_dense(),
            dense.output("C").expect("dense output reads"),
            "{}: sparse output materialisation diverges from the dense run",
            self.group
        );
        assert!(
            sparse_stats.stores < dense_stats.stores,
            "{}: sparse assembly must store strictly less ({} vs {})",
            self.group,
            sparse_stats.stores,
            dense_stats.stores
        );
    }
}

/// The sparse-output assembly workloads (figS): a sparse·sparse elementwise
/// multiply and a threshold filter over vectors of the given density.
pub fn figs_output_groups(n: usize, density: f64, seed: u64) -> Vec<OutputGroup> {
    let av = datagen::random_sparse_vector(n, density, seed);
    // B shares roughly half of A's support (so the multiply's intersection
    // is nonempty at any density) plus its own random scatter.
    let mut bv = datagen::random_sparse_vector(n, density, seed + 1);
    for (k, &v) in av.iter().enumerate() {
        if v != 0.0 && k % 2 == 0 {
            bv[k] = 0.25 + (k % 7) as f64;
        }
    }
    let a = Tensor::sparse_list_vector("A", &av);
    let b = Tensor::sparse_list_vector("B", &bv);

    let mul_nnz = av.iter().zip(&bv).filter(|(x, y)| *x * *y != 0.0).count();
    let threshold = 5.0; // datagen values are uniform in 0.5..10.0
    let filter_nnz = av.iter().filter(|&&v| v > threshold).count();

    vec![
        OutputGroup {
            group: format!("elementwise multiply (density {density})"),
            variants: vec![
                Variant::new("dense output", ewise_mul_kernel(&a, &b, false)),
                Variant::new("sparse-list output", ewise_mul_kernel(&a, &b, true)),
            ],
            oracle_nnz: mul_nnz,
        },
        OutputGroup {
            group: format!("threshold filter (density {density})"),
            variants: vec![
                Variant::new("dense output", threshold_kernel(&a, threshold, false)),
                Variant::new("sparse-list output", threshold_kernel(&a, threshold, true)),
            ],
            oracle_nnz: filter_nnz,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a variant on both engines and assert outputs and work counters
    /// are bit-identical (the bench harness relies on this when printing
    /// one shared work column).
    fn assert_engine_parity(v: &mut Variant, what: &str) {
        let tw = v.kernel.run_with(Engine::TreeWalk).expect("tree-walk runs");
        let tw_outs: Vec<(String, Vec<f64>)> = v
            .kernel
            .output_names()
            .into_iter()
            .map(|n| {
                let out = v.kernel.output(&n).unwrap();
                (n, out)
            })
            .collect();
        let bc = v.kernel.run_with(Engine::Bytecode).expect("bytecode runs");
        assert_eq!(tw, bc, "{what} `{}`: work counters diverge", v.label);
        for (name, tw_out) in tw_outs {
            let bc_out = v.kernel.output(&name).unwrap();
            let same = tw_out.len() == bc_out.len()
                && tw_out.iter().zip(&bc_out).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{what} `{}`: output {name} diverges", v.label);
        }
    }

    #[test]
    fn every_figure_builder_produces_runnable_kernels_on_both_engines() {
        for (_, variants) in fig01_variants(200, 20, &[8]) {
            for mut v in variants {
                assert_engine_parity(&mut v, "fig01");
            }
        }
        let xv = fig07_vector(32, Some(0.2), None, 7);
        for mut v in fig07_variants(32, &xv, 7) {
            assert_engine_parity(&mut v, "fig07");
        }
        for mut v in fig08_variants(24, 2, 3) {
            assert_engine_parity(&mut v, "fig08");
        }
        for (_, variants) in fig09_variants(12, 3, &[0.1]) {
            for mut v in variants {
                assert_engine_parity(&mut v, "fig09");
            }
        }
        for mut v in fig10_variants(16, false, 5) {
            assert_engine_parity(&mut v, "fig10");
        }
        for mut v in fig11_variants(3, 8, "mnist") {
            assert_engine_parity(&mut v, "fig11");
        }
        for g in figs_output_groups(128, 0.05, 5) {
            for mut v in g.variants {
                assert_engine_parity(&mut v, "figS");
            }
        }
    }

    #[test]
    fn sparse_output_assembly_matches_the_dense_baseline() {
        for g in figs_output_groups(200, 0.08, 11) {
            g.assert_assembly();
        }
    }

    /// The compile-latency guard: a full `Kernel::compile` and a
    /// re-optimisation at every level must stay well under the budget the
    /// `figures` binary enforces, so new optimiser passes cannot silently
    /// blow up compilation time.
    #[test]
    fn kernel_compile_stays_fast_at_every_opt_level() {
        use finch::OptLevel;
        use std::time::Instant;
        const BUDGET: f64 = 2.0;

        let n = 32;
        let dense_a = datagen::scientific_matrix(n, 2, 4, 0.004, 7);
        let x_data = fig07_vector(n, Some(0.2), None, 7);
        let a = Tensor::csr_matrix("A", n, n, &dense_a);
        let x = Tensor::sparse_list_vector("x", &x_data);

        let start = Instant::now();
        let kernel = spmspv_kernel(&a, &x, Protocol::Gallop, Protocol::Gallop);
        let full_compile = start.elapsed().as_secs_f64();
        assert!(full_compile < BUDGET, "Kernel::compile took {full_compile:.3}s");

        for level in OptLevel::all() {
            let start = Instant::now();
            let k = kernel.reoptimized(level);
            let elapsed = start.elapsed().as_secs_f64();
            assert!(elapsed < BUDGET, "reoptimize at {level} took {elapsed:.3}s");
            assert_eq!(k.opt_level(), level);
        }
    }

    /// The optimiser must actually shrink the executed program: fewer
    /// bytecode instructions and less counted work at `Default` than at
    /// `None`, with identical outputs.
    #[test]
    fn default_opt_level_shrinks_instructions_and_work() {
        use finch::OptLevel;
        let a_data = datagen::counted_sparse_vector(400, 40, 101);
        let b_data = datagen::counted_sparse_vector(400, 40, 102);
        let a = Tensor::sparse_list_vector("A", &a_data);
        let b = Tensor::sparse_list_vector("B", &b_data);
        let opt = dot_kernel(&a, &b, Protocol::Walk, Protocol::Walk);
        let mut none = opt.reoptimized(OptLevel::None);
        let mut opt = opt.reoptimized(OptLevel::Default);
        assert!(
            opt.bytecode().code().len() < none.bytecode().code().len(),
            "default must emit fewer instructions: {} vs {}",
            opt.bytecode().code().len(),
            none.bytecode().code().len()
        );
        let stats = opt.opt_stats();
        assert!(stats.movs_eliminated > 0 && stats.instrs_fused > 0, "{stats:?}");
        let none_stats = none.run().expect("unoptimised kernel runs");
        let opt_stats = opt.run().expect("optimised kernel runs");
        assert!(
            opt_stats.total_work() <= none_stats.total_work(),
            "optimisation must not add work: {opt_stats:?} vs {none_stats:?}"
        );
        let (a, b) = (none.output_scalar("C").unwrap(), opt.output_scalar("C").unwrap());
        assert_eq!(a.to_bits(), b.to_bits(), "outputs must be bit-identical");
    }

    #[test]
    fn spmspv_strategies_agree_with_each_other() {
        let n = 48;
        let xv = fig07_vector(n, None, Some(6), 9);
        let mut outputs = Vec::new();
        for mut v in fig07_variants(n, &xv, 9) {
            v.kernel.run().expect("variant runs");
            outputs.push((v.label, v.kernel.output("y").unwrap()));
        }
        let (first_label, first) = &outputs[0];
        for (label, out) in &outputs[1..] {
            for (a, b) in first.iter().zip(out) {
                assert!((a - b).abs() < 1e-6, "{label} disagrees with {first_label}");
            }
        }
    }
}
