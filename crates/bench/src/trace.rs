//! Zipf-skewed request traces for the `serve` bench.
//!
//! A trace draws from a small population of *kernel structures* (distinct
//! cache keys: the program template and the input sizes/formats vary per
//! kernel id) crossed with a set of *data instances* per kernel (same
//! structure, different values — these share one cached compiled kernel and
//! exercise the in-place rebind path).  Kernel popularity follows a Zipf
//! distribution, so a small cache capacity still yields a high hit rate —
//! the regime a long-lived kernel service is designed for.
//!
//! Everything is seeded: the same [`TraceConfig`] always produces the same
//! schedule and the same tensor data, so fault-injection runs can be
//! verified against independently computed reference results.

use finch::build::*;
use finch::{Engine, Kernel, LevelSpec, Request, Response, Tensor};

/// Parameters of a generated trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of distinct kernel structures (distinct cache keys).
    pub kernels: usize,
    /// Data instances per kernel (same structure, different values).
    pub instances: usize,
    /// Total requests in the schedule.
    pub requests: usize,
    /// Zipf exponent for kernel popularity (0 = uniform).
    pub skew: f64,
    /// RNG seed for the schedule and the tensor data.
    pub seed: u64,
    /// Base vector length multiplier for the generated tensors.
    pub scale: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { kernels: 12, instances: 4, requests: 500, skew: 1.1, seed: 0x5E21, scale: 4 }
    }
}

/// One scheduled request: which kernel structure and which data instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRequest {
    /// Kernel structure id in `0..kernels`.
    pub kernel: usize,
    /// Data instance id in `0..instances`.
    pub instance: usize,
}

/// A generated schedule of requests.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The request schedule, in submission order.
    pub requests: Vec<TraceRequest>,
}

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

/// Uniform float in `[0, 1)` from an LCG draw.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Generate the Zipf-skewed schedule for `cfg`.
pub fn generate(cfg: &TraceConfig) -> Trace {
    let kernels = cfg.kernels.max(1);
    let instances = cfg.instances.max(1);
    // Zipf CDF over kernel ranks 1..=kernels.
    let weights: Vec<f64> = (1..=kernels).map(|r| 1.0 / (r as f64).powf(cfg.skew)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(kernels);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let mut state = cfg.seed ^ 0xD6E8_FEB8_6659_FD93;
    let mut requests = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        let x = lcg(&mut state);
        let u = unit(x);
        let kernel = cdf.partition_point(|&c| c < u).min(kernels - 1);
        let instance = ((x >> 17) as usize) % instances;
        requests.push(TraceRequest { kernel, instance });
    }
    Trace { requests }
}

/// The vector length used by kernel structure `kernel`.
fn len_of(cfg: &TraceConfig, kernel: usize) -> usize {
    cfg.scale.max(1) * (8 + 5 * (kernel / 3)) + (kernel % 3)
}

/// Deterministic data for `(kernel, instance)`: values in `[-1, 1]` with the
/// given density of nonzeros.
fn gen_data(
    cfg: &TraceConfig,
    kernel: usize,
    instance: usize,
    salt: u64,
    density: f64,
) -> Vec<f64> {
    let n = len_of(cfg, kernel);
    let mut state =
        cfg.seed ^ (kernel as u64).wrapping_mul(0x9E37_79B9) ^ (instance as u64) << 32 ^ salt;
    lcg(&mut state);
    (0..n)
        .map(|_| {
            let x = lcg(&mut state);
            if unit(x) < density {
                2.0 * unit(lcg(&mut state)) - 1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// The input tensors for `(kernel, instance)`.  The structure (formats and
/// sizes) depends only on `kernel`; the values also depend on `instance`.
pub fn tensors_for(cfg: &TraceConfig, kernel: usize, instance: usize) -> (Tensor, Tensor) {
    let av = gen_data(cfg, kernel, instance, 0xA, 0.4);
    let bv = gen_data(cfg, kernel, instance, 0xB, 0.7);
    match kernel % 3 {
        // Sparse-dense dot product, scalar output.
        0 => (Tensor::sparse_list_vector("A", &av), Tensor::dense_vector("B", &bv)),
        // Dense elementwise product, dense output.
        1 => (Tensor::dense_vector("A", &av), Tensor::dense_vector("B", &bv)),
        // Sparse-sparse intersection, sparse output.
        _ => (Tensor::sparse_list_vector("A", &av), Tensor::sparse_list_vector("B", &bv)),
    }
}

/// Build the service [`Request`] for `(kernel, instance)`.
pub fn build_request(cfg: &TraceConfig, kernel: usize, instance: usize) -> Request {
    let (a, b) = tensors_for(cfg, kernel, instance);
    let n = len_of(cfg, kernel);
    let i = idx("i");
    match kernel % 3 {
        0 => {
            let program = forall(
                i.clone(),
                add_assign(scalar("C"), mul(access("A", [i.clone()]), access("B", [i]))),
            );
            Request::new(program).input(&a).input(&b).output_scalar("C")
        }
        1 => {
            let program = forall(
                i.clone(),
                assign(access("C", [i.clone()]), mul(access("A", [i.clone()]), access("B", [i]))),
            );
            Request::new(program).input(&a).input(&b).output("C", &[LevelSpec::Dense { size: n }])
        }
        _ => {
            let program = forall(
                i.clone(),
                assign(access("C", [i.clone()]), mul(access("A", [i.clone()]), access("B", [i]))),
            );
            Request::new(program)
                .input(&a)
                .input(&b)
                .output("C", &[LevelSpec::SparseList { size: n }])
        }
    }
}

/// Build the service [`Request`]s for a slice of scheduled trace entries,
/// in order — the batch-submission driver's input.
pub fn build_requests(cfg: &TraceConfig, reqs: &[TraceRequest]) -> Vec<Request> {
    reqs.iter().map(|r| build_request(cfg, r.kernel, r.instance)).collect()
}

/// The readback values of a service [`Response`]: the scalar as a singleton,
/// or the output tensor's stored values.
pub fn response_values(resp: &Response) -> Vec<f64> {
    if let Some(s) = resp.scalar {
        return vec![s];
    }
    resp.tensor.as_ref().map(|t| t.values().to_vec()).unwrap_or_default()
}

/// Independently compile and run `(kernel, instance)` on the tree-walk
/// oracle and return its readback values — the reference a served (possibly
/// degraded) response must match bit-for-bit.
pub fn reference_values(cfg: &TraceConfig, kernel: usize, instance: usize) -> Vec<f64> {
    let (a, b) = tensors_for(cfg, kernel, instance);
    let n = len_of(cfg, kernel);
    let mut k = Kernel::new();
    k.bind_input(&a).bind_input(&b);
    let i = idx("i");
    let (program, scalar_out) = match kernel % 3 {
        0 => {
            k.bind_output_scalar("C");
            (
                forall(
                    i.clone(),
                    add_assign(scalar("C"), mul(access("A", [i.clone()]), access("B", [i]))),
                ),
                true,
            )
        }
        1 => {
            k.bind_output_format("C", &[LevelSpec::Dense { size: n }]);
            (
                forall(
                    i.clone(),
                    assign(
                        access("C", [i.clone()]),
                        mul(access("A", [i.clone()]), access("B", [i])),
                    ),
                ),
                false,
            )
        }
        _ => {
            k.bind_output_format("C", &[LevelSpec::SparseList { size: n }]);
            (
                forall(
                    i.clone(),
                    assign(
                        access("C", [i.clone()]),
                        mul(access("A", [i.clone()]), access("B", [i])),
                    ),
                ),
                false,
            )
        }
    };
    let mut compiled = k.compile(&program).expect("trace template compiles");
    compiled.set_engine(Engine::TreeWalk);
    compiled.run().expect("trace template runs");
    if scalar_out {
        vec![compiled.output_scalar("C").expect("scalar readback")]
    } else {
        compiled.output_tensor("C").expect("tensor readback").values().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finch::{KernelService, ServiceConfig};

    #[test]
    fn schedules_are_seeded_and_skewed() {
        let cfg = TraceConfig { requests: 400, ..TraceConfig::default() };
        let t1 = generate(&cfg);
        let t2 = generate(&cfg);
        assert_eq!(t1.requests, t2.requests);
        assert_eq!(t1.requests.len(), 400);
        // Zipf skew: kernel 0 must be the most popular.
        let mut counts = vec![0usize; cfg.kernels];
        for r in &t1.requests {
            counts[r.kernel] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert_eq!(counts[0], max, "rank-1 kernel should dominate: {counts:?}");
    }

    #[test]
    fn every_template_serves_and_matches_the_reference() {
        let cfg = TraceConfig { scale: 2, ..TraceConfig::default() };
        let svc = KernelService::new(ServiceConfig::default());
        for kernel in 0..3 {
            for instance in 0..2 {
                let req = build_request(&cfg, kernel, instance);
                let resp = svc
                    .submit(&req)
                    .unwrap_or_else(|e| panic!("kernel {kernel} instance {instance} failed: {e}"));
                let got = response_values(&resp);
                let want = reference_values(&cfg, kernel, instance);
                let gb: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
                let wb: Vec<u64> = want.iter().map(|x| x.to_bits()).collect();
                assert_eq!(gb, wb, "kernel {kernel} instance {instance}");
            }
        }
        // Second instances were cache hits: 3 distinct structures compiled.
        assert_eq!(svc.stats().compiles, 3);
        assert_eq!(svc.stats().hits, 3);
    }
}
