//! Regenerate every figure of the paper's evaluation as a text table,
//! timing each variant on **both** execution engines — the tree-walking
//! interpreter and the flat register bytecode VM — side by side.
//!
//! ```bash
//! cargo run --release -p finch-bench --bin figures              # all figures
//! cargo run --release -p finch-bench --bin figures -- --fig 8   # one figure
//! cargo run --release -p finch-bench --bin figures -- --tiny    # CI smoke sizes
//! cargo run --release -p finch-bench --bin figures -- --json out.json
//! ```
//!
//! Each table reports the median wall-clock of both engines, the
//! machine-independent work counter (asserted identical across engines),
//! and the speedup relative to the figure's baseline strategy measured on
//! the bytecode engine (the quantity the paper plots).  Every measurement
//! is also appended to a machine-readable JSON report
//! (`BENCH_figures.json` by default) so the perf trajectory is trackable
//! across commits; see EXPERIMENTS.md for the schema.
//!
//! Figure S (sparse output assembly) additionally smoke-checks assembly
//! correctness before timing: the sparse-list output's stored-entry count
//! must equal the dense oracle's nnz, its materialisation must equal the
//! dense-output run, and its store counter must be strictly below the
//! dense variant's — so CI (`--tiny`) checks correctness, not just timing.

use finch::Engine;
use finch_bench::report::{EngineReport, FigureGroup, Report, VariantReport};
use finch_bench::*;

fn wants(figure: &str) -> bool {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--fig") {
        Some(k) => args.get(k + 1).map(|f| figure.starts_with(f.as_str())).unwrap_or(true),
        None => true,
    }
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_after(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|k| args.get(k + 1).cloned())
}

fn runs() -> usize {
    arg_after("--runs").and_then(|v| v.parse().ok()).unwrap_or(3)
}

fn header(title: &str) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>14} {:>13} {:>14} {:>10}",
        "strategy", "tree-walk (ms)", "bytecode (ms)", "total work", "speedup"
    );
}

/// Time a group of variants on both engines, print them with speedups
/// relative to the first one (bytecode wall-clock), and record them in the
/// JSON report.
fn table(figure: &str, group: &str, variants: Vec<Variant>, reps: usize, report: &mut Report) {
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for mut v in variants {
        let (tw_secs, tw_stats) = time_kernel_with(&mut v.kernel, reps, Engine::TreeWalk);
        let (bc_secs, bc_stats) = time_kernel_with(&mut v.kernel, reps, Engine::Bytecode);
        assert_eq!(
            tw_stats, bc_stats,
            "work counters diverge between engines for `{}` in {figure} ({group})",
            v.label
        );
        records.push(VariantReport {
            label: v.label.clone(),
            engines: vec![
                EngineReport { engine: Engine::TreeWalk, median_seconds: tw_secs, stats: tw_stats },
                EngineReport { engine: Engine::Bytecode, median_seconds: bc_secs, stats: bc_stats },
            ],
        });
        rows.push((v.label, tw_secs, bc_secs, bc_stats.total_work()));
    }
    let base = rows[0].2;
    for (label, tw_secs, bc_secs, work) in rows {
        println!(
            "{:<28} {:>14.3} {:>13.3} {:>14} {:>9.2}x",
            label,
            tw_secs * 1e3,
            bc_secs * 1e3,
            work,
            base / bc_secs
        );
    }
    report.figures.push(FigureGroup {
        figure: figure.to_string(),
        group: group.to_string(),
        variants: records,
    });
}

fn main() {
    let reps = runs();
    // `--tiny` shrinks every figure to smoke-test sizes (used by CI to
    // exercise the whole path, including the JSON emission, in seconds).
    let tiny = flag("--tiny");
    let json_path = arg_after("--json").unwrap_or_else(|| "BENCH_figures.json".to_string());
    let mut report = Report::new();

    if wants("1") {
        println!("\n#### Figure 1 — motivating dot product: sparse list x sparse band");
        let (n, nnz, widths): (usize, usize, &[usize]) =
            if tiny { (200, 20, &[8]) } else { (20_000, 400, &[50, 400, 3_000]) };
        for (width, variants) in fig01_variants(n, nnz, widths) {
            header(&format!("band width {width}"));
            table("fig01", &format!("band width {width}"), variants, reps, &mut report);
        }
    }

    if wants("7a") || wants("7") {
        println!("\n#### Figure 7a — SpMSpV, x with 10% nonzeros (speedup vs two-finger)");
        let n = if tiny { 32 } else { 128 };
        let seeds: &[u64] = if tiny { &[1] } else { &[1, 2, 3] };
        for &seed in seeds {
            let xv = fig07_vector(n, Some(0.10), None, 70 + seed);
            header(&format!("synthetic HB-like matrix #{seed}"));
            table(
                "fig07a",
                &format!("matrix #{seed}"),
                fig07_variants(n, &xv, seed),
                reps,
                &mut report,
            );
        }
    }

    if wants("7b") || wants("7") {
        println!("\n#### Figure 7b — SpMSpV, x with 10 nonzeros (speedup vs two-finger)");
        let n = if tiny { 32 } else { 128 };
        let seeds: &[u64] = if tiny { &[1] } else { &[1, 2, 3] };
        for &seed in seeds {
            let xv = fig07_vector(n, None, Some(10), 80 + seed);
            header(&format!("synthetic HB-like matrix #{seed}"));
            table(
                "fig07b",
                &format!("matrix #{seed}"),
                fig07_variants(n, &xv, seed),
                reps,
                &mut report,
            );
        }
    }

    if wants("8") {
        println!("\n#### Figure 8 — triangle counting on power-law graphs (speedup vs two-finger)");
        let graphs: &[(usize, usize, u64)] =
            if tiny { &[(24, 2, 3)] } else { &[(64, 3, 11), (96, 4, 12), (128, 3, 13)] };
        for &(n, epn, seed) in graphs {
            header(&format!("graph: {n} vertices, ~{epn} edges/vertex"));
            table(
                "fig08",
                &format!("{n} vertices, ~{epn} edges/vertex"),
                fig08_variants(n, epn, seed),
                reps,
                &mut report,
            );
        }
    }

    if wants("9") {
        println!("\n#### Figure 9 — dense vs sparse convolution as density increases");
        let (size, ksize) = if tiny { (12, 3) } else { (48, 5) };
        let densities: &[f64] = if tiny { &[0.1] } else { &[0.002, 0.01, 0.05, 0.15, 0.40] };
        for (density, variants) in fig09_variants(size, ksize, densities) {
            header(&format!("grid {size}x{size}, filter {ksize}x{ksize}, density {density}"));
            table("fig09", &format!("density {density}"), variants, reps, &mut report);
        }
    }

    if wants("10") {
        println!("\n#### Figure 10 — alpha blending (speedup vs dense)");
        let size = if tiny { 16 } else { 64 };
        header(&format!("Omniglot-like stroke images ({size}x{size})"));
        table("fig10", "omniglot-like strokes", fig10_variants(size, false, 5), reps, &mut report);
        header(&format!("Humansketches-like images ({size}x{size})"));
        table("fig10", "humansketches-like", fig10_variants(size, true, 6), reps, &mut report);
    }

    if wants("11") {
        println!("\n#### Figure 11 — all-pairs image similarity (speedup vs dense)");
        let (count, img) = if tiny { (3, 8) } else { (16, 20) };
        let datasets: &[&str] = if tiny { &["mnist"] } else { &["mnist", "emnist", "omniglot"] };
        for dataset in datasets {
            header(&format!("{dataset}-like images ({count} images, {img}x{img})"));
            table("fig11", dataset, fig11_variants(count, img, dataset), reps, &mut report);
        }
    }

    if wants("S") {
        println!("\n#### Figure S — sparse output assembly (dense vs sparse-list result)");
        let (n, density) = if tiny { (512, 0.02) } else { (20_000, 0.001) };
        for g in finch_bench::figs_output_groups(n, density, 71) {
            // Smoke-check assembly correctness before timing: stored-entry
            // count equals the oracle's nnz, the materialisation equals the
            // dense run, and the sparse store counter is strictly lower.
            g.assert_assembly();
            header(&format!("{} — {} stored entries", g.group, g.oracle_nnz));
            table("figS", &g.group, g.variants, reps, &mut report);
        }
    }

    if let Err(e) = report.write(&json_path) {
        eprintln!("warning: could not write {json_path}: {e}");
    } else {
        println!("\nwrote machine-readable report to {json_path}");
    }
}
