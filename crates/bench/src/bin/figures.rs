//! Regenerate every figure of the paper's evaluation as a text table.
//!
//! ```bash
//! cargo run --release -p finch-bench --bin figures            # all figures
//! cargo run --release -p finch-bench --bin figures -- --fig 8 # one figure
//! ```
//!
//! Each table reports median wall-clock of the instrumented interpreter,
//! the machine-independent work counter, and the speedup relative to the
//! figure's baseline strategy (the quantity the paper plots).

use finch_bench::*;

fn wants(figure: &str) -> bool {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--fig") {
        Some(k) => args.get(k + 1).map(|f| figure.starts_with(f.as_str())).unwrap_or(true),
        None => true,
    }
}

fn runs() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--runs") {
        Some(k) => args.get(k + 1).and_then(|v| v.parse().ok()).unwrap_or(3),
        None => 3,
    }
}

fn header(title: &str) {
    println!("\n== {title} ==");
    println!("{:<28} {:>12} {:>14} {:>10}", "strategy", "time (ms)", "total work", "speedup");
}

/// Time a group of variants and print them with speedups relative to the
/// first one.
fn table(variants: Vec<Variant>, reps: usize) {
    let mut rows = Vec::new();
    for mut v in variants {
        let (secs, stats) = time_kernel(&mut v.kernel, reps);
        rows.push((v.label, secs, stats.total_work()));
    }
    let base = rows[0].1;
    for (label, secs, work) in rows {
        println!("{:<28} {:>12.3} {:>14} {:>9.2}x", label, secs * 1e3, work, base / secs);
    }
}

fn main() {
    let reps = runs();

    if wants("1") {
        println!("\n#### Figure 1 — motivating dot product: sparse list x sparse band");
        for (width, variants) in fig01_variants(20_000, 400, &[50, 400, 3_000]) {
            header(&format!("band width {width}"));
            table(variants, reps);
        }
    }

    if wants("7a") || wants("7") {
        println!("\n#### Figure 7a — SpMSpV, x with 10% nonzeros (speedup vs two-finger)");
        let n = 128;
        for seed in [1u64, 2, 3] {
            let xv = fig07_vector(n, Some(0.10), None, 70 + seed);
            header(&format!("synthetic HB-like matrix #{seed}"));
            table(fig07_variants(n, &xv, seed), reps);
        }
    }

    if wants("7b") || wants("7") {
        println!("\n#### Figure 7b — SpMSpV, x with 10 nonzeros (speedup vs two-finger)");
        let n = 128;
        for seed in [1u64, 2, 3] {
            let xv = fig07_vector(n, None, Some(10), 80 + seed);
            header(&format!("synthetic HB-like matrix #{seed}"));
            table(fig07_variants(n, &xv, seed), reps);
        }
    }

    if wants("8") {
        println!("\n#### Figure 8 — triangle counting on power-law graphs (speedup vs two-finger)");
        for (n, epn, seed) in [(64usize, 3usize, 11u64), (96, 4, 12), (128, 3, 13)] {
            header(&format!("graph: {n} vertices, ~{epn} edges/vertex"));
            table(fig08_variants(n, epn, seed), reps);
        }
    }

    if wants("9") {
        println!("\n#### Figure 9 — dense vs sparse convolution as density increases");
        let size = 48;
        let ksize = 5;
        for (density, variants) in fig09_variants(size, ksize, &[0.002, 0.01, 0.05, 0.15, 0.40]) {
            header(&format!("grid {size}x{size}, filter {ksize}x{ksize}, density {density}"));
            table(variants, reps);
        }
    }

    if wants("10") {
        println!("\n#### Figure 10 — alpha blending (speedup vs dense)");
        header("Omniglot-like stroke images (64x64)");
        table(fig10_variants(64, false, 5), reps);
        header("Humansketches-like images (64x64)");
        table(fig10_variants(64, true, 6), reps);
    }

    if wants("11") {
        println!("\n#### Figure 11 — all-pairs image similarity (speedup vs dense)");
        header("MNIST-like blobs (16 images, 20x20)");
        table(fig11_variants(16, 20, "mnist"), reps);
        header("EMNIST-like blobs (16 images, 20x20)");
        table(fig11_variants(16, 20, "emnist"), reps);
        header("Omniglot-like strokes (16 images, 20x20)");
        table(fig11_variants(16, 20, "omniglot"), reps);
    }
}
