//! Regenerate every figure of the paper's evaluation as a text table,
//! timing each variant on both execution engines — the tree-walking
//! interpreter and the flat register bytecode VM — and on the bytecode
//! engine at `OptLevel::None`, so every run records the optimiser's
//! wall-clock win next to the engine comparison.
//!
//! ```bash
//! cargo run --release -p finch-bench --bin figures                # all figures
//! cargo run --release -p finch-bench --bin figures -- --fig 8     # one figure
//! cargo run --release -p finch-bench --bin figures -- --tiny      # CI smoke sizes
//! cargo run --release -p finch-bench --bin figures -- --json out.json
//! cargo run --release -p finch-bench --bin figures -- --validate  # per-pass validation timings
//! # Re-run one engine/opt-level/dispatch combination in isolation:
//! cargo run --release -p finch-bench --bin figures -- --fig 1 --engine bytecode --opt none
//! cargo run --release -p finch-bench --bin figures -- --engine bytecode --opt default --typed off
//! cargo run --release -p finch-bench --bin figures -- --engine bytecode --opt default --simd off
//! # Time the sharded parallel tier at one worker count only:
//! cargo run --release -p finch-bench --bin figures -- --threads 2
//! ```
//!
//! With no `--engine`/`--opt`/`--typed`/`--simd` flags, each variant is
//! measured five ways: tree-walk and bytecode at `OptLevel::Default` (the
//! engine comparison, with identical work counters asserted), bytecode at
//! `OptLevel::None` (the optimiser comparison), bytecode at
//! `OptLevel::Default` with the typed-dispatch stage off (the
//! register-type-inference comparison), and bytecode at
//! `OptLevel::Default` with the vectorize stage off (the SIMD kernel-op
//! comparison).  Passing `--engine`, `--opt`, `--typed on|off` and/or
//! `--simd on|off` restricts the measured combinations.  Every
//! measurement is appended to a machine-readable JSON report
//! (`BENCH_figures.json` by default, schema v6) including instruction
//! counts, per-pass optimiser counters, the executed
//! `typed_instr_fraction` from one untimed profiled run per variant (plus
//! a per-opcode execution histogram in debug builds), the per-variant
//! `simd_speedup` and `vectorized_fraction` of the kernel-op tier, and
//! the optimiser compile time per variant — which is also guarded by a
//! hard assert so new passes cannot silently blow up compilation
//! latency.
//!
//! The parallel scaling leg: with no restricting flags, every variant the
//! shard analysis proved splittable is additionally timed on the bytecode
//! engine at `OptLevel::Default` (typed + simd) at 2, 4 and 8 worker
//! threads — together with the serial leg, the 1/2/4/8 scaling curve.
//! Before any parallel wall-clock number is recorded, the sharded run's
//! outputs (dense materialisation *and* assembled sparse `pos`/`idx`/
//! `val`) and summed work counters are asserted bit-identical to the
//! serial kernel.  Engine rows carry a `threads` key, variants carry
//! `sharded` and a `parallel_speedup` (serial over the 4-thread leg), and
//! the report gains a headline `parallel_speedup` median.  `--threads N`
//! replaces the 2/4/8 curve with the single worker count `N` (`--threads
//! 1` disables the leg).  With
//! `--validate`, each variant is additionally re-compiled under
//! `ValidationLevel::Full` (post-pass verification plus witness-based
//! translation validation), the per-pass transform/verify/validate
//! wall-clock split is emitted under a `validation` key, and the
//! compile-plus-validate time is held to the same latency budget.  See
//! EXPERIMENTS.md for the schema.
//!
//! Figure S (sparse output assembly) additionally smoke-checks assembly
//! correctness before timing: the sparse-list output's stored-entry count
//! must equal the dense oracle's nnz, its materialisation must equal the
//! dense-output run, and its store counter must be strictly below the
//! dense variant's — so CI (`--tiny`) checks correctness, not just timing.

use std::time::Instant;

use finch::{Engine, OptLevel, ValidationLevel};
use finch_bench::report::{
    EngineReport, FigureGroup, OptReport, OptSpeedup, ParallelSpeedup, Report, SimdSpeedup,
    TypedSpeedup, ValidationReport, VariantReport,
};
use finch_bench::*;

/// Re-deriving a kernel at `OptLevel::Default` (IR pipeline + bytecode
/// compile + peephole) must stay far below human-noticeable latency; the
/// bound is generous so CI machines never flake, while still catching an
/// accidentally quadratic pass.
const COMPILE_BUDGET_SECONDS: f64 = 2.0;

fn wants(figure: &str) -> bool {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--fig") {
        Some(k) => args.get(k + 1).map(|f| figure.starts_with(f.as_str())).unwrap_or(true),
        None => true,
    }
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_after(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|k| args.get(k + 1).cloned())
}

fn runs() -> usize {
    arg_after("--runs").and_then(|v| v.parse().ok()).unwrap_or(7)
}

/// Worker counts for the parallel scaling leg: `--threads N` pins the leg
/// to that single count (1 = leg disabled); with no flag the default full
/// run measures the 2/4/8 curve, while restricted runs (`--engine`,
/// `--opt`, `--typed`, `--simd`) skip the leg.
fn scaling_threads() -> Vec<usize> {
    match arg_after("--threads").map(|v| {
        v.parse::<usize>().unwrap_or_else(|_| {
            eprintln!("bad --threads `{v}` (expected a positive integer)");
            std::process::exit(2);
        })
    }) {
        Some(n) if n > 1 => vec![n],
        Some(_) => vec![],
        None => {
            let restricted = ["--engine", "--opt", "--typed", "--simd"]
                .iter()
                .any(|f| std::env::args().any(|a| a == *f));
            if restricted {
                vec![]
            } else {
                vec![2, 4, 8]
            }
        }
    }
}

/// A run's observable outcome, rendered comparison-ready: the work
/// counters plus, per output, the dense materialisation as exact f64 bit
/// patterns and (where the output finalises) the assembled tensor —
/// including sparse `pos`/`idx`/`val` — via its `Debug` form, which
/// round-trips f64 exactly.
fn outcome_fingerprint(kernel: &mut finch::CompiledKernel) -> (finch::ExecStats, Vec<String>) {
    let stats = kernel.run().expect("kernel runs");
    let mut outputs = Vec::new();
    for name in kernel.output_names() {
        let bits: Vec<u64> =
            kernel.output(&name).expect("output reads").iter().map(|x| x.to_bits()).collect();
        let tensor = kernel.output_tensor(&name).ok().map(|t| format!("{t:?}"));
        outputs.push(format!("{name}: bits {bits:?}, tensor {tensor:?}"));
    }
    (stats, outputs)
}

/// The (engine, opt level, typed dispatch, simd) combinations to measure,
/// from `--engine`, `--opt`, `--typed` and `--simd`:
///
/// * no flags: tree-walk and bytecode at `Default`, bytecode at `None`
///   (the optimiser comparison), bytecode at `Default` with typed
///   dispatch off (the typed-dispatch comparison), and bytecode at
///   `Default` with the vectorize stage off (the SIMD comparison),
/// * `--typed on|off` / `--simd on|off`: restrict every measured
///   combination to that mode (dropping the automatic comparison leg),
/// * only `--engine E`: `E` at `Default` and `None`,
/// * only `--opt O`: both engines at `O`,
/// * `--engine` and `--opt`: exactly `(E, O)`.
fn combos() -> Vec<(Engine, OptLevel, bool, bool)> {
    let engine = arg_after("--engine").map(|v| match v.as_str() {
        "bytecode" => Engine::Bytecode,
        "tree_walk" | "tree-walk" | "treewalk" => Engine::TreeWalk,
        other => {
            eprintln!("unknown --engine `{other}` (expected bytecode|tree_walk)");
            std::process::exit(2);
        }
    });
    let opt = arg_after("--opt").map(|v| {
        OptLevel::parse(&v).unwrap_or_else(|| {
            eprintln!("unknown --opt `{v}` (expected none|default|aggressive)");
            std::process::exit(2);
        })
    });
    let typed = arg_after("--typed").map(|v| match v.as_str() {
        "on" | "true" | "1" => true,
        "off" | "false" | "0" => false,
        other => {
            eprintln!("unknown --typed `{other}` (expected on|off)");
            std::process::exit(2);
        }
    });
    let simd = arg_after("--simd").map(|v| match v.as_str() {
        "on" | "true" | "1" => true,
        "off" | "false" | "0" => false,
        other => {
            eprintln!("unknown --simd `{other}` (expected on|off)");
            std::process::exit(2);
        }
    });
    let t = typed.unwrap_or(true);
    let s = simd.unwrap_or(true);
    match (engine, opt) {
        (None, None) => {
            let mut v = vec![
                (Engine::TreeWalk, OptLevel::Default, t, s),
                (Engine::Bytecode, OptLevel::Default, t, s),
                (Engine::Bytecode, OptLevel::None, t, s),
            ];
            if typed.is_none() {
                // The typed-dispatch comparison leg: same kernels, same
                // level, inference stage off.
                v.push((Engine::Bytecode, OptLevel::Default, false, s));
            }
            if simd.is_none() {
                // The SIMD comparison leg: same kernels, same level,
                // typed dispatch on, vectorize stage off.
                v.push((Engine::Bytecode, OptLevel::Default, t, false));
            }
            v
        }
        (Some(e), None) => vec![(e, OptLevel::Default, t, s), (e, OptLevel::None, t, s)],
        (None, Some(o)) => vec![(Engine::TreeWalk, o, t, s), (Engine::Bytecode, o, t, s)],
        (Some(e), Some(o)) => vec![(e, o, t, s)],
    }
}

fn header(title: &str) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>9} {:>10} {:>5} {:>4} {:>3} {:>11} {:>12} {:>12}",
        "strategy", "engine", "opt", "typed", "simd", "thr", "median (ms)", "total work", "speedup"
    );
}

/// Time a group of variants on every requested (engine, opt) combination,
/// print them, and record them in the JSON report.  The printed `speedup`
/// column is the figure's headline quantity: this variant's bytecode
/// wall-clock at `Default` relative to the group's first (baseline)
/// variant.  Ratios of `None`-vs-`Default` bytecode timings are collected
/// into `opt_ratios` for the report-level median.
#[allow(clippy::too_many_arguments)] // one accumulator per headline comparison
fn table(
    figure: &str,
    group: &str,
    variants: Vec<Variant>,
    reps: usize,
    report: &mut Report,
    opt_ratios: &mut Vec<f64>,
    typed_ratios: &mut Vec<f64>,
    simd_ratios: &mut Vec<f64>,
    parallel_ratios: &mut Vec<f64>,
) {
    let combos = combos();
    let scaling = scaling_threads();
    let mut records = Vec::new();
    for v in &variants {
        // Compile-latency guard: re-deriving the kernel at the default
        // level runs the full optimiser (including the typing stage); it
        // must stay fast.
        let start = Instant::now();
        let mut rederived = v.kernel.reoptimized_simd(OptLevel::Default, true, true);
        let compile_seconds = start.elapsed().as_secs_f64();
        assert!(
            compile_seconds < COMPILE_BUDGET_SECONDS,
            "optimising `{}` took {compile_seconds:.3}s (budget {COMPILE_BUDGET_SECONDS}s)",
            v.label
        );
        let opt = OptReport { compile_seconds, stats: rederived.opt_stats() };

        // With `--validate`, re-derive the same kernel once more under
        // full translation validation and record the per-pass wall-clock
        // split.  The whole compile *including* validation must stay
        // within the same latency budget.
        let validation = if flag("--validate") {
            let start = Instant::now();
            let validated = rederived
                .revalidated(ValidationLevel::Full)
                .expect("validated re-compilation of a working kernel succeeds");
            let validate_seconds = start.elapsed().as_secs_f64();
            assert!(
                validate_seconds < COMPILE_BUDGET_SECONDS,
                "compiling `{}` with full validation took {validate_seconds:.3}s \
                 (budget {COMPILE_BUDGET_SECONDS}s)",
                v.label
            );
            Some(ValidationReport {
                level: validated.validation().label().to_string(),
                passes: validated.pass_reports().to_vec(),
            })
        } else {
            None
        };

        // One untimed profiled run of the typed kernel: the fraction of
        // executed instructions that are tag-free, and (in debug builds)
        // the per-opcode execution histogram.
        let counts = rederived.profile().expect("profiled run succeeds").1;
        let code = rederived.bytecode().code();
        let executed: u64 = counts.iter().sum();
        let typed_executed: u64 =
            counts.iter().zip(code).filter(|(_, i)| i.is_tag_free()).map(|(c, _)| *c).sum();
        let typed_instr_fraction =
            if executed > 0 { Some(typed_executed as f64 / executed as f64) } else { None };
        let opcode_counts = if cfg!(debug_assertions) {
            let mut by_op: std::collections::BTreeMap<&'static str, u64> =
                std::collections::BTreeMap::new();
            for (c, i) in counts.iter().zip(code) {
                *by_op.entry(i.opcode()).or_default() += c;
            }
            let mut hist: Vec<(String, u64)> =
                by_op.into_iter().map(|(k, c)| (k.to_string(), c)).collect();
            hist.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            Some(hist)
        } else {
            None
        };

        // How much of the innermost typed counted-loop bodies the
        // vectorize stage fused into kernel ops (None when the kernel has
        // no such loops to examine).
        let (vectorized, vectorizable) = rederived.instrs_vectorized();
        let vectorized_fraction =
            if vectorizable > 0 { Some(vectorized as f64 / vectorizable as f64) } else { None };

        let mut engines = Vec::new();
        for &(engine, level, typed, simd) in &combos {
            let mut kernel = if level == v.kernel.opt_level()
                && typed == v.kernel.typed_dispatch()
                && simd == v.kernel.simd()
            {
                v.kernel.clone()
            } else {
                v.kernel.reoptimized_simd(level, typed, simd)
            };
            let (secs, stats) = time_kernel_with(&mut kernel, reps, engine);
            engines.push(EngineReport {
                engine,
                opt_level: level,
                // Record the *effective* dispatch mode: the typing stage
                // is gated off at OptLevel::None regardless of the flag,
                // and the vectorize stage additionally requires typed
                // bytecode.
                typed: typed && level != OptLevel::None,
                simd: simd && typed && level != OptLevel::None,
                threads: 1,
                median_seconds: secs,
                instrs: kernel.bytecode().code().len(),
                stats,
            });
        }

        // The parallel scaling leg: the same kernel on the bytecode
        // engine at `Default` (typed + simd), re-run at each requested
        // worker count.  Kernels the shard analysis left serial skip the
        // leg — thread counts above 1 are a no-op there.
        let sharded = rederived.sharded();
        if sharded && !scaling.is_empty() {
            // Parity gate before any timing: the sharded run must be
            // bit-identical to serial — dense output bits, assembled
            // sparse levels, and summed work counters.
            let serial = outcome_fingerprint(&mut rederived.clone());
            for &t in &scaling {
                let mut kernel = rederived.clone().with_threads(t);
                let parallel = outcome_fingerprint(&mut kernel);
                assert_eq!(
                    serial, parallel,
                    "sharded run at {t} threads diverges from serial for `{}` in {figure} ({group})",
                    v.label
                );
                let (secs, stats) = time_kernel_with(&mut kernel, reps, Engine::Bytecode);
                engines.push(EngineReport {
                    engine: Engine::Bytecode,
                    opt_level: OptLevel::Default,
                    typed: true,
                    simd: true,
                    threads: t,
                    median_seconds: secs,
                    instrs: kernel.bytecode().code().len(),
                    stats,
                });
            }
        }
        // Cross-engine and cross-dispatch parity at each measured level:
        // neither the engine nor the typing stage may change a counter.
        for a in &engines {
            for b in &engines {
                if a.opt_level == b.opt_level {
                    assert_eq!(
                        a.stats, b.stats,
                        "work counters diverge between measurements for `{}` in {figure} ({group})",
                        v.label
                    );
                }
            }
        }
        records.push(VariantReport {
            label: v.label.clone(),
            opt: Some(opt),
            validation,
            typed_instr_fraction,
            simd_speedup: None,
            vectorized_fraction,
            sharded,
            parallel_speedup: None,
            opcode_counts,
            engines,
        });
    }

    let find = |r: &VariantReport, engine: Engine, level: OptLevel, typed: bool, simd: bool| {
        r.engines
            .iter()
            .find(|e| {
                e.engine == engine
                    && e.opt_level == level
                    && e.typed == typed
                    && e.simd == simd
                    && e.threads == 1
            })
            .map(|e| e.median_seconds)
    };
    // The effective dispatch/simd mode of the measured bytecode@Default
    // leg (false under `--typed off` / `--simd off`): the optimiser
    // comparison and the headline speedup column follow whichever mode
    // was actually measured.
    let primary =
        combos.iter().find(|&&(e, l, _, _)| e == Engine::Bytecode && l == OptLevel::Default);
    let primary_typed = primary.is_none_or(|&(_, _, t, _)| t);
    let primary_simd = primary.is_none_or(|&(_, _, t, s)| t && s);
    let baseline = records
        .first()
        .and_then(|r| find(r, Engine::Bytecode, OptLevel::Default, primary_typed, primary_simd))
        .or_else(|| records.first().map(|r| r.engines[0].median_seconds));
    for r in &mut records {
        // OptLevel::None rows always record effective typed=false,
        // simd=false.
        let none = find(r, Engine::Bytecode, OptLevel::None, false, false);
        let default = find(r, Engine::Bytecode, OptLevel::Default, primary_typed, primary_simd);
        let typed_on = find(r, Engine::Bytecode, OptLevel::Default, true, primary_simd);
        let default_untyped = find(r, Engine::Bytecode, OptLevel::Default, false, false);
        let simd_on = find(r, Engine::Bytecode, OptLevel::Default, true, true);
        let simd_off = find(r, Engine::Bytecode, OptLevel::Default, true, false);
        if let (Some(n), Some(d)) = (none, default) {
            if d > 0.0 {
                opt_ratios.push(n / d);
            }
        }
        if let (Some(g), Some(d)) = (default_untyped, typed_on) {
            if d > 0.0 {
                typed_ratios.push(g / d);
            }
        }
        if let (Some(off), Some(on)) = (simd_off, simd_on) {
            if on > 0.0 {
                r.simd_speedup = Some(off / on);
                simd_ratios.push(off / on);
            }
        }
        // The parallel ratio: serial over the 4-thread leg (or, when
        // `--threads N` pinned a different count, that leg).
        let top = r
            .engines
            .iter()
            .filter(|e| e.threads > 1)
            .min_by_key(|e| if e.threads == 4 { 0 } else { usize::MAX - e.threads })
            .map(|e| (e.threads, e.median_seconds));
        if let (Some(serial), Some((_, par))) = (simd_on.or(default), top) {
            if par > 0.0 {
                r.parallel_speedup = Some(serial / par);
                parallel_ratios.push(serial / par);
            }
        }
        for e in &r.engines {
            // The headline column: baseline-variant bytecode@Default over
            // this measurement (shown on matching rows only).
            let speedup = match baseline {
                Some(base)
                    if e.engine == Engine::Bytecode
                        && e.opt_level == OptLevel::Default
                        && e.typed == primary_typed
                        && e.simd == primary_simd
                        && e.threads == 1
                        && e.median_seconds > 0.0 =>
                {
                    format!("{:>11.2}x", base / e.median_seconds)
                }
                _ => format!("{:>12}", "-"),
            };
            println!(
                "{:<28} {:>9} {:>10} {:>5} {:>4} {:>3} {:>11.3} {:>12} {}",
                r.label,
                e.engine.label(),
                e.opt_level.label(),
                if e.typed { "on" } else { "off" },
                if e.simd { "on" } else { "off" },
                e.threads,
                e.median_seconds * 1e3,
                e.stats.total_work(),
                speedup
            );
        }
    }
    report.figures.push(FigureGroup {
        figure: figure.to_string(),
        group: group.to_string(),
        variants: records,
    });
}

fn median(ratios: &mut [f64]) -> Option<f64> {
    if ratios.is_empty() {
        return None;
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    Some(ratios[ratios.len() / 2])
}

fn main() {
    let reps = runs();
    // `--tiny` shrinks every figure to smoke-test sizes (used by CI to
    // exercise the whole path, including the JSON emission, in seconds).
    let tiny = flag("--tiny");
    let json_path = arg_after("--json").unwrap_or_else(|| "BENCH_figures.json".to_string());
    let mut report = Report::new();
    let mut opt_ratios: Vec<f64> = Vec::new();
    let mut typed_ratios: Vec<f64> = Vec::new();
    let mut simd_ratios: Vec<f64> = Vec::new();
    let mut parallel_ratios: Vec<f64> = Vec::new();

    if wants("1") {
        println!("\n#### Figure 1 — motivating dot product: sparse list x sparse band");
        let (n, nnz, widths): (usize, usize, &[usize]) =
            if tiny { (200, 20, &[8]) } else { (20_000, 400, &[50, 400, 3_000]) };
        for (width, variants) in fig01_variants(n, nnz, widths) {
            header(&format!("band width {width}"));
            table(
                "fig01",
                &format!("band width {width}"),
                variants,
                reps,
                &mut report,
                &mut opt_ratios,
                &mut typed_ratios,
                &mut simd_ratios,
                &mut parallel_ratios,
            );
        }
    }

    if wants("7a") || wants("7") {
        println!("\n#### Figure 7a — SpMSpV, x with 10% nonzeros (speedup vs two-finger)");
        let n = if tiny { 32 } else { 128 };
        let seeds: &[u64] = if tiny { &[1] } else { &[1, 2, 3] };
        for &seed in seeds {
            let xv = fig07_vector(n, Some(0.10), None, 70 + seed);
            header(&format!("synthetic HB-like matrix #{seed}"));
            table(
                "fig07a",
                &format!("matrix #{seed}"),
                fig07_variants(n, &xv, seed),
                reps,
                &mut report,
                &mut opt_ratios,
                &mut typed_ratios,
                &mut simd_ratios,
                &mut parallel_ratios,
            );
        }
    }

    if wants("7b") || wants("7") {
        println!("\n#### Figure 7b — SpMSpV, x with 10 nonzeros (speedup vs two-finger)");
        let n = if tiny { 32 } else { 128 };
        let seeds: &[u64] = if tiny { &[1] } else { &[1, 2, 3] };
        for &seed in seeds {
            let xv = fig07_vector(n, None, Some(10), 80 + seed);
            header(&format!("synthetic HB-like matrix #{seed}"));
            table(
                "fig07b",
                &format!("matrix #{seed}"),
                fig07_variants(n, &xv, seed),
                reps,
                &mut report,
                &mut opt_ratios,
                &mut typed_ratios,
                &mut simd_ratios,
                &mut parallel_ratios,
            );
        }
    }

    if wants("8") {
        println!("\n#### Figure 8 — triangle counting on power-law graphs (speedup vs two-finger)");
        let graphs: &[(usize, usize, u64)] =
            if tiny { &[(24, 2, 3)] } else { &[(64, 3, 11), (96, 4, 12), (128, 3, 13)] };
        for &(n, epn, seed) in graphs {
            header(&format!("graph: {n} vertices, ~{epn} edges/vertex"));
            table(
                "fig08",
                &format!("{n} vertices, ~{epn} edges/vertex"),
                fig08_variants(n, epn, seed),
                reps,
                &mut report,
                &mut opt_ratios,
                &mut typed_ratios,
                &mut simd_ratios,
                &mut parallel_ratios,
            );
        }
    }

    if wants("9") {
        println!("\n#### Figure 9 — dense vs sparse convolution as density increases");
        let (size, ksize) = if tiny { (12, 3) } else { (48, 5) };
        let densities: &[f64] = if tiny { &[0.1] } else { &[0.002, 0.01, 0.05, 0.15, 0.40] };
        for (density, variants) in fig09_variants(size, ksize, densities) {
            header(&format!("grid {size}x{size}, filter {ksize}x{ksize}, density {density}"));
            table(
                "fig09",
                &format!("density {density}"),
                variants,
                reps,
                &mut report,
                &mut opt_ratios,
                &mut typed_ratios,
                &mut simd_ratios,
                &mut parallel_ratios,
            );
        }
    }

    if wants("10") {
        println!("\n#### Figure 10 — alpha blending (speedup vs dense)");
        let size = if tiny { 16 } else { 64 };
        header(&format!("Omniglot-like stroke images ({size}x{size})"));
        table(
            "fig10",
            "omniglot-like strokes",
            fig10_variants(size, false, 5),
            reps,
            &mut report,
            &mut opt_ratios,
            &mut typed_ratios,
            &mut simd_ratios,
            &mut parallel_ratios,
        );
        header(&format!("Humansketches-like images ({size}x{size})"));
        table(
            "fig10",
            "humansketches-like",
            fig10_variants(size, true, 6),
            reps,
            &mut report,
            &mut opt_ratios,
            &mut typed_ratios,
            &mut simd_ratios,
            &mut parallel_ratios,
        );
    }

    if wants("11") {
        println!("\n#### Figure 11 — all-pairs image similarity (speedup vs dense)");
        let (count, img) = if tiny { (3, 8) } else { (16, 20) };
        let datasets: &[&str] = if tiny { &["mnist"] } else { &["mnist", "emnist", "omniglot"] };
        for dataset in datasets {
            header(&format!("{dataset}-like images ({count} images, {img}x{img})"));
            table(
                "fig11",
                dataset,
                fig11_variants(count, img, dataset),
                reps,
                &mut report,
                &mut opt_ratios,
                &mut typed_ratios,
                &mut simd_ratios,
                &mut parallel_ratios,
            );
        }
    }

    if wants("S") {
        println!("\n#### Figure S — sparse output assembly (dense vs sparse-list result)");
        let (n, density) = if tiny { (512, 0.02) } else { (20_000, 0.001) };
        for g in finch_bench::figs_output_groups(n, density, 71) {
            // Smoke-check assembly correctness before timing: stored-entry
            // count equals the oracle's nnz, the materialisation equals the
            // dense run, and the sparse store counter is strictly lower.
            g.assert_assembly();
            header(&format!("{} — {} stored entries", g.group, g.oracle_nnz));
            table(
                "figS",
                &g.group,
                g.variants,
                reps,
                &mut report,
                &mut opt_ratios,
                &mut typed_ratios,
                &mut simd_ratios,
                &mut parallel_ratios,
            );
        }
    }

    if let Some(med) = median(&mut opt_ratios) {
        println!(
            "\noptimizer speedup (bytecode, OptLevel::None / OptLevel::Default): \
             median {med:.2}x over {} variants",
            opt_ratios.len()
        );
        report.opt_speedup = Some(OptSpeedup {
            engine: Engine::Bytecode,
            baseline: OptLevel::None,
            optimized: OptLevel::Default,
            median: med,
            samples: opt_ratios.len(),
        });
    }

    if let Some(med) = median(&mut typed_ratios) {
        println!(
            "typed-dispatch speedup (bytecode at OptLevel::Default, generic / typed): \
             median {med:.2}x over {} variants",
            typed_ratios.len()
        );
        report.typed_speedup = Some(TypedSpeedup { median: med, samples: typed_ratios.len() });
    }

    if let Some(med) = median(&mut simd_ratios) {
        println!(
            "simd kernel-op speedup (bytecode at OptLevel::Default, typed, simd off / on): \
             median {med:.2}x over {} variants",
            simd_ratios.len()
        );
        report.simd_speedup = Some(SimdSpeedup { median: med, samples: simd_ratios.len() });
    }

    if let Some(med) = median(&mut parallel_ratios) {
        let threads = scaling_threads()
            .iter()
            .copied()
            .find(|&t| t == 4)
            .or_else(|| scaling_threads().into_iter().max());
        if let Some(threads) = threads {
            println!(
                "parallel sharded speedup (bytecode at OptLevel::Default, typed+simd, \
                 1 thread / {threads} threads): median {med:.2}x over {} shardable variants",
                parallel_ratios.len()
            );
            report.parallel_speedup =
                Some(ParallelSpeedup { threads, median: med, samples: parallel_ratios.len() });
        }
    }

    if let Err(e) = report.write(&json_path) {
        eprintln!("warning: could not write {json_path}: {e}");
    } else {
        println!("\nwrote machine-readable report to {json_path}");
    }
}
