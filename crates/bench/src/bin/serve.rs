//! The kernel-service bench: replay a Zipf-skewed trace of kernel requests
//! against a long-lived [`KernelService`] from concurrent clients, and emit
//! `BENCH_serve.json` with throughput (QPS), latency quantiles (p50/p99),
//! cache hit rate, and the service's resilience counters.
//!
//! ```bash
//! cargo run --release -p finch-bench --bin serve
//! cargo run --release -p finch-bench --bin serve -- --tiny
//! cargo run --release -p finch-bench --bin serve -- --tiny --faults 250 --verify
//! ```
//!
//! With `--faults N`, a seeded [`FaultPlan`] injects panics, budget
//! exhaustion, poisoned entries, and deadline expiry into N‰ of requests;
//! with `--verify`, every successful response — including degraded ones —
//! is checked bit-for-bit against an independently computed tree-walk
//! reference, and the process exits nonzero on any divergence.  Together
//! they are the acceptance check that every injected fault ends in either a
//! bit-identical degraded result or a typed error.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use finch::{FaultPlan, KernelService, ServiceConfig, ServiceError, Tier};
use finch_bench::report::ServeReport;
use finch_bench::trace::{self, TraceConfig};

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_after(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|k| args.get(k + 1).cloned())
}

fn num<T: std::str::FromStr>(name: &str, default: T) -> T {
    arg_after(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct ClientTally {
    latencies_ns: Vec<u64>,
    ok: u64,
    degraded: u64,
    typed_errors: u64,
    verified: u64,
    divergences: u64,
}

fn main() {
    let tiny = flag("--tiny");
    let requests: usize = num("--requests", if tiny { 240 } else { 3000 });
    let clients: usize = num("--clients", if tiny { 2 } else { 4 });
    let kernels: usize = num("--kernels", if tiny { 6 } else { 12 });
    let instances: usize = num("--instances", 4);
    let cache: usize = num("--cache", if tiny { 4 } else { 8 });
    let deadline_ms: u64 = num("--deadline-ms", 200);
    let threads: usize = num("--threads", 1);
    let faults: u32 = num("--faults", 0);
    let seed: u64 = num("--seed", 0x5E21);
    let skew: f64 = num("--zipf", 1.1);
    let verify = flag("--verify");
    let json_path = arg_after("--json").unwrap_or_else(|| "BENCH_serve.json".to_string());

    let tcfg =
        TraceConfig { kernels, instances, requests, skew, seed, scale: if tiny { 2 } else { 4 } };
    let schedule = trace::generate(&tcfg);

    let svc = KernelService::new(ServiceConfig {
        capacity: cache,
        deadline: if deadline_ms == 0 { None } else { Some(Duration::from_millis(deadline_ms)) },
        threads,
        ..ServiceConfig::default()
    });
    if faults > 0 {
        svc.install_faults(FaultPlan::seeded(seed, requests as u64, faults));
        // Injected panics are caught by the service; keep the default hook's
        // backtrace spam out of the bench output (real panics still print).
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if !msg.starts_with("injected fault") {
                default_hook(info);
            }
        }));
    }

    // Independently computed references for --verify: one per distinct
    // (kernel, instance), via the tree-walk oracle.
    let references: HashMap<(usize, usize), Vec<u64>> = if verify {
        let mut refs = HashMap::new();
        for r in &schedule.requests {
            refs.entry((r.kernel, r.instance)).or_insert_with(|| {
                trace::reference_values(&tcfg, r.kernel, r.instance)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect()
            });
        }
        refs
    } else {
        HashMap::new()
    };

    println!(
        "serve: {requests} requests, {clients} clients, {kernels} kernels x {instances} \
         instances, cache {cache}, deadline {deadline_ms}ms, faults {faults}/1000{}",
        if verify { ", verifying" } else { "" }
    );

    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients.max(1));
        for c in 0..clients.max(1) {
            let svc = &svc;
            let schedule = &schedule;
            let tcfg = &tcfg;
            let references = &references;
            handles.push(scope.spawn(move || {
                let mut tally = ClientTally {
                    latencies_ns: Vec::new(),
                    ok: 0,
                    degraded: 0,
                    typed_errors: 0,
                    verified: 0,
                    divergences: 0,
                };
                // Round-robin split of the schedule across clients.
                for r in schedule.requests.iter().skip(c).step_by(clients.max(1)) {
                    let req = trace::build_request(tcfg, r.kernel, r.instance);
                    let t0 = Instant::now();
                    let out = svc.submit(&req);
                    tally.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                    match out {
                        Ok(resp) => {
                            tally.ok += 1;
                            if resp.tier != Tier::Fast {
                                tally.degraded += 1;
                            }
                            if verify {
                                let got: Vec<u64> = trace::response_values(&resp)
                                    .iter()
                                    .map(|x| x.to_bits())
                                    .collect();
                                let want = &references[&(r.kernel, r.instance)];
                                if got == *want {
                                    tally.verified += 1;
                                } else {
                                    tally.divergences += 1;
                                    eprintln!(
                                        "DIVERGENCE kernel {} instance {} tier {}: \
                                         {} values vs {} reference",
                                        r.kernel,
                                        r.instance,
                                        resp.tier.label(),
                                        got.len(),
                                        want.len()
                                    );
                                }
                            }
                        }
                        Err(ServiceError::Compile(e)) => {
                            // Trace templates always compile; a compile error
                            // is a bench bug, not a service fault.
                            panic!("unexpected compile error in trace: {e}");
                        }
                        Err(_) => tally.typed_errors += 1,
                    }
                }
                tally
            }));
        }
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    let (mut ok, mut degraded, mut typed_errors, mut verified, mut divergences) = (0, 0, 0, 0, 0);
    for t in tallies {
        latencies.extend(t.latencies_ns);
        ok += t.ok;
        degraded += t.degraded;
        typed_errors += t.typed_errors;
        verified += t.verified;
        divergences += t.divergences;
    }
    latencies.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let k = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[k] as f64 / 1000.0
    };
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1000.0
    };
    let stats = svc.stats();
    let hit_rate = if stats.hits + stats.misses == 0 {
        0.0
    } else {
        stats.hits as f64 / (stats.hits + stats.misses) as f64
    };

    let report = ServeReport {
        requests: requests as u64,
        clients: clients as u64,
        kernels: kernels as u64,
        instances: instances as u64,
        cache_capacity: cache as u64,
        deadline_ms,
        faults_permille: u64::from(faults),
        seed,
        zipf_skew: skew,
        elapsed_seconds: elapsed,
        qps: if elapsed > 0.0 { latencies.len() as f64 / elapsed } else { 0.0 },
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
        mean_us,
        hit_rate,
        ok,
        degraded,
        typed_errors,
        verified,
        divergences,
        stats,
    };

    println!(
        "  {:.0} req/s, p50 {:.1}us, p99 {:.1}us, hit rate {:.1}%",
        report.qps,
        report.p50_us,
        report.p99_us,
        100.0 * report.hit_rate
    );
    println!(
        "  ok {ok} (degraded {degraded}), typed errors {typed_errors}, served by tier {:?}, \
         faults by tier {:?}",
        stats.served_by_tier, stats.faults_by_tier
    );
    if faults > 0 {
        println!(
            "  resilience: {} quarantined, {} recompiles, {} evictions, {} panics caught, \
             {} fault rules unfired",
            stats.quarantined,
            stats.recompiles,
            stats.evictions,
            stats.panics,
            svc.pending_faults()
        );
    }
    if verify {
        println!("  verified {verified} responses bit-identical, {divergences} divergences");
    }

    match report.write(&json_path) {
        Ok(()) => println!("  wrote {json_path}"),
        Err(e) => {
            eprintln!("error: could not write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    if divergences > 0 {
        eprintln!("FAIL: {divergences} degraded/served responses diverged from the reference");
        std::process::exit(2);
    }
}
