//! The kernel-service bench: replay a Zipf-skewed trace of kernel requests
//! against a long-lived [`KernelService`] from concurrent clients, and emit
//! `BENCH_serve.json` with throughput (QPS), latency quantiles (p50/p99),
//! queue-wait quantiles, cache hit rate, and the service's resilience
//! counters.
//!
//! ```bash
//! cargo run --release -p finch-bench --bin serve
//! cargo run --release -p finch-bench --bin serve -- --tiny
//! cargo run --release -p finch-bench --bin serve -- --tiny --faults 250 --verify
//! cargo run --release -p finch-bench --bin serve -- --soak --tiny --faults 250 --verify
//! ```
//!
//! With `--faults N`, a seeded [`FaultPlan`] injects panics, budget
//! exhaustion, poisoned entries, and deadline expiry into N‰ of requests;
//! with `--verify`, every successful response — including degraded ones —
//! is checked bit-for-bit against an independently computed tree-walk
//! reference, and the process exits nonzero on any divergence.
//!
//! `--soak` is the chaos harness: it clamps `--max-in-flight` far below the
//! client count (sustained overload, so requests queue), arms the
//! per-structure circuit breakers, tightens the deadline, and performs two
//! mid-run [`KernelService::drain`]/resume cycles while the clients keep
//! submitting.  The process exits nonzero unless **every** request is
//! accounted for — served bit-identically (under `--verify`) or resolved
//! with a typed error — and both drains settle.  `--batch N` submits in
//! N-request batches through [`KernelService::submit_batch`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use finch::{FaultPlan, KernelService, ServiceConfig, ServiceError, ServiceState, Tier};
use finch_bench::report::ServeReport;
use finch_bench::trace::{self, TraceConfig, TraceRequest};

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_after(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|k| args.get(k + 1).cloned())
}

fn num<T: std::str::FromStr>(name: &str, default: T) -> T {
    arg_after(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct ClientTally {
    latencies_ns: Vec<u64>,
    queue_waits_ns: Vec<u64>,
    ok: u64,
    degraded: u64,
    typed_errors: u64,
    verified: u64,
    divergences: u64,
}

fn main() {
    let tiny = flag("--tiny");
    let soak = flag("--soak");
    let requests: usize = num("--requests", if tiny { 240 } else { 3000 });
    let clients: usize = num(
        "--clients",
        if soak {
            8
        } else if tiny {
            2
        } else {
            4
        },
    );
    let kernels: usize = num("--kernels", if tiny { 6 } else { 12 });
    let instances: usize = num("--instances", 4);
    let cache: usize = num("--cache", if tiny { 4 } else { 8 });
    let deadline_ms: u64 = num("--deadline-ms", if soak { 40 } else { 200 });
    let threads: usize = num("--threads", 1);
    let faults: u32 = num("--faults", 0);
    let seed: u64 = num("--seed", 0x5E21);
    let skew: f64 = num("--zipf", 1.1);
    // Soak throttles admission far below the client count so the queue is
    // genuinely exercised, and arms the breakers.
    let max_in_flight: usize = num("--max-in-flight", if soak { 2 } else { 32 });
    let queue_depth: usize = num("--queue-depth", if soak { 16 } else { 32 });
    let breaker: u32 = num("--breaker", if soak { 4 } else { 0 });
    let breaker_cooldown_ms: u64 = num("--breaker-cooldown-ms", 10);
    let batch: usize = num("--batch", 1).max(1);
    let verify = flag("--verify");
    let json_path = arg_after("--json").unwrap_or_else(|| "BENCH_serve.json".to_string());

    let tcfg =
        TraceConfig { kernels, instances, requests, skew, seed, scale: if tiny { 2 } else { 4 } };
    let schedule = trace::generate(&tcfg);

    let svc = KernelService::new(ServiceConfig {
        capacity: cache,
        deadline: if deadline_ms == 0 { None } else { Some(Duration::from_millis(deadline_ms)) },
        threads,
        max_in_flight,
        queue_depth,
        breaker_threshold: breaker,
        breaker_cooldown: Duration::from_millis(breaker_cooldown_ms),
        ..ServiceConfig::default()
    });
    if faults > 0 {
        svc.install_faults(FaultPlan::seeded(seed, requests as u64, faults));
        // Injected panics are caught by the service; keep the default hook's
        // backtrace spam out of the bench output (real panics still print).
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if !msg.starts_with("injected fault") {
                default_hook(info);
            }
        }));
    }

    // Independently computed references for --verify: one per distinct
    // (kernel, instance), via the tree-walk oracle.
    let references: HashMap<(usize, usize), Vec<u64>> = if verify {
        let mut refs = HashMap::new();
        for r in &schedule.requests {
            refs.entry((r.kernel, r.instance)).or_insert_with(|| {
                trace::reference_values(&tcfg, r.kernel, r.instance)
                    .iter()
                    .map(|x| x.to_bits())
                    .collect()
            });
        }
        refs
    } else {
        HashMap::new()
    };

    println!(
        "serve{}: {requests} requests, {clients} clients, {kernels} kernels x {instances} \
         instances, cache {cache}, deadline {deadline_ms}ms, faults {faults}/1000, \
         in-flight {max_in_flight}, queue {queue_depth}, breaker {breaker}{}{}",
        if soak { " (soak)" } else { "" },
        if batch > 1 { ", batched" } else { "" },
        if verify { ", verifying" } else { "" }
    );

    let completed = AtomicU64::new(0);
    let started = Instant::now();
    let mut max_queue_depth = 0usize;
    let mut drained = 0u64;
    let mut drain_latency = Duration::ZERO;
    let mut drain_cancelled = false;
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients.max(1));
        for c in 0..clients.max(1) {
            let svc = &svc;
            let schedule = &schedule;
            let tcfg = &tcfg;
            let references = &references;
            let completed = &completed;
            handles.push(scope.spawn(move || {
                let mut tally = ClientTally {
                    latencies_ns: Vec::new(),
                    queue_waits_ns: Vec::new(),
                    ok: 0,
                    degraded: 0,
                    typed_errors: 0,
                    verified: 0,
                    divergences: 0,
                };
                // Round-robin split of the schedule across clients.
                let mine: Vec<TraceRequest> =
                    schedule.requests.iter().skip(c).step_by(clients.max(1)).copied().collect();
                for chunk in mine.chunks(batch) {
                    let reqs = trace::build_requests(tcfg, chunk);
                    let t0 = Instant::now();
                    // A draining service rejects with ShuttingDown; clients
                    // back off and retry (bounded) so the post-resume service
                    // sees real traffic again instead of the schedule burning
                    // off as instant rejections.
                    let mut attempts = 0u32;
                    let outs = loop {
                        let outs = if batch > 1 {
                            svc.submit_batch(&reqs)
                        } else {
                            vec![svc.submit(&reqs[0])]
                        };
                        let all_shutdown = outs
                            .iter()
                            .all(|o| matches!(o, Err(ServiceError::ShuttingDown { .. })));
                        if all_shutdown && attempts < 1000 {
                            attempts += 1;
                            std::thread::sleep(Duration::from_micros(500));
                            continue;
                        }
                        break outs;
                    };
                    let per_ns = t0.elapsed().as_nanos() as u64 / outs.len().max(1) as u64;
                    for (r, out) in chunk.iter().zip(outs) {
                        tally.latencies_ns.push(per_ns);
                        match out {
                            Ok(resp) => {
                                tally.ok += 1;
                                tally.queue_waits_ns.push(resp.queue_wait.as_nanos() as u64);
                                if resp.tier != Tier::Fast {
                                    tally.degraded += 1;
                                }
                                if verify {
                                    let got: Vec<u64> = trace::response_values(&resp)
                                        .iter()
                                        .map(|x| x.to_bits())
                                        .collect();
                                    let want = &references[&(r.kernel, r.instance)];
                                    if got == *want {
                                        tally.verified += 1;
                                    } else {
                                        tally.divergences += 1;
                                        eprintln!(
                                            "DIVERGENCE kernel {} instance {} tier {}: \
                                             {} values vs {} reference",
                                            r.kernel,
                                            r.instance,
                                            resp.tier.label(),
                                            got.len(),
                                            want.len()
                                        );
                                    }
                                }
                            }
                            Err(ServiceError::Compile(e)) => {
                                // Trace templates always compile; a compile
                                // error is a bench bug, not a service fault.
                                panic!("unexpected compile error in trace: {e}");
                            }
                            Err(_) => tally.typed_errors += 1,
                        }
                        completed.fetch_add(1, Ordering::SeqCst);
                    }
                }
                tally
            }));
        }

        // The soak coordinator runs on the driver thread while the clients
        // hammer the service: it samples the queue depth and performs two
        // mid-run drain/resume cycles at 1/3 and 2/3 of the request count.
        if soak {
            let total = requests as u64;
            let mut next_drain = (total / 3).max(1);
            loop {
                let done = completed.load(Ordering::SeqCst);
                max_queue_depth = max_queue_depth.max(svc.health().queued);
                if done >= total {
                    break;
                }
                if drained < 2 && done >= next_drain {
                    let report = svc.drain(Duration::from_millis(250));
                    drained += 1;
                    drain_latency = drain_latency.max(report.waited);
                    drain_cancelled |= report.cancelled;
                    if report.state != ServiceState::Stopped {
                        eprintln!("FAIL: drain #{drained} left the service {}", report.state);
                        std::process::exit(4);
                    }
                    svc.resume();
                    next_drain = (2 * total / 3).max(next_drain + 1);
                }
                std::thread::sleep(Duration::from_micros(500));
            }
        }
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    let mut queue_waits: Vec<u64> = Vec::new();
    let (mut ok, mut degraded, mut typed_errors, mut verified, mut divergences) = (0, 0, 0, 0, 0);
    for t in tallies {
        latencies.extend(t.latencies_ns);
        queue_waits.extend(t.queue_waits_ns);
        ok += t.ok;
        degraded += t.degraded;
        typed_errors += t.typed_errors;
        verified += t.verified;
        divergences += t.divergences;
    }
    latencies.sort_unstable();
    queue_waits.sort_unstable();
    let quantile = |xs: &[u64], q: f64| -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        let k = ((xs.len() - 1) as f64 * q).round() as usize;
        xs[k] as f64 / 1000.0
    };
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1000.0
    };
    let stats = svc.stats();
    let hit_rate = if stats.hits + stats.misses == 0 {
        0.0
    } else {
        stats.hits as f64 / (stats.hits + stats.misses) as f64
    };

    let report = ServeReport {
        requests: requests as u64,
        clients: clients as u64,
        kernels: kernels as u64,
        instances: instances as u64,
        cache_capacity: cache as u64,
        deadline_ms,
        faults_permille: u64::from(faults),
        soak,
        seed,
        zipf_skew: skew,
        elapsed_seconds: elapsed,
        qps: if elapsed > 0.0 { latencies.len() as f64 / elapsed } else { 0.0 },
        p50_us: quantile(&latencies, 0.50),
        p99_us: quantile(&latencies, 0.99),
        mean_us,
        queue_wait_p50_us: quantile(&queue_waits, 0.50),
        queue_wait_p99_us: quantile(&queue_waits, 0.99),
        max_queue_depth: max_queue_depth as u64,
        hit_rate,
        ok,
        degraded,
        typed_errors,
        verified,
        divergences,
        drained,
        drain_latency_ms: drain_latency.as_secs_f64() * 1e3,
        drain_cancelled,
        stats,
    };

    println!(
        "  {:.0} req/s, p50 {:.1}us, p99 {:.1}us, queue wait p50 {:.1}us p99 {:.1}us, \
         hit rate {:.1}%",
        report.qps,
        report.p50_us,
        report.p99_us,
        report.queue_wait_p50_us,
        report.queue_wait_p99_us,
        100.0 * report.hit_rate
    );
    println!(
        "  ok {ok} (degraded {degraded}), typed errors {typed_errors}, served by tier {:?}, \
         faults by tier {:?}",
        stats.served_by_tier, stats.faults_by_tier
    );
    println!(
        "  front-end: {} queued (max depth {max_queue_depth}), {} queue timeouts, {} shed, \
         breaker opens {}, short-circuits {}, batch groups {}",
        stats.queued,
        stats.queue_timeouts,
        stats.shed,
        stats.breaker_opens,
        stats.breaker_short_circuits,
        stats.batch_groups
    );
    if faults > 0 {
        println!(
            "  resilience: {} quarantined, {} recompiles, {} evictions, {} panics caught, \
             {} fault rules unfired",
            stats.quarantined,
            stats.recompiles,
            stats.evictions,
            stats.panics,
            svc.pending_faults()
        );
    }
    if soak {
        println!(
            "  soak: {drained} drain/resume cycles, slowest drain {:.1}ms{}",
            report.drain_latency_ms,
            if drain_cancelled { " (cancelled in-flight work)" } else { "" }
        );
    }
    if verify {
        println!("  verified {verified} responses bit-identical, {divergences} divergences");
    }

    match report.write(&json_path) {
        Ok(()) => println!("  wrote {json_path}"),
        Err(e) => {
            eprintln!("error: could not write {json_path}: {e}");
            std::process::exit(1);
        }
    }
    if divergences > 0 {
        eprintln!("FAIL: {divergences} degraded/served responses diverged from the reference");
        std::process::exit(2);
    }
    if ok + typed_errors != requests as u64 {
        eprintln!(
            "FAIL: {} of {requests} requests unaccounted for (ok {ok} + typed {typed_errors})",
            requests as u64 - ok - typed_errors
        );
        std::process::exit(3);
    }
}
