//! Differential kernel fuzzer: generate random CIN kernels, execute each
//! through every `(engine, opt level, typed dispatch, simd)` combination,
//! and minimize any divergence to a runnable reproducer.
//!
//! ```bash
//! cargo run --release -p finch-bench --bin fuzz-kernels -- --cases 500
//! cargo run --release -p finch-bench --bin fuzz-kernels -- --smoke --cases 200 --seed 7
//! cargo run --release -p finch-bench --bin fuzz-kernels -- --validate   # per-pass validation on
//! ```
//!
//! Every case asserts the repository's correctness contract: bit-identical
//! outputs across all eighteen combinations, engine-identical work
//! counters at each configuration, scalar-identical work counters
//! between the SIMD kernel-op tier and the typed scalar run at every opt
//! level, and — the thread axis — every bytecode configuration re-run
//! sharded at 2 and 4 worker threads reproducing the serial outputs
//! (dense bits and assembled sparse `pos`/`idx`/`val`) and work counters
//! exactly.  With `--validate`, kernels compile at
//! `ValidationLevel::Full`, so each optimisation pass is additionally
//! translation-validated on witness inputs during compilation.
//!
//! On a divergence the case is delta-debugged down to a 1-minimal
//! statement list, printed as a `#[test]` function, and written under
//! `--out` (default `fuzz-repros/`) for CI to upload as an artifact.  The
//! process exits nonzero when any divergence was found.

use finch::ValidationLevel;
use finch_bench::fuzz::{check_case, gen_case, minimize, render_repro};
use proptest::test_runner::TestRng;

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_after(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|k| args.get(k + 1).cloned())
}

fn main() {
    let cases: u64 = arg_after("--cases").and_then(|v| v.parse().ok()).unwrap_or(200);
    let seed: u64 = arg_after("--seed").and_then(|v| v.parse().ok()).unwrap_or(0xF1C4);
    let smoke = flag("--smoke");
    let validation = if flag("--validate") { ValidationLevel::Full } else { ValidationLevel::Off };
    let out_dir = arg_after("--out").unwrap_or_else(|| "fuzz-repros".to_string());

    println!(
        "fuzz-kernels: {cases} cases (seed {seed}, {} sizes, validation {validation})",
        if smoke { "smoke" } else { "full" }
    );

    let mut rng = TestRng::from_seed(seed);
    let mut divergences = 0u64;
    for case_no in 0..cases {
        let case = gen_case(&mut rng, smoke);
        if let Some(divergence) = check_case(&case, validation) {
            divergences += 1;
            eprintln!(
                "case {case_no}: DIVERGENCE [{}] {} — minimizing {} statement(s)",
                divergence.combo,
                divergence.detail,
                case.stmts.len()
            );
            let minimized = minimize(&case, &|c| check_case(c, validation).is_some());
            let verdict = check_case(&minimized, validation).unwrap_or_else(|| divergence.clone());
            let repro = render_repro(&minimized, &verdict);
            println!("{repro}");
            if let Err(e) = std::fs::create_dir_all(&out_dir).and_then(|()| {
                std::fs::write(
                    format!("{out_dir}/repro_seed{}_case{case_no}.rs", minimized.seed),
                    &repro,
                )
            }) {
                eprintln!("warning: could not write reproducer under {out_dir}: {e}");
            }
        } else if (case_no + 1) % 50 == 0 {
            println!("  {} / {cases} cases divergence-free", case_no + 1);
        }
    }

    println!(
        "fuzz-kernels: {cases} cases, {divergences} divergence(s){}",
        if divergences > 0 { " — reproducers written" } else { "" }
    );
    if divergences > 0 {
        std::process::exit(1);
    }
}
