//! Random-kernel differential fuzzing with a delta-debugging minimizer.
//!
//! [`gen_case`] draws a random CIN kernel — a handful of independent
//! accumulation statements over two shared input vectors in random formats
//! and protocols — and [`check_case`] executes it through **every**
//! `(engine, opt level, typed dispatch, simd)` combination, asserting
//! bit-identical outputs everywhere plus engine-identical
//! [`finch::ExecStats`] at each configuration.  Every bytecode
//! configuration is additionally re-run sharded at 2 and 4 worker threads
//! (the thread axis: 1/2/4); the parallel runs must reproduce the serial
//! outputs bit-for-bit — dense buffers *and* assembled sparse
//! `pos`/`idx`/`val` — with exactly the serial work counters.  Any
//! divergence is a miscompile in some stage of the
//! pipeline.  [`minimize`] then shrinks the offending case with greedy
//! delta debugging over its statement list, and [`render_repro`] prints the
//! minimized case as a runnable `#[test]` the bug can be replayed from.
//!
//! The `fuzz-kernels` binary drives this module from the command line (and
//! from CI's smoke job); the unit tests below drive it with an injected
//! bug to prove the minimizer converges.

use finch::{
    CompileError, Engine, Kernel, LevelSpec, OptLevel, RuntimeError, Tensor, ValidationLevel,
};
use finch_baseline::datagen;
use finch_cin::build::*;
use finch_cin::{CinStmt, IndexVar, Protocol};
use proptest::test_runner::TestRng;

/// The storage format of one fuzzed input vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecFormat {
    /// A plain dense vector.
    Dense,
    /// A `pos`/`idx`/`val` sparse list.
    SparseList,
    /// A contiguous band from the first to the last nonzero.
    Band,
}

impl VecFormat {
    /// Materialise `data` as a tensor named `name` in this format.
    pub fn build(self, name: &str, data: &[f64]) -> Tensor {
        match self {
            VecFormat::Dense => Tensor::dense_vector(name, data),
            VecFormat::SparseList => Tensor::sparse_list_vector(name, data),
            VecFormat::Band => Tensor::band_vector(name, data),
        }
    }

    /// Rust source for the reproducer rendering.
    fn src(self) -> &'static str {
        match self {
            VecFormat::Dense => "VecFormat::Dense",
            VecFormat::SparseList => "VecFormat::SparseList",
            VecFormat::Band => "VecFormat::Band",
        }
    }
}

/// One independent CIN statement of a fuzzed kernel.  Every variant
/// accumulates into its own output (named after its position in the case),
/// so statements can be deleted freely during minimization without
/// invalidating the rest of the kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StmtSpec {
    /// `C{k}[] += A[i] * B[i]` — a reduction to a scalar.
    Dot {
        /// Iteration protocol for `A`.
        pa: Protocol,
        /// Iteration protocol for `B`.
        pb: Protocol,
    },
    /// `y{k}[i] += A[i] * s` — a scaled copy into a dense output.
    Axpy {
        /// Iteration protocol for `A`.
        pa: Protocol,
        /// The scale factor, in quarters (`s = quarters / 4`), kept
        /// exactly representable.
        quarters: i16,
    },
    /// `y{k}[i] += A[i] * B[i]` — an elementwise multiply into a dense
    /// output.
    EwiseMul {
        /// Iteration protocol for `A`.
        pa: Protocol,
        /// Iteration protocol for `B`.
        pb: Protocol,
    },
    /// `S{k}[i] = A[i] where A[i] > t` — a sieve appending into a
    /// sparse-list output (`t = tenths / 10`).
    Threshold {
        /// The threshold, in tenths.
        tenths: u8,
    },
    /// `y{k}[i] += 0.75·A[i] + 0.25·B[i]` — a blend into a dense output.
    Blend,
}

impl StmtSpec {
    fn src(self) -> String {
        let p = |p: Protocol| match p {
            Protocol::Default => "Protocol::Default",
            Protocol::Walk => "Protocol::Walk",
            Protocol::Gallop => "Protocol::Gallop",
            Protocol::Locate => "Protocol::Locate",
        };
        match self {
            StmtSpec::Dot { pa, pb } => format!("StmtSpec::Dot {{ pa: {}, pb: {} }}", p(pa), p(pb)),
            StmtSpec::Axpy { pa, quarters } => {
                format!("StmtSpec::Axpy {{ pa: {}, quarters: {quarters} }}", p(pa))
            }
            StmtSpec::EwiseMul { pa, pb } => {
                format!("StmtSpec::EwiseMul {{ pa: {}, pb: {} }}", p(pa), p(pb))
            }
            StmtSpec::Threshold { tenths } => format!("StmtSpec::Threshold {{ tenths: {tenths} }}"),
            StmtSpec::Blend => "StmtSpec::Blend".to_string(),
        }
    }
}

/// One fuzzed kernel: the data seed, the shared input vectors' length and
/// formats, and the statement list the CIN program is assembled from.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Seed for the deterministic input data.
    pub seed: u64,
    /// Length of both input vectors.
    pub n: usize,
    /// Storage format of input `A`.
    pub a_format: VecFormat,
    /// Storage format of input `B`.
    pub b_format: VecFormat,
    /// The kernel's statements, each accumulating into its own output.
    pub stmts: Vec<StmtSpec>,
}

/// A detected miscompile: which configuration diverged and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The `(engine, opt level, typed, simd)` combination (or `compile`).
    pub combo: String,
    /// What diverged.
    pub detail: String,
}

fn protocol_index(p: Protocol, v: &IndexVar) -> finch_cin::IndexExpr {
    match p {
        Protocol::Gallop => v.gallop(),
        Protocol::Walk => v.walk(),
        Protocol::Locate => v.locate(),
        Protocol::Default => v.clone().into(),
    }
}

fn build_stmt(spec: StmtSpec, k: usize) -> CinStmt {
    let i = idx("i");
    match spec {
        StmtSpec::Dot { pa, pb } => forall(
            i.clone(),
            add_assign(
                scalar(format!("C{k}").as_str()),
                mul(access("A", [protocol_index(pa, &i)]), access("B", [protocol_index(pb, &i)])),
            ),
        ),
        StmtSpec::Axpy { pa, quarters } => forall(
            i.clone(),
            add_assign(
                access(format!("y{k}").as_str(), [i.clone()]),
                mul(access("A", [protocol_index(pa, &i)]), lit(quarters as f64 * 0.25)),
            ),
        ),
        StmtSpec::EwiseMul { pa, pb } => forall(
            i.clone(),
            add_assign(
                access(format!("y{k}").as_str(), [i.clone()]),
                mul(access("A", [protocol_index(pa, &i)]), access("B", [protocol_index(pb, &i)])),
            ),
        ),
        StmtSpec::Threshold { tenths } => forall(
            i.clone(),
            sieve(
                gt(access("A", [i.clone()]), lit(tenths as f64 * 0.1)),
                assign(access(format!("S{k}").as_str(), [i.clone()]), access("A", [i])),
            ),
        ),
        StmtSpec::Blend => forall(
            i.clone(),
            add_assign(
                access(format!("y{k}").as_str(), [i.clone()]),
                add(mul(lit(0.75), access("A", [i.clone()])), mul(lit(0.25), access("B", [i]))),
            ),
        ),
    }
}

/// Compile one fuzz case at the given validation level (typed dispatch and
/// opt level come from the kernel defaults; [`check_case`] re-derives every
/// other combination from the result).
///
/// # Errors
///
/// Propagates the [`CompileError`] — under validation, a
/// [`CompileError::ValidationFailed`] here is itself a caught miscompile.
pub fn compile_case(
    case: &FuzzCase,
    validation: ValidationLevel,
) -> Result<finch::CompiledKernel, CompileError> {
    let a_data = datagen::counted_sparse_vector(case.n, (case.n / 6).max(2), case.seed);
    let b_data =
        datagen::counted_sparse_vector(case.n, (case.n / 4).max(2), case.seed ^ 0x9E3779B9);
    let a = case.a_format.build("A", &a_data);
    let b = case.b_format.build("B", &b_data);
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_input(&b).set_validation(validation);
    for (k, spec) in case.stmts.iter().enumerate() {
        match spec {
            StmtSpec::Dot { .. } => {
                kernel.bind_output_scalar(format!("C{k}").as_str());
            }
            StmtSpec::Axpy { .. } | StmtSpec::EwiseMul { .. } | StmtSpec::Blend => {
                kernel.bind_output(&format!("y{k}"), &[case.n], 0.0);
            }
            StmtSpec::Threshold { .. } => {
                kernel.bind_output_format(
                    &format!("S{k}"),
                    &[LevelSpec::SparseList { size: case.n }],
                );
            }
        }
    }
    let program = multi(case.stmts.iter().enumerate().map(|(k, s)| build_stmt(*s, k)).collect());
    kernel.compile(&program)
}

/// Execute one case through every `(engine, opt level, typed, simd)`
/// combination and return the first divergence, or `None` when all
/// eighteen agree (simd without typed dispatch is skipped — the vectorize
/// stage only runs over typed bytecode, so that combination compiles to
/// the same program as plain generic dispatch).
///
/// The correctness contract checked here is the repository's core claim:
/// outputs are bit-identical across every combination, and at any given
/// `(opt level, typed, simd)` configuration the two engines report
/// identical work counters — the vectorize stage must also keep the
/// counters scalar-equivalent, so the simd axis shares one reference.
///
/// The thread axis: every bytecode configuration is re-run sharded at 2
/// and 4 worker threads and must match its own serial run exactly —
/// output bits, assembled sparse `pos`/`idx`/`val` (compared through the
/// finalized tensors), and summed work counters.  Kernels the shard
/// analysis left serial still run (thread counts above 1 are a no-op
/// there), so the axis also proves the serial fallback is clean.
///
/// The error-parity axis: when the case is big enough, every combination
/// is re-run under a step budget set strictly below the cheapest
/// configuration's statement count, and must fail with the identical
/// typed [`RuntimeError::StepBudgetExceeded`] — resource faults degrade
/// identically everywhere, never divergently.
pub fn check_case(case: &FuzzCase, validation: ValidationLevel) -> Option<Divergence> {
    let compiled = match compile_case(case, validation) {
        Ok(k) => k,
        Err(e) => return Some(Divergence { combo: "compile".into(), detail: e.to_string() }),
    };
    let mut reference: Option<Vec<(String, Vec<u64>)>> = None;
    let mut min_stmts = u64::MAX;
    for level in OptLevel::all() {
        // The typed scalar run's counters at this level: the vectorized
        // run must report the exact same machine-independent work.
        let mut scalar_stats: Option<finch::ExecStats> = None;
        for (typed, simd) in [(false, false), (true, false), (true, true)] {
            let mut k = compiled.reoptimized_simd(level, typed, simd);
            let mut engine_stats = Vec::new();
            for engine in [Engine::TreeWalk, Engine::Bytecode] {
                let combo = format!("{engine:?}/{level}/typed={typed}/simd={simd}");
                let stats = match k.run_with(engine) {
                    Ok(s) => s,
                    Err(e) => {
                        return Some(Divergence { combo, detail: format!("runtime fault: {e}") })
                    }
                };
                engine_stats.push((combo.clone(), stats));
                min_stmts = min_stmts.min(stats.stmts);
                let outputs: Vec<(String, Vec<u64>)> = k
                    .output_names()
                    .into_iter()
                    .map(|name| {
                        let out = k.output(&name).expect("output reads");
                        (name, out.iter().map(|v| v.to_bits()).collect())
                    })
                    .collect();
                match &reference {
                    None => reference = Some(outputs),
                    Some(r) => {
                        for ((name, want), (_, got)) in r.iter().zip(&outputs) {
                            if want != got {
                                return Some(Divergence {
                                    combo,
                                    detail: format!(
                                        "output `{name}` diverges from the reference run"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
            // The thread axis: `k` just ran serially on the bytecode
            // engine, so its buffers hold the serial outcome — capture it,
            // then re-run sharded at 2 and 4 workers and require an exact
            // match.
            let serial_fp = output_fingerprint(&k);
            let serial_stats = engine_stats[1].1;
            for threads in [2usize, 4] {
                let combo = format!("Bytecode/{level}/typed={typed}/simd={simd}/threads={threads}");
                let mut kp = k.clone().with_threads(threads);
                let stats = match kp.run_with(Engine::Bytecode) {
                    Ok(s) => s,
                    Err(e) => {
                        return Some(Divergence { combo, detail: format!("runtime fault: {e}") })
                    }
                };
                if stats != serial_stats {
                    return Some(Divergence {
                        combo,
                        detail: format!(
                            "sharded work counters diverge from serial: {stats:?} vs \
                             {serial_stats:?}"
                        ),
                    });
                }
                let fp = output_fingerprint(&kp);
                if fp != serial_fp {
                    let name = serial_fp
                        .iter()
                        .zip(&fp)
                        .find(|(a, b)| a != b)
                        .map(|(a, _)| a.0.as_str())
                        .unwrap_or("<outputs>");
                    return Some(Divergence {
                        combo,
                        detail: format!("sharded output `{name}` diverges from serial"),
                    });
                }
            }
            let (c0, s0) = &engine_stats[0];
            let (c1, s1) = &engine_stats[1];
            if s0 != s1 {
                return Some(Divergence {
                    combo: format!("{c0} vs {c1}"),
                    detail: format!("work counters diverge: {s0:?} vs {s1:?}"),
                });
            }
            if typed && !simd {
                scalar_stats = Some(*s0);
            } else if typed && simd {
                if let Some(scalar) = &scalar_stats {
                    if scalar != s0 {
                        return Some(Divergence {
                            combo: c1.clone(),
                            detail: format!(
                                "vectorized work counters diverge from the scalar run: \
                                 {s0:?} vs {scalar:?}"
                            ),
                        });
                    }
                }
            }
        }
    }
    // The error-parity axis: a step budget strictly below every
    // configuration's statement count must abort *every* combination —
    // engines, opt levels, typed/simd, and sharded thread counts — with
    // the exact same typed error.  A combination that runs to completion,
    // or faults with a different error, is a divergence like any other.
    if (4..u64::MAX).contains(&min_stmts) {
        let budget = min_stmts / 2;
        let want = RuntimeError::StepBudgetExceeded { budget };
        for level in OptLevel::all() {
            for (typed, simd) in [(false, false), (true, false), (true, true)] {
                let mut k = compiled.reoptimized_simd(level, typed, simd).with_step_budget(budget);
                for engine in [Engine::TreeWalk, Engine::Bytecode] {
                    let combo =
                        format!("{engine:?}/{level}/typed={typed}/simd={simd}/budget={budget}");
                    match k.run_with(engine) {
                        Err(ref e) if *e == want => {}
                        Ok(_) => {
                            return Some(Divergence {
                                combo,
                                detail: format!(
                                    "ran to completion under a step budget of {budget}"
                                ),
                            })
                        }
                        Err(e) => {
                            return Some(Divergence {
                                combo,
                                detail: format!(
                                    "wrong typed error under budget {budget}: {e} (want {want})"
                                ),
                            })
                        }
                    }
                }
                for threads in [2usize, 4] {
                    let combo = format!(
                        "Bytecode/{level}/typed={typed}/simd={simd}/threads={threads}/\
                         budget={budget}"
                    );
                    let mut kp = k.clone().with_threads(threads);
                    match kp.run_with(Engine::Bytecode) {
                        Err(ref e) if *e == want => {}
                        Ok(_) => {
                            return Some(Divergence {
                                combo,
                                detail: format!(
                                    "ran to completion under a step budget of {budget}"
                                ),
                            })
                        }
                        Err(e) => {
                            return Some(Divergence {
                                combo,
                                detail: format!(
                                    "wrong typed error under budget {budget}: {e} (want {want})"
                                ),
                            })
                        }
                    }
                }
            }
        }
    }
    None
}

/// Per-output comparison key of a kernel's last run: the dense
/// materialisation as exact f64 bit patterns plus, where the output
/// finalises into a tensor, its `Debug` rendering — which includes the
/// assembled sparse `pos`/`idx`/`val` arrays and round-trips f64 exactly.
fn output_fingerprint(k: &finch::CompiledKernel) -> Vec<(String, Vec<u64>, Option<String>)> {
    k.output_names()
        .into_iter()
        .map(|name| {
            let bits = k.output(&name).expect("output reads").iter().map(|v| v.to_bits()).collect();
            let tensor = k.output_tensor(&name).ok().map(|t| format!("{t:?}"));
            (name, bits, tensor)
        })
        .collect()
}

/// Draw one random case.  `smoke` shrinks the problem size for the CI
/// smoke job.
pub fn gen_case(rng: &mut TestRng, smoke: bool) -> FuzzCase {
    let formats = [VecFormat::Dense, VecFormat::SparseList, VecFormat::Band];
    let n = if smoke { rng.below_in(16, 48) } else { rng.below_in(32, 128) };
    let a_format = formats[rng.below_in(0, 3)];
    let b_format = formats[rng.below_in(0, 3)];
    // Protocol annotations are only meaningful on formats with a searchable
    // coordinate list; everything else iterates with the default unfurl.
    let proto = |rng: &mut TestRng, f: VecFormat| match f {
        VecFormat::SparseList => {
            [Protocol::Default, Protocol::Walk, Protocol::Gallop][rng.below_in(0, 3)]
        }
        _ => Protocol::Default,
    };
    let count = rng.below_in(1, 9);
    let stmts = (0..count)
        .map(|_| match rng.below_in(0, 5) {
            0 => StmtSpec::Dot { pa: proto(rng, a_format), pb: proto(rng, b_format) },
            1 => StmtSpec::Axpy {
                pa: proto(rng, a_format),
                quarters: rng.below_in(1, 17) as i16 - 8,
            },
            2 => StmtSpec::EwiseMul { pa: proto(rng, a_format), pb: proto(rng, b_format) },
            3 => StmtSpec::Threshold { tenths: rng.below_in(10, 80) as u8 },
            _ => StmtSpec::Blend,
        })
        .collect();
    FuzzCase { seed: rng.next_u64(), n, a_format, b_format, stmts }
}

/// Greedy delta debugging over the case's statement list: repeatedly drop
/// any statement whose removal keeps `diverges` true, until the case is
/// 1-minimal (no single statement can be removed).  The oracle is a
/// closure so tests can inject a synthetic bug.
pub fn minimize(case: &FuzzCase, diverges: &dyn Fn(&FuzzCase) -> bool) -> FuzzCase {
    let mut current = case.clone();
    // First pass: binary chop — try dropping whole halves while the case
    // is large, the classic ddmin fast path.
    loop {
        let len = current.stmts.len();
        if len < 4 {
            break;
        }
        let mut halved = false;
        for keep_front in [false, true] {
            let mut candidate = current.clone();
            if keep_front {
                candidate.stmts.truncate(len / 2);
            } else {
                candidate.stmts.drain(..len / 2);
            }
            if diverges(&candidate) {
                current = candidate;
                halved = true;
                break;
            }
        }
        if !halved {
            break;
        }
    }
    // Second pass: 1-minimality by single-statement removal.
    let mut k = 0;
    while current.stmts.len() > 1 && k < current.stmts.len() {
        let mut candidate = current.clone();
        candidate.stmts.remove(k);
        if diverges(&candidate) {
            current = candidate;
            k = 0;
        } else {
            k += 1;
        }
    }
    current
}

/// Render a minimized case as a runnable `#[test]` function (the
/// reproducer artifact the `fuzz-kernels` binary prints and CI uploads).
pub fn render_repro(case: &FuzzCase, divergence: &Divergence) -> String {
    let mut stmts_src = String::new();
    for s in &case.stmts {
        stmts_src.push_str(&format!("            {},\n", s.src()));
    }
    format!(
        "// Minimized fuzz-kernels reproducer ({} statement(s)).\n\
         // Divergence: [{}] {}\n\
         #[test]\n\
         fn fuzz_divergence_seed_{}() {{\n\
         \x20   use finch::ValidationLevel;\n\
         \x20   use finch_bench::fuzz::{{check_case, FuzzCase, StmtSpec, VecFormat}};\n\
         \x20   use finch_cin::Protocol;\n\
         \x20   let case = FuzzCase {{\n\
         \x20       seed: {},\n\
         \x20       n: {},\n\
         \x20       a_format: {},\n\
         \x20       b_format: {},\n\
         \x20       stmts: vec![\n{}\
         \x20       ],\n\
         \x20   }};\n\
         \x20   let divergence = check_case(&case, ValidationLevel::Off);\n\
         \x20   assert!(divergence.is_none(), \"kernel diverges: {{divergence:?}}\");\n\
         }}\n",
        case.stmts.len(),
        divergence.combo,
        divergence.detail,
        case.seed,
        case.seed,
        case.n,
        case.a_format.src(),
        case.b_format.src(),
        stmts_src,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_run_divergence_free() {
        let mut rng = TestRng::from_seed(0xF1C4);
        for _ in 0..12 {
            let case = gen_case(&mut rng, true);
            let verdict = check_case(&case, ValidationLevel::Full);
            assert_eq!(verdict, None, "case {case:?} diverged");
        }
    }

    /// The acceptance demonstration: inject a synthetic bug (the oracle
    /// flags any case containing a `Dot` statement) into a 24-statement
    /// case and check the minimizer converges to a reproducer of at most
    /// 10 CIN statements — here exactly one.
    #[test]
    fn minimizer_shrinks_an_injected_bug_to_a_tiny_reproducer() {
        let mut stmts = Vec::new();
        for k in 0..24 {
            stmts.push(match k % 4 {
                0 => StmtSpec::Blend,
                1 => StmtSpec::Axpy { pa: Protocol::Walk, quarters: 3 },
                2 if k == 10 => StmtSpec::Dot { pa: Protocol::Walk, pb: Protocol::Default },
                2 => StmtSpec::Threshold { tenths: 30 },
                _ => StmtSpec::EwiseMul { pa: Protocol::Default, pb: Protocol::Default },
            });
        }
        let case = FuzzCase {
            seed: 7,
            n: 32,
            a_format: VecFormat::SparseList,
            b_format: VecFormat::Dense,
            stmts,
        };
        let buggy = |c: &FuzzCase| c.stmts.iter().any(|s| matches!(s, StmtSpec::Dot { .. }));
        assert!(buggy(&case), "the injected bug must trigger on the full case");
        let minimized = minimize(&case, &buggy);
        assert!(
            minimized.stmts.len() <= 10,
            "minimizer must reach <= 10 statements, got {}",
            minimized.stmts.len()
        );
        assert_eq!(minimized.stmts.len(), 1, "the bug depends on exactly one statement");
        assert!(buggy(&minimized), "the reproducer must still trigger the bug");
        let repro = render_repro(
            &minimized,
            &Divergence { combo: "injected".into(), detail: "synthetic".into() },
        );
        assert!(repro.contains("StmtSpec::Dot"), "reproducer lists the offending statement");
        assert!(repro.contains("#[test]"), "reproducer is a runnable test");
    }

    /// A real end-to-end divergence: a case whose oracle is the actual
    /// differential check, with the "bug" injected by corrupting the
    /// case's own data seed comparison — here we instead assert the real
    /// oracle is stable under minimization plumbing (a non-diverging case
    /// minimizes to itself only via the injected-oracle path).
    #[test]
    fn reproducers_render_protocols_and_formats_verbatim() {
        let case = FuzzCase {
            seed: 99,
            n: 40,
            a_format: VecFormat::Band,
            b_format: VecFormat::SparseList,
            stmts: vec![
                StmtSpec::Dot { pa: Protocol::Default, pb: Protocol::Gallop },
                StmtSpec::Threshold { tenths: 55 },
            ],
        };
        let repro = render_repro(
            &case,
            &Divergence { combo: "TreeWalk/default/typed=true".into(), detail: "x".into() },
        );
        assert!(repro.contains("VecFormat::Band"));
        assert!(repro.contains("Protocol::Gallop"));
        assert!(repro.contains("StmtSpec::Threshold { tenths: 55 }"));
        assert!(repro.contains("fuzz_divergence_seed_99"));
    }
}
