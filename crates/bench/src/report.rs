//! Machine-readable benchmark report: the `figures` binary serialises every
//! measurement into `BENCH_figures.json` so the perf trajectory is
//! trackable across commits.
//!
//! The JSON is hand-rolled (the build environment has no serde); the schema
//! is documented in `EXPERIMENTS.md` and kept deliberately flat:
//!
//! ```json
//! {
//!   "figures": [
//!     { "figure": "fig01", "group": "band width 50",
//!       "variants": [
//!         { "label": "looplets: list x band",
//!           "engines": [
//!             { "engine": "bytecode", "median_seconds": 0.0012,
//!               "stmts": 10, "loop_iters": 4, "loads": 8, "stores": 4,
//!               "searches": 0, "total_work": 22 } ] } ] } ] }
//! ```

use std::io::Write as _;

use finch::{Engine, ExecStats};

/// One engine's measurement of one variant.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// The engine measured.
    pub engine: Engine,
    /// Median wall-clock seconds across the configured repetitions.
    pub median_seconds: f64,
    /// Machine-independent work counters of one run.
    pub stats: ExecStats,
}

/// One strategy/format variant of a figure, measured on every engine.
#[derive(Debug, Clone)]
pub struct VariantReport {
    /// Human-readable strategy/format label.
    pub label: String,
    /// Per-engine measurements (tree-walk and bytecode).
    pub engines: Vec<EngineReport>,
}

/// One table of one figure (a figure may sweep a parameter and emit
/// several groups).
#[derive(Debug, Clone)]
pub struct FigureGroup {
    /// Figure identifier (`fig01`, `fig07a`, ...).
    pub figure: String,
    /// The parameter point or dataset of this table.
    pub group: String,
    /// The measured variants.
    pub variants: Vec<VariantReport>,
}

/// The full report accumulated by one `figures` invocation.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every figure table measured, in print order.
    pub figures: Vec<FigureGroup>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Serialise the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"figures\": [");
        for (i, fig) in self.figures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"figure\": {}, ", json_string(&fig.figure)));
            out.push_str(&format!("\"group\": {},", json_string(&fig.group)));
            out.push_str("\n     \"variants\": [");
            for (j, v) in fig.variants.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n      {");
                out.push_str(&format!("\"label\": {},", json_string(&v.label)));
                out.push_str("\n       \"engines\": [");
                for (k, e) in v.engines.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n        {{\"engine\": {}, \"median_seconds\": {}, \
                         \"stmts\": {}, \"loop_iters\": {}, \"loads\": {}, \
                         \"stores\": {}, \"searches\": {}, \"total_work\": {}}}",
                        json_string(e.engine.label()),
                        json_number(e.median_seconds),
                        e.stats.stmts,
                        e.stats.loop_iters,
                        e.stats.loads,
                        e.stats.stores,
                        e.stats.searches,
                        e.stats.total_work(),
                    ));
                }
                out.push_str("\n       ]}");
            }
            out.push_str("\n     ]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// Escape a string for JSON (the labels are plain ASCII, but quotes and
/// backslashes must not corrupt the document).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as a JSON number (Rust's `Display` for finite `f64` is
/// valid JSON; non-finite values have no JSON encoding and become 0).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            figures: vec![FigureGroup {
                figure: "fig01".into(),
                group: "band width \"8\"".into(),
                variants: vec![VariantReport {
                    label: "looplets: list x band".into(),
                    engines: vec![
                        EngineReport {
                            engine: Engine::TreeWalk,
                            median_seconds: 0.25,
                            stats: ExecStats {
                                stmts: 10,
                                loop_iters: 4,
                                loads: 8,
                                stores: 4,
                                searches: 1,
                            },
                        },
                        EngineReport {
                            engine: Engine::Bytecode,
                            median_seconds: 0.125,
                            stats: ExecStats {
                                stmts: 10,
                                loop_iters: 4,
                                loads: 8,
                                stores: 4,
                                searches: 1,
                            },
                        },
                    ],
                }],
            }],
        }
    }

    #[test]
    fn json_has_both_engines_and_escaped_strings() {
        let j = sample().to_json();
        assert!(j.contains("\"tree_walk\""));
        assert!(j.contains("\"bytecode\""));
        assert!(j.contains("\"median_seconds\": 0.125"));
        assert!(j.contains("band width \\\"8\\\""), "{j}");
        assert!(j.contains("\"total_work\": 23"));
    }

    #[test]
    fn json_is_structurally_balanced() {
        let j = sample().to_json();
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = j.matches(open).count();
            let closes = j.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close} in:\n{j}");
        }
        // No trailing commas before a closer.
        assert!(!j.contains(",]") && !j.contains(",}"));
    }

    #[test]
    fn non_finite_numbers_are_sanitised() {
        assert_eq!(json_number(f64::NAN), "0");
        assert_eq!(json_number(f64::INFINITY), "0");
        assert_eq!(json_number(1.5), "1.5");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("x\u{1}"), "\"x\\u0001\"");
    }
}
