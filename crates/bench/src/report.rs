//! Machine-readable benchmark report: the `figures` binary serialises every
//! measurement into `BENCH_figures.json` so the perf trajectory is
//! trackable across commits.
//!
//! The JSON is hand-rolled (the build environment has no serde); the schema
//! is documented in `EXPERIMENTS.md` and kept deliberately flat:
//!
//! ```json
//! {
//!   "schema_version": 6,
//!   "opt_speedup": { "engine": "bytecode", "baseline": "none",
//!                    "optimized": "default", "median": 1.62, "samples": 35 },
//!   "typed_speedup": { "engine": "bytecode", "opt_level": "default",
//!                      "median": 1.4, "samples": 35 },
//!   "simd_speedup": { "engine": "bytecode", "opt_level": "default",
//!                     "median": 1.5, "samples": 35 },
//!   "parallel_speedup": { "engine": "bytecode", "opt_level": "default",
//!                         "threads": 4, "median": 2.3, "samples": 12 },
//!   "figures": [
//!     { "figure": "fig01", "group": "band width 50",
//!       "variants": [
//!         { "label": "looplets: list x band",
//!           "opt": { "compile_seconds": 0.0004, "folds": 12, "...": 0 },
//!           "validation": { "level": "full", "verify_seconds": 0.0001,
//!                           "validate_seconds": 0.002, "passes": [
//!             { "pass": "fold", "transform_seconds": 0.0001,
//!               "verify_seconds": 0.00002, "validate_seconds": 0.0004 } ] },
//!           "typed_instr_fraction": 0.93,
//!           "simd_speedup": 1.42,
//!           "vectorized_fraction": 0.86,
//!           "sharded": true,
//!           "parallel_speedup": 2.3,
//!           "engines": [
//!             { "engine": "bytecode", "opt_level": "default", "typed": true,
//!               "simd": true, "threads": 1, "median_seconds": 0.0012,
//!               "instrs": 74, "stmts": 10, "loop_iters": 4, "loads": 8,
//!               "stores": 4, "searches": 0, "total_work": 22 } ] } ] } ] }
//! ```

use std::io::Write as _;

use finch::{Engine, ExecStats, OptLevel, OptStats, PassReport};

/// One engine's measurement of one variant at one opt level and dispatch
/// mode.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// The engine measured.
    pub engine: Engine,
    /// The opt level the kernel was compiled at.
    pub opt_level: OptLevel,
    /// Whether the typed-dispatch (register-type inference) stage ran.
    pub typed: bool,
    /// Whether the vectorize (SIMD kernel-op) stage ran.
    pub simd: bool,
    /// Worker-thread count the run used (1 = serial; only shardable
    /// kernels on the bytecode engine actually split work).
    pub threads: usize,
    /// Median wall-clock seconds across the configured repetitions.
    pub median_seconds: f64,
    /// Bytecode instruction count of the kernel at this opt level.
    pub instrs: usize,
    /// Machine-independent work counters of one run.
    pub stats: ExecStats,
}

/// The optimisation record of one variant: how long the optimiser took to
/// re-derive the kernel at `OptLevel::Default`, and the per-pass counters
/// of that compilation.
#[derive(Debug, Clone)]
pub struct OptReport {
    /// Wall-clock seconds of one `reoptimized(OptLevel::Default)` call
    /// (IR pipeline + bytecode compile + peephole).
    pub compile_seconds: f64,
    /// Per-pass optimisation counters at `OptLevel::Default`.
    pub stats: OptStats,
}

/// The validation record of one variant: the level the kernel was
/// re-compiled at and the per-pass wall-clock split between the
/// transform, the static verifier, and witness-based translation
/// validation.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// The [`finch::ValidationLevel`] label (`off`, `static`, `full`).
    pub level: String,
    /// Per-pass accounting, in pipeline execution order.
    pub passes: Vec<PassReport>,
}

impl ValidationReport {
    /// Total seconds spent in the static verifier across all passes.
    pub fn verify_seconds(&self) -> f64 {
        self.passes.iter().map(|p| p.verify_nanos as f64 * 1e-9).sum()
    }

    /// Total seconds spent executing and comparing witnesses.
    pub fn validate_seconds(&self) -> f64 {
        self.passes.iter().map(|p| p.validate_nanos as f64 * 1e-9).sum()
    }
}

/// One strategy/format variant of a figure, measured on every requested
/// (engine, opt level, dispatch mode) combination.
#[derive(Debug, Clone)]
pub struct VariantReport {
    /// Human-readable strategy/format label.
    pub label: String,
    /// The variant's optimisation record (when the default level was run).
    pub opt: Option<OptReport>,
    /// The variant's validation record (when `--validate` was requested).
    pub validation: Option<ValidationReport>,
    /// Fraction of *executed* bytecode instructions that were tag-free
    /// (typed or tag-neutral) in one profiled run of the typed kernel at
    /// `OptLevel::Default` — the issue's `typed_instr_fraction`.
    pub typed_instr_fraction: Option<f64>,
    /// This variant's wall-clock speedup of the SIMD kernel-op tier:
    /// `simd_off_seconds / simd_on_seconds` on the bytecode engine at
    /// `OptLevel::Default` with typed dispatch on.
    pub simd_speedup: Option<f64>,
    /// Fraction of innermost typed counted-loop body instructions the
    /// vectorize pass replaced with kernel ops
    /// (`instrs_vectorized / instrs_vectorizable`; `None` when the
    /// kernel has no such loops).
    pub vectorized_fraction: Option<f64>,
    /// Whether the shard analysis proved a loop of this kernel splittable
    /// across worker threads (thread counts above 1 are a no-op when
    /// `false`).
    pub sharded: bool,
    /// This variant's wall-clock speedup of the parallel tier:
    /// `serial_seconds / parallel_seconds` on the bytecode engine at
    /// `OptLevel::Default` (typed + simd) at the scaling leg's top thread
    /// count.  `None` when no parallel leg was measured.
    pub parallel_speedup: Option<f64>,
    /// Per-opcode execution counts of the same profiled run (emitted in
    /// debug builds to quantify the remaining dynamic dispatch).
    pub opcode_counts: Option<Vec<(String, u64)>>,
    /// Per-(engine, opt level, dispatch mode) measurements.
    pub engines: Vec<EngineReport>,
}

/// One table of one figure (a figure may sweep a parameter and emit
/// several groups).
#[derive(Debug, Clone)]
pub struct FigureGroup {
    /// Figure identifier (`fig01`, `fig07a`, ...).
    pub figure: String,
    /// The parameter point or dataset of this table.
    pub group: String,
    /// The measured variants.
    pub variants: Vec<VariantReport>,
}

/// The headline optimiser result: the median wall-clock speedup of the
/// bytecode engine at `OptLevel::Default` over `OptLevel::None` across
/// every measured variant.
#[derive(Debug, Clone)]
pub struct OptSpeedup {
    /// The engine both levels were measured on.
    pub engine: Engine,
    /// The baseline opt level.
    pub baseline: OptLevel,
    /// The optimised level the speedup is for.
    pub optimized: OptLevel,
    /// Median of per-variant `baseline_seconds / optimized_seconds`.
    pub median: f64,
    /// Number of variants contributing ratios.
    pub samples: usize,
}

/// The headline typed-dispatch result: the median wall-clock speedup of
/// the bytecode engine at `OptLevel::Default` with the typing stage on
/// over the same kernels with it off.
#[derive(Debug, Clone)]
pub struct TypedSpeedup {
    /// Median of per-variant `generic_seconds / typed_seconds`.
    pub median: f64,
    /// Number of variants contributing ratios.
    pub samples: usize,
}

/// The headline vectorization result: the median wall-clock speedup of
/// the bytecode engine at `OptLevel::Default` with the SIMD kernel-op
/// tier on over the same typed kernels with it off.
#[derive(Debug, Clone)]
pub struct SimdSpeedup {
    /// Median of per-variant `simd_off_seconds / simd_on_seconds`.
    pub median: f64,
    /// Number of variants contributing ratios.
    pub samples: usize,
}

/// The headline parallel-tier result: the median wall-clock speedup of
/// the bytecode engine at `OptLevel::Default` (typed + simd) running
/// sharded at `threads` workers over the same kernels serial, across the
/// variants the shard analysis proved splittable.
#[derive(Debug, Clone)]
pub struct ParallelSpeedup {
    /// The worker-thread count the headline ratio is measured at.
    pub threads: usize,
    /// Median of per-variant `serial_seconds / parallel_seconds`.
    pub median: f64,
    /// Number of (shardable) variants contributing ratios.
    pub samples: usize,
}

/// The full report accumulated by one `figures` invocation.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// The headline optimiser speedup, when both levels were measured.
    pub opt_speedup: Option<OptSpeedup>,
    /// The headline typed-dispatch speedup, when both dispatch modes were
    /// measured.
    pub typed_speedup: Option<TypedSpeedup>,
    /// The headline SIMD kernel-op speedup, when both simd modes were
    /// measured.
    pub simd_speedup: Option<SimdSpeedup>,
    /// The headline parallel sharded-execution speedup, when a scaling
    /// leg was measured.
    pub parallel_speedup: Option<ParallelSpeedup>,
    /// Every figure table measured, in print order.
    pub figures: Vec<FigureGroup>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Serialise the report as a JSON document (schema v6 — see
    /// EXPERIMENTS.md).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\n  \"schema_version\": 6,");
        if let Some(s) = &self.opt_speedup {
            out.push_str(&format!(
                "\n  \"opt_speedup\": {{\"engine\": {}, \"baseline\": {}, \
                 \"optimized\": {}, \"median\": {}, \"samples\": {}}},",
                json_string(s.engine.label()),
                json_string(s.baseline.label()),
                json_string(s.optimized.label()),
                json_number(s.median),
                s.samples,
            ));
        }
        if let Some(s) = &self.typed_speedup {
            out.push_str(&format!(
                "\n  \"typed_speedup\": {{\"engine\": \"bytecode\", \"opt_level\": \"default\", \
                 \"median\": {}, \"samples\": {}}},",
                json_number(s.median),
                s.samples,
            ));
        }
        if let Some(s) = &self.simd_speedup {
            out.push_str(&format!(
                "\n  \"simd_speedup\": {{\"engine\": \"bytecode\", \"opt_level\": \"default\", \
                 \"median\": {}, \"samples\": {}}},",
                json_number(s.median),
                s.samples,
            ));
        }
        if let Some(s) = &self.parallel_speedup {
            out.push_str(&format!(
                "\n  \"parallel_speedup\": {{\"engine\": \"bytecode\", \"opt_level\": \"default\", \
                 \"threads\": {}, \"median\": {}, \"samples\": {}}},",
                s.threads,
                json_number(s.median),
                s.samples,
            ));
        }
        out.push_str("\n  \"figures\": [");
        for (i, fig) in self.figures.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"figure\": {}, ", json_string(&fig.figure)));
            out.push_str(&format!("\"group\": {},", json_string(&fig.group)));
            out.push_str("\n     \"variants\": [");
            for (j, v) in fig.variants.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n      {");
                out.push_str(&format!("\"label\": {},", json_string(&v.label)));
                if let Some(opt) = &v.opt {
                    let s = opt.stats;
                    out.push_str(&format!(
                        "\n       \"opt\": {{\"compile_seconds\": {}, \"folds\": {}, \
                         \"copies_propagated\": {}, \"branches_pruned\": {}, \
                         \"loops_removed\": {}, \"stmts_removed\": {}, \
                         \"loads_hoisted\": {}, \"instrs_fused\": {}, \
                         \"movs_eliminated\": {}, \"regs_saved\": {}, \
                         \"instrs_typed\": {}, \"regs_pretagged\": {}, \
                         \"instrs_vectorized\": {}, \"instrs_vectorizable\": {}, \
                         \"ir_stmts_before\": {}, \"ir_stmts_after\": {}}},",
                        json_number(opt.compile_seconds),
                        s.folds,
                        s.copies_propagated,
                        s.branches_pruned,
                        s.loops_removed,
                        s.stmts_removed,
                        s.loads_hoisted,
                        s.instrs_fused,
                        s.movs_eliminated,
                        s.regs_saved,
                        s.instrs_typed,
                        s.regs_pretagged,
                        s.instrs_vectorized,
                        s.instrs_vectorizable,
                        s.ir_stmts_before,
                        s.ir_stmts_after,
                    ));
                }
                if let Some(val) = &v.validation {
                    out.push_str(&format!(
                        "\n       \"validation\": {{\"level\": {}, \
                         \"verify_seconds\": {}, \"validate_seconds\": {}, \"passes\": [",
                        json_string(&val.level),
                        json_number(val.verify_seconds()),
                        json_number(val.validate_seconds()),
                    ));
                    for (k, p) in val.passes.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!(
                            "{{\"pass\": {}, \"transform_seconds\": {}, \
                             \"verify_seconds\": {}, \"validate_seconds\": {}}}",
                            json_string(p.name),
                            json_number(p.transform_nanos as f64 * 1e-9),
                            json_number(p.verify_nanos as f64 * 1e-9),
                            json_number(p.validate_nanos as f64 * 1e-9),
                        ));
                    }
                    out.push_str("]},");
                }
                if let Some(f) = v.typed_instr_fraction {
                    out.push_str(&format!(
                        "\n       \"typed_instr_fraction\": {},",
                        json_number(f)
                    ));
                }
                if let Some(f) = v.simd_speedup {
                    out.push_str(&format!("\n       \"simd_speedup\": {},", json_number(f)));
                }
                if let Some(f) = v.vectorized_fraction {
                    out.push_str(&format!("\n       \"vectorized_fraction\": {},", json_number(f)));
                }
                out.push_str(&format!("\n       \"sharded\": {},", v.sharded));
                if let Some(f) = v.parallel_speedup {
                    out.push_str(&format!("\n       \"parallel_speedup\": {},", json_number(f)));
                }
                if let Some(counts) = &v.opcode_counts {
                    out.push_str("\n       \"opcode_counts\": {");
                    for (k, (name, count)) in counts.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&format!("{}: {}", json_string(name), count));
                    }
                    out.push_str("},");
                }
                out.push_str("\n       \"engines\": [");
                for (k, e) in v.engines.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n        {{\"engine\": {}, \"opt_level\": {}, \"typed\": {}, \
                         \"simd\": {}, \"threads\": {}, \"median_seconds\": {}, \"instrs\": {}, \
                         \"stmts\": {}, \"loop_iters\": {}, \"loads\": {}, \
                         \"stores\": {}, \"searches\": {}, \"total_work\": {}}}",
                        json_string(e.engine.label()),
                        json_string(e.opt_level.label()),
                        e.typed,
                        e.simd,
                        e.threads,
                        json_number(e.median_seconds),
                        e.instrs,
                        e.stats.stmts,
                        e.stats.loop_iters,
                        e.stats.loads,
                        e.stats.stores,
                        e.stats.searches,
                        e.stats.total_work(),
                    ));
                }
                out.push_str("\n       ]}");
            }
            out.push_str("\n     ]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Write the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// The machine-readable result of one `serve` bench run
/// (`BENCH_serve.json`): throughput, latency quantiles, cache behaviour, and
/// the resilience counters of the kernel service.
#[derive(Debug, Clone, Default)]
pub struct ServeReport {
    /// Requests submitted by the driver.
    pub requests: u64,
    /// Concurrent client threads.
    pub clients: u64,
    /// Distinct kernel structures in the trace.
    pub kernels: u64,
    /// Data instances per kernel.
    pub instances: u64,
    /// Service cache capacity.
    pub cache_capacity: u64,
    /// Per-request deadline in milliseconds (0 = none).
    pub deadline_ms: u64,
    /// Injected-fault rate in permille (0 = fault-free).
    pub faults_permille: u64,
    /// Whether the run was the chaos soak (overload + faults + mid-run
    /// drain/restart) rather than the plain serve bench.
    pub soak: bool,
    /// Trace seed.
    pub seed: u64,
    /// Zipf skew of the trace.
    pub zipf_skew: f64,
    /// Wall-clock duration of the request phase, seconds.
    pub elapsed_seconds: f64,
    /// Completed requests per second (successes and typed errors).
    pub qps: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// Mean request latency, microseconds.
    pub mean_us: f64,
    /// Median admission-queue wait of successful requests, microseconds.
    pub queue_wait_p50_us: f64,
    /// 99th-percentile admission-queue wait, microseconds.
    pub queue_wait_p99_us: f64,
    /// Deepest admission-queue depth sampled during the run.
    pub max_queue_depth: u64,
    /// Cache hits / (hits + misses).
    pub hit_rate: f64,
    /// Successful responses.
    pub ok: u64,
    /// Responses served below the fast tier.
    pub degraded: u64,
    /// Requests that ended in a typed error (deadline, budget, shed, ...).
    pub typed_errors: u64,
    /// Responses verified bit-identical against the tree-walk reference.
    pub verified: u64,
    /// Verified responses that diverged from the reference (must be 0).
    pub divergences: u64,
    /// Number of mid-run drain/restart cycles performed (soak mode).
    pub drained: u64,
    /// Wall-clock milliseconds the slowest drain took to settle.
    pub drain_latency_ms: f64,
    /// Whether any drain overran its deadline and cancelled in-flight work.
    pub drain_cancelled: bool,
    /// The service's own counters at the end of the run.
    pub stats: finch::ServiceStats,
}

impl ServeReport {
    /// Render the report as a JSON document.
    pub fn to_json(&self) -> String {
        let tiers = |xs: &[u64; 4]| format!("[{}, {}, {}, {}]", xs[0], xs[1], xs[2], xs[3]);
        let s = &self.stats;
        format!(
            "{{\n  \"schema_version\": 2,\n  \"bench\": \"serve\",\n  \
             \"requests\": {},\n  \"clients\": {},\n  \"kernels\": {},\n  \
             \"instances\": {},\n  \"cache_capacity\": {},\n  \"deadline_ms\": {},\n  \
             \"faults_permille\": {},\n  \"soak\": {},\n  \"seed\": {},\n  \"zipf_skew\": {},\n  \
             \"elapsed_seconds\": {},\n  \"qps\": {},\n  \"p50_us\": {},\n  \
             \"p99_us\": {},\n  \"mean_us\": {},\n  \"queue_wait_p50_us\": {},\n  \
             \"queue_wait_p99_us\": {},\n  \"max_queue_depth\": {},\n  \"hit_rate\": {},\n  \
             \"ok\": {},\n  \"degraded\": {},\n  \"typed_errors\": {},\n  \
             \"verified\": {},\n  \"divergences\": {},\n  \"drained\": {},\n  \
             \"drain_latency_ms\": {},\n  \"drain_cancelled\": {},\n  \"service\": {{\n    \
             \"hits\": {},\n    \"misses\": {},\n    \"compiles\": {},\n    \
             \"recompiles\": {},\n    \"quarantined\": {},\n    \"evictions\": {},\n    \
             \"shed\": {},\n    \"queued\": {},\n    \"queue_timeouts\": {},\n    \
             \"breaker_opens\": {},\n    \"breaker_short_circuits\": {},\n    \
             \"batch_groups\": {},\n    \"panics\": {},\n    \"deadline_errors\": {},\n    \
             \"budget_errors\": {},\n    \"alloc_errors\": {},\n    \
             \"served_by_tier\": {},\n    \"faults_by_tier\": {}\n  }}\n}}\n",
            self.requests,
            self.clients,
            self.kernels,
            self.instances,
            self.cache_capacity,
            self.deadline_ms,
            self.faults_permille,
            self.soak,
            self.seed,
            json_number(self.zipf_skew),
            json_number(self.elapsed_seconds),
            json_number(self.qps),
            json_number(self.p50_us),
            json_number(self.p99_us),
            json_number(self.mean_us),
            json_number(self.queue_wait_p50_us),
            json_number(self.queue_wait_p99_us),
            self.max_queue_depth,
            json_number(self.hit_rate),
            self.ok,
            self.degraded,
            self.typed_errors,
            self.verified,
            self.divergences,
            self.drained,
            json_number(self.drain_latency_ms),
            self.drain_cancelled,
            s.hits,
            s.misses,
            s.compiles,
            s.recompiles,
            s.quarantined,
            s.evictions,
            s.shed,
            s.queued,
            s.queue_timeouts,
            s.breaker_opens,
            s.breaker_short_circuits,
            s.batch_groups,
            s.panics,
            s.deadline_errors,
            s.budget_errors,
            s.alloc_errors,
            tiers(&s.served_by_tier),
            tiers(&s.faults_by_tier),
        )
    }

    /// Write the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// Escape a string for JSON (the labels are plain ASCII, but quotes and
/// backslashes must not corrupt the document).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as a JSON number (Rust's `Display` for finite `f64` is
/// valid JSON; non-finite values have no JSON encoding and become 0).
fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            opt_speedup: Some(OptSpeedup {
                engine: Engine::Bytecode,
                baseline: OptLevel::None,
                optimized: OptLevel::Default,
                median: 1.75,
                samples: 4,
            }),
            typed_speedup: Some(TypedSpeedup { median: 1.4, samples: 4 }),
            simd_speedup: Some(SimdSpeedup { median: 1.5, samples: 4 }),
            parallel_speedup: Some(ParallelSpeedup { threads: 4, median: 2.25, samples: 3 }),
            figures: vec![FigureGroup {
                figure: "fig01".into(),
                group: "band width \"8\"".into(),
                variants: vec![VariantReport {
                    label: "looplets: list x band".into(),
                    opt: Some(OptReport {
                        compile_seconds: 0.0004,
                        stats: OptStats {
                            folds: 3,
                            loads_hoisted: 2,
                            instrs_typed: 17,
                            regs_pretagged: 5,
                            instrs_vectorized: 12,
                            instrs_vectorizable: 14,
                            ..OptStats::default()
                        },
                    }),
                    validation: Some(ValidationReport {
                        level: "full".into(),
                        passes: vec![
                            PassReport {
                                name: "fold",
                                transform_nanos: 1_000,
                                verify_nanos: 2_000,
                                validate_nanos: 500_000,
                            },
                            PassReport {
                                name: "lower",
                                transform_nanos: 3_000,
                                verify_nanos: 4_000,
                                validate_nanos: 1_500_000,
                            },
                        ],
                    }),
                    typed_instr_fraction: Some(0.9375),
                    simd_speedup: Some(1.4375),
                    vectorized_fraction: Some(0.875),
                    sharded: true,
                    parallel_speedup: Some(2.125),
                    opcode_counts: Some(vec![("load_f64".into(), 100), ("store".into(), 4)]),
                    engines: vec![
                        EngineReport {
                            engine: Engine::TreeWalk,
                            opt_level: OptLevel::Default,
                            typed: true,
                            simd: true,
                            threads: 1,
                            median_seconds: 0.25,
                            instrs: 90,
                            stats: ExecStats {
                                stmts: 10,
                                loop_iters: 4,
                                loads: 8,
                                stores: 4,
                                searches: 1,
                            },
                        },
                        EngineReport {
                            engine: Engine::Bytecode,
                            opt_level: OptLevel::None,
                            typed: false,
                            simd: false,
                            threads: 1,
                            median_seconds: 0.125,
                            instrs: 120,
                            stats: ExecStats {
                                stmts: 12,
                                loop_iters: 4,
                                loads: 9,
                                stores: 4,
                                searches: 1,
                            },
                        },
                    ],
                }],
            }],
        }
    }

    #[test]
    fn json_has_engines_opt_levels_and_escaped_strings() {
        let j = sample().to_json();
        assert!(j.contains("\"schema_version\": 6"));
        assert!(j.contains("\"tree_walk\""));
        assert!(j.contains("\"bytecode\""));
        assert!(j.contains("\"opt_level\": \"default\""));
        assert!(j.contains("\"opt_level\": \"none\""));
        assert!(j.contains("\"typed\": true"));
        assert!(j.contains("\"typed\": false"));
        assert!(j.contains("\"simd\": true"));
        assert!(j.contains("\"simd\": false"));
        assert!(j.contains("\"median_seconds\": 0.125"));
        assert!(j.contains("band width \\\"8\\\""), "{j}");
        assert!(j.contains("\"total_work\": 23"));
        assert!(j.contains("\"opt_speedup\""));
        assert!(j.contains("\"typed_speedup\""));
        assert!(j.contains("\"median\": 1.75"));
        assert!(j.contains("\"median\": 1.4"));
        assert!(j.contains("\"simd_speedup\": {\"engine\": \"bytecode\""));
        assert!(j.contains("\"median\": 1.5"));
        assert!(j.contains("\"parallel_speedup\": {\"engine\": \"bytecode\""));
        assert!(j.contains("\"threads\": 4, \"median\": 2.25, \"samples\": 3"));
        assert!(j.contains("\"sharded\": true"));
        assert!(j.contains("\"parallel_speedup\": 2.125"));
        assert!(j.contains("\"threads\": 1"));
        assert!(j.contains("\"loads_hoisted\": 2"));
        assert!(j.contains("\"instrs_typed\": 17"));
        assert!(j.contains("\"regs_pretagged\": 5"));
        assert!(j.contains("\"instrs_vectorized\": 12"));
        assert!(j.contains("\"instrs_vectorizable\": 14"));
        assert!(j.contains("\"validation\": {\"level\": \"full\""));
        assert!(j.contains("\"verify_seconds\": 0.000006"));
        assert!(j.contains("\"validate_seconds\": 0.002"));
        assert!(j.contains("{\"pass\": \"fold\", \"transform_seconds\": 0.000001"));
        assert!(j.contains("{\"pass\": \"lower\""));
        assert!(j.contains("\"typed_instr_fraction\": 0.9375"));
        assert!(j.contains("\"simd_speedup\": 1.4375"));
        assert!(j.contains("\"vectorized_fraction\": 0.875"));
        assert!(j.contains("\"opcode_counts\": {\"load_f64\": 100, \"store\": 4}"));
        assert!(j.contains("\"instrs\": 120"));
    }

    #[test]
    fn json_is_structurally_balanced() {
        let j = sample().to_json();
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = j.matches(open).count();
            let closes = j.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close} in:\n{j}");
        }
        // No trailing commas before a closer.
        assert!(!j.contains(",]") && !j.contains(",}"));
    }

    #[test]
    fn report_without_opt_comparison_omits_the_key() {
        let mut r = sample();
        r.opt_speedup = None;
        r.typed_speedup = None;
        r.simd_speedup = None;
        r.figures[0].variants[0].opt = None;
        r.figures[0].variants[0].validation = None;
        r.figures[0].variants[0].typed_instr_fraction = None;
        r.figures[0].variants[0].simd_speedup = None;
        r.figures[0].variants[0].vectorized_fraction = None;
        r.figures[0].variants[0].opcode_counts = None;
        r.parallel_speedup = None;
        r.figures[0].variants[0].parallel_speedup = None;
        let j = r.to_json();
        assert!(!j.contains("opt_speedup"));
        assert!(!j.contains("typed_speedup"));
        assert!(!j.contains("simd_speedup"));
        assert!(!j.contains("parallel_speedup"));
        assert!(!j.contains("vectorized_fraction"));
        assert!(!j.contains("compile_seconds"));
        assert!(!j.contains("validation"));
        assert!(!j.contains("typed_instr_fraction"));
        assert!(!j.contains("opcode_counts"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(j.matches(open).count(), j.matches(close).count());
        }
    }

    #[test]
    fn serve_report_emits_schema_v2_with_front_end_counters() {
        let stats = finch::ServiceStats {
            queued: 7,
            queue_timeouts: 3,
            breaker_opens: 2,
            breaker_short_circuits: 5,
            batch_groups: 4,
            served_by_tier: [10, 1, 0, 2],
            ..Default::default()
        };
        let r = ServeReport {
            requests: 16,
            clients: 8,
            soak: true,
            queue_wait_p50_us: 120.5,
            queue_wait_p99_us: 950.0,
            max_queue_depth: 6,
            drained: 2,
            drain_latency_ms: 12.25,
            drain_cancelled: false,
            stats,
            ..ServeReport::default()
        };
        let j = r.to_json();
        assert!(j.contains("\"schema_version\": 2"));
        assert!(j.contains("\"soak\": true"));
        assert!(j.contains("\"queue_wait_p50_us\": 120.5"));
        assert!(j.contains("\"queue_wait_p99_us\": 950"));
        assert!(j.contains("\"max_queue_depth\": 6"));
        assert!(j.contains("\"drained\": 2"));
        assert!(j.contains("\"drain_latency_ms\": 12.25"));
        assert!(j.contains("\"drain_cancelled\": false"));
        assert!(j.contains("\"queued\": 7"));
        assert!(j.contains("\"queue_timeouts\": 3"));
        assert!(j.contains("\"breaker_opens\": 2"));
        assert!(j.contains("\"breaker_short_circuits\": 5"));
        assert!(j.contains("\"batch_groups\": 4"));
        assert!(j.contains("\"served_by_tier\": [10, 1, 0, 2]"));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(j.matches(open).count(), j.matches(close).count());
        }
        assert!(!j.contains(",]") && !j.contains(",}"));
    }

    #[test]
    fn non_finite_numbers_are_sanitised() {
        assert_eq!(json_number(f64::NAN), "0");
        assert_eq!(json_number(f64::INFINITY), "0");
        assert_eq!(json_number(1.5), "1.5");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("x\u{1}"), "\"x\\u0001\"");
    }
}
