//! Structural and asymptotic properties of the generated code: these tests
//! check that the lowering reproduces the *shape* of the code listings in
//! the paper (Figures 1b and 6) and the asymptotic behaviour those shapes
//! exist to deliver.

use finch::build::*;
use finch::{CompiledKernel, Kernel, Protocol, Tensor};

fn dot(a: &Tensor, b: &Tensor, pa: Protocol, pb: Protocol) -> CompiledKernel {
    let mut kernel = Kernel::new();
    kernel.bind_input(a).bind_input(b).bind_output_scalar("C");
    let i = idx("i");
    let with = |p: Protocol, v: &finch::IndexVar| match p {
        Protocol::Gallop => v.gallop(),
        Protocol::Walk => v.walk(),
        Protocol::Locate => v.locate(),
        Protocol::Default => v.clone().into(),
    };
    let program = forall(
        i.clone(),
        add_assign(
            scalar("C"),
            mul(access(a.name(), [with(pa, &i)]), access(b.name(), [with(pb, &i)])),
        ),
    );
    kernel.compile(&program).expect("dot compiles")
}

#[test]
fn two_finger_merge_has_the_figure_1_shape() {
    // Two sparse lists walked together: the generated code must contain a
    // while loop, a min over the two declared strides, and guarded
    // position increments — the classic two-finger merge.
    let a = Tensor::sparse_list_vector("A", &[0.0, 1.0, 0.0, 2.0, 0.0, 3.0]);
    let b = Tensor::sparse_list_vector("B", &[4.0, 0.0, 5.0, 0.0, 0.0, 6.0]);
    let k = dot(&a, &b, Protocol::Walk, Protocol::Walk);
    let code = k.code();
    assert!(code.contains("while"), "{code}");
    assert!(code.contains("min("), "{code}");
    assert!(code.contains("A_idx0["), "{code}");
    assert!(code.contains("B_idx0["), "{code}");
    // Guarded advancement: each list only advances when its stride was the
    // chosen boundary.
    assert!(code.matches("if (stride").count() >= 2, "{code}");
}

#[test]
fn galloping_merge_uses_max_and_binary_search() {
    let a = Tensor::sparse_list_vector("A", &[0.0, 1.0, 0.0, 2.0, 0.0, 3.0]);
    let b = Tensor::sparse_list_vector("B", &[4.0, 0.0, 5.0, 0.0, 0.0, 6.0]);
    let k = dot(&a, &b, Protocol::Gallop, Protocol::Gallop);
    let code = k.code();
    assert!(code.contains("max("), "leaders use the largest stride:\n{code}");
    assert!(code.contains("search("), "seek functions binary search:\n{code}");
    // The galloping nest's switch produces an if/else on whether this list's
    // next coordinate is exactly the region boundary.
    assert!(code.contains("} else {"), "{code}");
}

#[test]
fn dense_times_sparse_skips_nothing_but_visits_only_nonzeros_of_the_list() {
    let n = 1000;
    let mut a_data = vec![0.0; n];
    for k in (0..n).step_by(97) {
        a_data[k] = 1.0;
    }
    let b_data: Vec<f64> = (0..n).map(|x| x as f64).collect();
    let a = Tensor::sparse_list_vector("A", &a_data);
    let b = Tensor::dense_vector("B", &b_data);
    let mut k = dot(&a, &b, Protocol::Walk, Protocol::Locate);
    let stats = k.run().expect("runs");
    let expect: f64 = a_data.iter().zip(&b_data).map(|(x, y)| x * y).sum();
    assert_eq!(k.output_scalar("C").unwrap(), expect);
    // Work is proportional to the number of stored nonzeros of A (11), not
    // to the dense dimension (1000).
    assert!(stats.loop_iters < 100, "iterations {}", stats.loop_iters);
}

#[test]
fn rle_reduction_collapses_runs_with_the_invariant_loop_rule() {
    // Summing a run-length-encoded vector should do work proportional to
    // the number of runs, because `C[] += v` over a run of length L is
    // rewritten to `C[] += v * L`.
    let n = 4096;
    let mut data = vec![1.5; n];
    for k in 0..8 {
        data[k * 512] = (k + 2) as f64;
    }
    let t = Tensor::rle_vector("V", &data);
    assert!(t.stored() < 32, "few runs expected");
    let mut kernel = Kernel::new();
    kernel.bind_input(&t).bind_output_scalar("S");
    let i = idx("i");
    let program = forall(i.clone(), add_assign(scalar("S"), access("V", [i])));
    let mut compiled = kernel.compile(&program).expect("sum compiles");
    let stats = compiled.run().expect("sum runs");
    let expect: f64 = data.iter().sum();
    assert!((compiled.output_scalar("S").unwrap() - expect).abs() < 1e-6);
    assert!(
        stats.loop_iters < 64,
        "work should scale with runs, not elements: {} iterations\n{}",
        stats.loop_iters,
        compiled.code()
    );
    // The generated code contains the collapsed multiplication by the run
    // length rather than a per-element loop over each run.
    assert!(compiled.code().contains("max("), "{}", compiled.code());
}

#[test]
fn zero_regions_are_deleted_not_executed() {
    // A sparse list multiplied by an all-zero band: after simplification
    // nothing at all should execute inside the loop nest.
    let a = Tensor::sparse_list_vector("A", &[0.0, 1.0, 0.0, 2.0]);
    let b = Tensor::band_vector("B", &[0.0, 0.0, 0.0, 0.0]);
    let mut k = dot(&a, &b, Protocol::Walk, Protocol::Default);
    let stats = k.run().expect("runs");
    assert_eq!(k.output_scalar("C").unwrap(), 0.0);
    assert!(
        stats.loop_iters <= 1,
        "zero band should produce no iteration: {stats:?}\n{}",
        k.code()
    );
}

#[test]
fn bitmap_switch_specialises_the_zero_case() {
    let data = vec![0.0, 3.0, 0.0, 0.0, 7.0, 0.0];
    let a = Tensor::bitmap_vector("A", &data);
    let b = Tensor::dense_vector("B", &[1.0; 6]);
    let mut k = dot(&a, &b, Protocol::Locate, Protocol::Locate);
    k.run().expect("runs");
    assert_eq!(k.output_scalar("C").unwrap(), 10.0);
    // The bitmap's zero check appears in the generated code.
    assert!(k.code().contains("A_tbl0["), "{}", k.code());
}

#[test]
fn generated_code_for_spmspv_nests_the_row_loop_outside_the_merge() {
    let data = vec![
        0.0, 1.0, 0.0, 2.0, //
        3.0, 0.0, 0.0, 0.0, //
        0.0, 0.0, 4.0, 0.0,
    ];
    let a = Tensor::csr_matrix("A", 3, 4, &data);
    let x = Tensor::sparse_list_vector("x", &[1.0, 0.0, 2.0, 3.0]);
    let mut kernel = Kernel::new();
    kernel.bind_input(&a).bind_input(&x).bind_output("y", &[3], 0.0);
    let (i, j) = (idx("i"), idx("j"));
    let program = forall(
        i.clone(),
        forall(
            j.clone(),
            add_assign(
                access("y", [i.clone()]),
                mul(access("A", [i.into(), j.walk()]), access("x", [j.walk()])),
            ),
        ),
    );
    let mut compiled = kernel.compile(&program).expect("spmspv compiles");
    compiled.run().expect("spmspv runs");
    assert_eq!(compiled.output("y").unwrap(), vec![6.0, 3.0, 8.0]);
    let code = compiled.code();
    // The outer dense row loop is a for; the inner coiteration is a while.
    let for_pos = code.find("for i").expect("outer for loop");
    let while_pos = code.find("while").expect("inner merge loop");
    assert!(for_pos < while_pos, "{code}");
}

#[test]
fn compiled_kernels_can_be_rerun_and_are_deterministic() {
    let a = Tensor::sparse_list_vector("A", &[0.0, 1.0, 2.0, 0.0, 4.0]);
    let b = Tensor::sparse_list_vector("B", &[1.0, 1.0, 0.0, 1.0, 0.5]);
    let mut k = dot(&a, &b, Protocol::Walk, Protocol::Walk);
    let s1 = k.run().expect("first run");
    let v1 = k.output_scalar("C");
    let s2 = k.run().expect("second run");
    let v2 = k.output_scalar("C");
    assert_eq!(v1, v2, "outputs must be reset between runs");
    assert_eq!(s1, s2, "work counters are deterministic");
}
