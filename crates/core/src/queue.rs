//! The bounded, deadline-aware admission queue and the service lifecycle
//! state machine.
//!
//! PR 9's admission control was an instant hard shed: the moment
//! `max_in_flight` was reached, every new request failed with `Overloaded` —
//! even when its deadline could have tolerated a short wait.  The
//! [`AdmissionQueue`] replaces that with a condvar-backed FIFO wait:
//!
//! * requests past the in-flight limit **queue** (in strict arrival order —
//!   no barging past earlier waiters) up to their remaining deadline;
//! * a waiter whose deadline expires first leaves with a typed
//!   `QueueTimeout`, distinct from an *execution* deadline;
//! * the queue itself is bounded by `queue_depth`; behind the cap the old
//!   instant `Overloaded` still applies, so memory stays bounded under any
//!   overload;
//! * [`AdmissionQueue::drain`] flips the service into
//!   [`ServiceState::Draining`]: new arrivals are rejected with a typed
//!   shutdown error, queued waiters are woken and leave the same way, and
//!   the drain blocks until the last in-flight permit is released —
//!   raising the caller's cancel flag once the drain deadline passes so
//!   stuck runs abort through their cooperative watch.
//!
//! Admission is tracked by an RAII [`Permit`]: dropping it releases the
//! in-flight slot and wakes both the next waiter and any pending drain.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The lifecycle state of a [`KernelService`](crate::KernelService).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceState {
    /// Accepting and executing requests.
    Running,
    /// A drain is in progress: new work is rejected, in-flight work is
    /// completing (or being deadline-cancelled).
    Draining,
    /// Drained: no requests in flight, new work is rejected until
    /// [`KernelService::resume`](crate::KernelService::resume).
    Stopped,
}

impl ServiceState {
    /// A short stable label (`running` / `draining` / `stopped`).
    pub fn label(self) -> &'static str {
        match self {
            ServiceState::Running => "running",
            ServiceState::Draining => "draining",
            ServiceState::Stopped => "stopped",
        }
    }
}

impl fmt::Display for ServiceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why [`AdmissionQueue::acquire`] refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum AdmitError {
    /// The in-flight limit and the wait queue are both full (or the limit
    /// is zero).
    Overloaded { in_flight: usize, limit: usize, queued: usize },
    /// The request queued but its deadline expired before a slot freed.
    QueueTimeout { waited_ms: u64, depth: usize },
    /// The service is draining or stopped.
    ShuttingDown { state: ServiceState },
}

struct QueueInner {
    state: ServiceState,
    in_flight: usize,
    /// Tickets of queued waiters, in arrival order (front is next to admit).
    waiting: VecDeque<u64>,
    next_ticket: u64,
}

/// The admission gate: a bounded in-flight counter plus a bounded FIFO wait
/// queue, with drain/resume lifecycle transitions.
pub(crate) struct AdmissionQueue {
    max_in_flight: usize,
    queue_depth: usize,
    inner: Mutex<QueueInner>,
    cond: Condvar,
}

/// An admitted request's RAII slot: dropping it releases the in-flight
/// counter and wakes the next waiter (and any pending drain).
pub(crate) struct Permit<'a> {
    queue: &'a AdmissionQueue,
    /// How long the request waited for admission.
    pub(crate) waited: Duration,
    /// Whether the request had to queue (false = fast-path admission).
    pub(crate) was_queued: bool,
}

impl fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Permit")
            .field("waited", &self.waited)
            .field("was_queued", &self.was_queued)
            .finish()
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut inner = self.queue.lock();
        inner.in_flight = inner.in_flight.saturating_sub(1);
        drop(inner);
        self.queue.cond.notify_all();
    }
}

impl AdmissionQueue {
    pub(crate) fn new(max_in_flight: usize, queue_depth: usize) -> Self {
        AdmissionQueue {
            max_in_flight,
            queue_depth,
            inner: Mutex::new(QueueInner {
                state: ServiceState::Running,
                in_flight: 0,
                waiting: VecDeque::new(),
                next_ticket: 0,
            }),
            cond: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admit a request, queueing up to `deadline` when the in-flight limit
    /// is saturated.  FIFO fair: a new arrival never barges past waiters.
    pub(crate) fn acquire(&self, deadline: Option<Instant>) -> Result<Permit<'_>, AdmitError> {
        let start = Instant::now();
        let mut inner = self.lock();
        if inner.state != ServiceState::Running {
            return Err(AdmitError::ShuttingDown { state: inner.state });
        }
        if self.max_in_flight == 0 {
            // A zero limit admits nothing; queueing would never resolve.
            return Err(AdmitError::Overloaded {
                in_flight: inner.in_flight,
                limit: 0,
                queued: inner.waiting.len(),
            });
        }
        if inner.in_flight < self.max_in_flight && inner.waiting.is_empty() {
            inner.in_flight += 1;
            return Ok(Permit { queue: self, waited: start.elapsed(), was_queued: false });
        }
        if inner.waiting.len() >= self.queue_depth {
            return Err(AdmitError::Overloaded {
                in_flight: inner.in_flight,
                limit: self.max_in_flight,
                queued: inner.waiting.len(),
            });
        }
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.waiting.push_back(ticket);
        loop {
            if inner.state != ServiceState::Running {
                let state = inner.state;
                Self::unqueue(&mut inner, ticket);
                drop(inner);
                self.cond.notify_all();
                return Err(AdmitError::ShuttingDown { state });
            }
            if inner.waiting.front() == Some(&ticket) && inner.in_flight < self.max_in_flight {
                inner.waiting.pop_front();
                inner.in_flight += 1;
                drop(inner);
                // More than one slot may have freed at once: wake the next
                // waiter so admission cascades.
                self.cond.notify_all();
                return Ok(Permit { queue: self, waited: start.elapsed(), was_queued: true });
            }
            match deadline {
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        Self::unqueue(&mut inner, ticket);
                        let depth = inner.waiting.len();
                        drop(inner);
                        self.cond.notify_all();
                        return Err(AdmitError::QueueTimeout {
                            waited_ms: start.elapsed().as_millis() as u64,
                            depth,
                        });
                    }
                    inner = self
                        .cond
                        .wait_timeout(inner, dl - now)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
                None => inner = self.cond.wait(inner).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }

    fn unqueue(inner: &mut QueueInner, ticket: u64) {
        if let Some(pos) = inner.waiting.iter().position(|&t| t == ticket) {
            inner.waiting.remove(pos);
        }
    }

    /// Drain: reject new work, wake queued waiters (they leave with
    /// `ShuttingDown`), and wait for every in-flight permit to be released.
    /// Once `deadline` passes, `cancel` is raised so in-flight runs abort
    /// through their cooperative watch; the drain still waits for them to
    /// resolve (they always do — the watch trips on every statement).
    /// Returns how long the drain took and whether it had to cancel.
    pub(crate) fn drain(&self, deadline: Duration, cancel: &AtomicBool) -> (Duration, bool) {
        let start = Instant::now();
        let mut inner = self.lock();
        inner.state = ServiceState::Draining;
        drop(inner);
        self.cond.notify_all();

        let mut cancelled = false;
        let mut inner = self.lock();
        loop {
            if inner.in_flight == 0 && inner.waiting.is_empty() {
                inner.state = ServiceState::Stopped;
                break;
            }
            if !cancelled && start.elapsed() >= deadline {
                cancel.store(true, Ordering::SeqCst);
                cancelled = true;
            }
            // Tick instead of waiting the full remaining deadline so the
            // cancel flag is raised promptly even if no permit is released.
            let tick = if cancelled {
                Duration::from_millis(5)
            } else {
                deadline.saturating_sub(start.elapsed()).min(Duration::from_millis(5))
            };
            inner = self
                .cond
                .wait_timeout(inner, tick.max(Duration::from_millis(1)))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        drop(inner);
        self.cond.notify_all();
        (start.elapsed(), cancelled)
    }

    /// Leave `Draining`/`Stopped` and accept work again.
    pub(crate) fn resume(&self) {
        let mut inner = self.lock();
        inner.state = ServiceState::Running;
        drop(inner);
        self.cond.notify_all();
    }

    /// `(state, queued waiters, in flight)` — one consistent snapshot.
    pub(crate) fn snapshot(&self) -> (ServiceState, usize, usize) {
        let inner = self.lock();
        (inner.state, inner.waiting.len(), inner.in_flight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn fast_path_admits_below_the_limit() {
        let q = AdmissionQueue::new(2, 4);
        let p1 = q.acquire(None).unwrap();
        let p2 = q.acquire(None).unwrap();
        assert!(!p1.was_queued && !p2.was_queued);
        assert_eq!(q.snapshot(), (ServiceState::Running, 0, 2));
        drop(p1);
        drop(p2);
        assert_eq!(q.snapshot(), (ServiceState::Running, 0, 0));
    }

    #[test]
    fn zero_limit_is_an_immediate_overload() {
        let q = AdmissionQueue::new(0, 16);
        let res = q.acquire(None);
        match res {
            Err(AdmitError::Overloaded { limit: 0, .. }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn a_full_queue_overloads_instantly() {
        // Depth 0: saturation falls straight back to the hard shed.
        let q = AdmissionQueue::new(1, 0);
        let _held = q.acquire(None).unwrap();
        let res = q.acquire(Some(Instant::now() + Duration::from_secs(5)));
        match res {
            Err(AdmitError::Overloaded { in_flight: 1, limit: 1, queued: 0 }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }

    #[test]
    fn an_expired_deadline_times_out_instead_of_waiting() {
        let q = AdmissionQueue::new(1, 4);
        let _held = q.acquire(None).unwrap();
        let res = q.acquire(Some(Instant::now() - Duration::from_millis(1)));
        match res {
            Err(AdmitError::QueueTimeout { depth: 0, .. }) => {}
            other => panic!("expected QueueTimeout, got {other:?}"),
        }
    }

    #[test]
    fn waiters_are_admitted_in_fifo_order() {
        let q = AdmissionQueue::new(1, 8);
        let order = StdMutex::new(Vec::new());
        let held = q.acquire(None).unwrap();
        std::thread::scope(|scope| {
            // Enqueue three waiters one at a time, confirming each is queued
            // before starting the next so arrival order is deterministic.
            for id in 0..3usize {
                let q = &q;
                let order = &order;
                scope.spawn(move || {
                    let permit = q.acquire(None).unwrap();
                    assert!(permit.was_queued);
                    order.lock().unwrap().push(id);
                });
                while q.snapshot().1 < id + 1 {
                    std::thread::yield_now();
                }
            }
            drop(held);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn drain_rejects_new_work_until_resume() {
        let q = AdmissionQueue::new(4, 4);
        let cancel = AtomicBool::new(false);
        let (_, cancelled) = q.drain(Duration::from_secs(1), &cancel);
        assert!(!cancelled, "nothing in flight: drain must not cancel");
        assert!(!cancel.load(Ordering::SeqCst));
        assert_eq!(q.snapshot().0, ServiceState::Stopped);
        match q.acquire(None) {
            Err(AdmitError::ShuttingDown { state: ServiceState::Stopped }) => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
        q.resume();
        assert_eq!(q.snapshot().0, ServiceState::Running);
        assert!(q.acquire(None).is_ok());
    }

    #[test]
    fn drain_wakes_queued_waiters_and_waits_for_permits() {
        let q = AdmissionQueue::new(1, 4);
        let cancel = AtomicBool::new(false);
        let held = q.acquire(None).unwrap();
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| q.acquire(None));
            while q.snapshot().1 < 1 {
                std::thread::yield_now();
            }
            let drainer = scope.spawn(|| q.drain(Duration::from_secs(5), &cancel));
            // The queued waiter must be woken out with a typed shutdown.
            match waiter.join().unwrap() {
                Err(AdmitError::ShuttingDown { .. }) => {}
                other => panic!("expected ShuttingDown, got {other:?}"),
            }
            // The drain blocks on the held permit; releasing it completes
            // the drain without cancellation.
            drop(held);
            let (_, cancelled) = drainer.join().unwrap();
            assert!(!cancelled);
        });
        assert_eq!(q.snapshot(), (ServiceState::Stopped, 0, 0));
    }

    #[test]
    fn an_overrun_drain_raises_the_cancel_flag() {
        let q = AdmissionQueue::new(1, 4);
        let cancel = AtomicBool::new(false);
        let held = q.acquire(None).unwrap();
        std::thread::scope(|scope| {
            let drainer = scope.spawn(|| q.drain(Duration::ZERO, &cancel));
            // The zero-deadline drain immediately raises the cancel flag ...
            while !cancel.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // ... but still waits for the permit to be released.
            drop(held);
            let (_, cancelled) = drainer.join().unwrap();
            assert!(cancelled);
        });
        assert_eq!(q.snapshot().0, ServiceState::Stopped);
    }

    #[test]
    fn states_have_stable_labels() {
        assert_eq!(ServiceState::Running.label(), "running");
        assert_eq!(ServiceState::Draining.to_string(), "draining");
        assert_eq!(ServiceState::Stopped.to_string(), "stopped");
    }
}
