//! Per-structure circuit breakers.
//!
//! The degradation ladder makes a faulting kernel *correct* (every tier is
//! bit-identical), but not *cheap*: a structure that faults on every request
//! pays the fast tier, the quarantine recompile, and possibly several more
//! tiers, every single time.  The [`BreakerBoard`] tracks consecutive
//! tier-faults per cache key; once a structure crosses the configured
//! threshold its breaker **opens** and subsequent requests short-circuit —
//! either straight to the tree-walk oracle tier (still bit-identical, no
//! wasted fast-tier attempts) or to a typed `CircuitOpen` error, per
//! [`BreakerPolicy`].  After a cooldown one **half-open probe** request is
//! let through at full tier order; a clean probe closes the breaker, a
//! faulting one re-opens it.
//!
//! Transitions are driven entirely by recorded fault counts, so a
//! deterministic fault plan drives deterministic breaker state — the unit
//! tests assert the whole open → half-open → close cycle without a single
//! sleep.  A threshold of zero disables the board entirely (the default).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What an open breaker does to requests for its structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPolicy {
    /// Short-circuit straight to the tree-walk oracle tier: the request is
    /// still served bit-identically, skipping the tiers known to fault.
    Degrade,
    /// Reject with a typed `CircuitOpen` error.
    Reject,
}

/// The state of one structure's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests run the full tier ladder.
    Closed,
    /// Too many consecutive faults: requests short-circuit.
    Open,
    /// Cooldown elapsed: one probe request is trying the full ladder.
    HalfOpen,
}

impl BreakerState {
    /// A short stable label (`closed` / `open` / `half_open`).
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What [`BreakerBoard::admit`] decided for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerDecision {
    /// Run normally; `probe == true` marks the single half-open probe whose
    /// outcome decides the breaker's fate.
    Allow { probe: bool },
    /// The breaker is open (or another probe is in flight).
    ShortCircuit { consecutive_faults: u32, cooldown_ms: u64 },
}

struct Breaker {
    state: BreakerState,
    consecutive_faults: u32,
    opened_at: Instant,
    probing: bool,
}

impl Breaker {
    fn closed() -> Self {
        Breaker {
            state: BreakerState::Closed,
            consecutive_faults: 0,
            opened_at: Instant::now(),
            probing: false,
        }
    }
}

/// One breaker per cache key (kernel structure).  `threshold == 0` disables
/// the board: every request is allowed and nothing is recorded.
pub(crate) struct BreakerBoard {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<HashMap<(u64, u64), Breaker>>,
}

impl BreakerBoard {
    pub(crate) fn new(threshold: u32, cooldown: Duration) -> Self {
        BreakerBoard { threshold, cooldown, inner: Mutex::new(HashMap::new()) }
    }

    fn enabled(&self) -> bool {
        self.threshold > 0
    }

    /// Decide whether a request for `key` runs the full ladder, runs as the
    /// half-open probe, or short-circuits.
    pub(crate) fn admit(&self, key: (u64, u64)) -> BreakerDecision {
        if !self.enabled() {
            return BreakerDecision::Allow { probe: false };
        }
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let Some(b) = map.get_mut(&key) else {
            return BreakerDecision::Allow { probe: false };
        };
        match b.state {
            BreakerState::Closed => BreakerDecision::Allow { probe: false },
            BreakerState::Open if b.opened_at.elapsed() >= self.cooldown => {
                b.state = BreakerState::HalfOpen;
                b.probing = true;
                BreakerDecision::Allow { probe: true }
            }
            BreakerState::HalfOpen if !b.probing => {
                b.probing = true;
                BreakerDecision::Allow { probe: true }
            }
            BreakerState::Open | BreakerState::HalfOpen => BreakerDecision::ShortCircuit {
                consecutive_faults: b.consecutive_faults,
                cooldown_ms: self.cooldown.as_millis() as u64,
            },
        }
    }

    /// Record a served (non-short-circuited) request's tier-fault count.
    /// Returns `true` when this record *opened* the breaker (closed → open,
    /// or a failed probe re-opening it).
    pub(crate) fn record(&self, key: (u64, u64), faults: u32, probe: bool) -> bool {
        if !self.enabled() {
            return false;
        }
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let b = map.entry(key).or_insert_with(Breaker::closed);
        if probe {
            b.probing = false;
            if faults == 0 {
                *b = Breaker::closed();
                false
            } else {
                b.state = BreakerState::Open;
                b.opened_at = Instant::now();
                b.consecutive_faults += faults;
                true
            }
        } else {
            match b.state {
                BreakerState::Closed => {
                    if faults == 0 {
                        b.consecutive_faults = 0;
                        false
                    } else {
                        b.consecutive_faults += faults;
                        if b.consecutive_faults >= self.threshold {
                            b.state = BreakerState::Open;
                            b.opened_at = Instant::now();
                            true
                        } else {
                            false
                        }
                    }
                }
                // A request admitted before the breaker opened resolved
                // after it: only the probe may close an open breaker.
                BreakerState::Open | BreakerState::HalfOpen => {
                    b.consecutive_faults += faults;
                    false
                }
            }
        }
    }

    /// The probe's checkout failed before it could run: restore `Open` so
    /// the breaker is not wedged half-open with a phantom probe.
    pub(crate) fn abort_probe(&self, key: (u64, u64)) {
        if !self.enabled() {
            return;
        }
        let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(b) = map.get_mut(&key) {
            if b.probing {
                b.probing = false;
                b.state = BreakerState::Open;
                b.opened_at = Instant::now();
            }
        }
    }

    /// `(closed, open, half_open)` breaker counts across all tracked keys.
    pub(crate) fn counts(&self) -> (usize, usize, usize) {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut counts = (0, 0, 0);
        for b in map.values() {
            match b.state {
                BreakerState::Closed => counts.0 += 1,
                BreakerState::Open => counts.1 += 1,
                BreakerState::HalfOpen => counts.2 += 1,
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: (u64, u64) = (1, 2);
    const HOUR: Duration = Duration::from_secs(3600);

    #[test]
    fn zero_threshold_disables_the_board() {
        let board = BreakerBoard::new(0, Duration::ZERO);
        assert_eq!(board.admit(KEY), BreakerDecision::Allow { probe: false });
        assert!(!board.record(KEY, 99, false));
        assert_eq!(board.admit(KEY), BreakerDecision::Allow { probe: false });
        assert_eq!(board.counts(), (0, 0, 0));
    }

    #[test]
    fn consecutive_faults_open_at_the_threshold() {
        let board = BreakerBoard::new(3, HOUR);
        assert!(!board.record(KEY, 1, false));
        assert!(!board.record(KEY, 1, false));
        assert_eq!(board.admit(KEY), BreakerDecision::Allow { probe: false });
        assert!(board.record(KEY, 1, false), "third fault crosses the threshold");
        match board.admit(KEY) {
            BreakerDecision::ShortCircuit { consecutive_faults: 3, .. } => {}
            other => panic!("expected ShortCircuit, got {other:?}"),
        }
        assert_eq!(board.counts(), (0, 1, 0));
    }

    #[test]
    fn a_clean_request_resets_the_consecutive_count() {
        let board = BreakerBoard::new(2, HOUR);
        assert!(!board.record(KEY, 1, false));
        assert!(!board.record(KEY, 0, false)); // resets
        assert!(!board.record(KEY, 1, false)); // back to 1, below threshold
        assert_eq!(board.admit(KEY), BreakerDecision::Allow { probe: false });
    }

    #[test]
    fn a_burst_of_faults_in_one_request_opens_immediately() {
        let board = BreakerBoard::new(2, HOUR);
        assert!(board.record(KEY, 2, false), "one request with 2 tier-faults opens");
        assert!(matches!(board.admit(KEY), BreakerDecision::ShortCircuit { .. }));
    }

    #[test]
    fn cooldown_admits_a_single_probe_and_a_clean_probe_closes() {
        // A zero cooldown makes open → half-open immediate and deterministic.
        let board = BreakerBoard::new(1, Duration::ZERO);
        assert!(board.record(KEY, 1, false));
        assert_eq!(board.admit(KEY), BreakerDecision::Allow { probe: true });
        // A second request while the probe is in flight still short-circuits.
        assert!(matches!(board.admit(KEY), BreakerDecision::ShortCircuit { .. }));
        assert_eq!(board.counts(), (0, 0, 1));
        assert!(!board.record(KEY, 0, true), "clean probe closes without opening");
        assert_eq!(board.admit(KEY), BreakerDecision::Allow { probe: false });
        assert_eq!(board.counts(), (1, 0, 0));
    }

    #[test]
    fn a_faulting_probe_reopens() {
        let board = BreakerBoard::new(1, Duration::ZERO);
        assert!(board.record(KEY, 1, false));
        assert_eq!(board.admit(KEY), BreakerDecision::Allow { probe: true });
        assert!(board.record(KEY, 1, true), "a faulting probe counts as an open");
        // Zero cooldown: the next admit is immediately the next probe.
        assert_eq!(board.admit(KEY), BreakerDecision::Allow { probe: true });
    }

    #[test]
    fn within_cooldown_requests_short_circuit() {
        let board = BreakerBoard::new(1, HOUR);
        assert!(board.record(KEY, 1, false));
        for _ in 0..3 {
            assert!(matches!(board.admit(KEY), BreakerDecision::ShortCircuit { .. }));
        }
    }

    #[test]
    fn abort_probe_restores_open() {
        let board = BreakerBoard::new(1, Duration::ZERO);
        assert!(board.record(KEY, 1, false));
        assert_eq!(board.admit(KEY), BreakerDecision::Allow { probe: true });
        board.abort_probe(KEY);
        assert_eq!(board.counts(), (0, 1, 0));
        // The board is not wedged: the next admit probes again.
        assert_eq!(board.admit(KEY), BreakerDecision::Allow { probe: true });
    }

    #[test]
    fn states_have_stable_labels() {
        assert_eq!(BreakerState::Closed.label(), "closed");
        assert_eq!(BreakerState::Open.label(), "open");
        assert_eq!(BreakerState::HalfOpen.label(), "half_open");
    }
}
