//! Lowering of the non-loop statement forms: assignments, `where`, `multi`,
//! `sieve` and `pass`.

use finch_cin::{CinStmt, Reduction};
use finch_ir::{Expr, Stmt, Value};

use crate::error::CompileError;
use crate::lower::{loops, Binding, LowerCtx};

/// Lower a CIN statement to target IR.
pub(crate) fn lower_stmt(stmt: &CinStmt, ctx: &mut LowerCtx) -> Result<Vec<Stmt>, CompileError> {
    match stmt {
        CinStmt::Pass(_) => Ok(Vec::new()),
        CinStmt::Multi(stmts) => {
            let mut out = Vec::new();
            for s in stmts {
                out.extend(lower_stmt(s, ctx)?);
            }
            Ok(out)
        }
        CinStmt::Sieve { cond, body } => {
            let cond = ctx.resolve_expr(cond)?;
            let inner = lower_stmt(body, ctx)?;
            if inner.is_empty() {
                Ok(Vec::new())
            } else {
                Ok(vec![Stmt::if_then(cond, inner)])
            }
        }
        CinStmt::Where { consumer, producer } => {
            let mut out = Vec::new();
            // Result arrays are initialised as soon as they enter scope
            // (paper §5.1): re-initialise the producer's results here so a
            // `where` nested under a forall accumulates from scratch on
            // every iteration.
            for result in producer.results() {
                match ctx.bindings.get(result.name()) {
                    Some(Binding::Output(ob)) => {
                        out.extend(init_output(ob.buf, ob.len(), ob.init, ctx));
                    }
                    Some(Binding::Input(_)) => {
                        return Err(CompileError::UnsupportedWrite {
                            name: result.name().to_string(),
                        })
                    }
                    None => {
                        return Err(CompileError::UnknownTensor { name: result.name().to_string() })
                    }
                }
            }
            out.extend(lower_stmt(producer, ctx)?);
            out.extend(lower_stmt(consumer, ctx)?);
            Ok(out)
        }
        CinStmt::Forall { index, extent, body } => {
            loops::lower_forall(index, extent.as_ref(), body, ctx)
        }
        CinStmt::Assign { lhs, reduction, rhs } => {
            let out = ctx.output(lhs.tensor.name())?.clone();
            let pos = if out.shape.is_empty() {
                Expr::int(0)
            } else {
                ctx.linearize(lhs.tensor.name(), &out.shape, lhs)?
            };
            let value = ctx.resolve_expr(rhs)?;
            let reduce = match reduction {
                Reduction::Overwrite => None,
                Reduction::Reduce(op) => Some(LowerCtx::reduce_op(*op)?),
            };
            Ok(vec![Stmt::Store { buf: out.buf, index: pos, value, reduce }])
        }
    }
}

/// Emit code that fills an output buffer with its initial value.
pub(crate) fn init_output(
    buf: finch_ir::BufId,
    len: usize,
    init: f64,
    ctx: &mut LowerCtx,
) -> Vec<Stmt> {
    if len == 1 {
        return vec![Stmt::Store {
            buf,
            index: Expr::int(0),
            value: Expr::Lit(Value::Float(init)),
            reduce: None,
        }];
    }
    let q = ctx.names.fresh("init_q");
    vec![Stmt::For {
        var: q,
        lo: Expr::int(0),
        hi: Expr::int(len as i64 - 1),
        body: vec![Stmt::Store {
            buf,
            index: Expr::Var(q),
            value: Expr::Lit(Value::Float(init)),
            reduce: None,
        }],
    }]
}
