//! Lowering of the non-loop statement forms: assignments, `where`, `multi`,
//! `sieve` and `pass`.

use finch_cin::{CinStmt, IndexExpr, Reduction};
use finch_ir::{Expr, Stmt, Value};

use crate::error::CompileError;
use crate::lower::{loops, Binding, LowerCtx, OutputSink};

/// Lower a CIN statement to target IR.
pub(crate) fn lower_stmt(stmt: &CinStmt, ctx: &mut LowerCtx) -> Result<Vec<Stmt>, CompileError> {
    match stmt {
        CinStmt::Pass(_) => Ok(Vec::new()),
        CinStmt::Multi(stmts) => {
            let mut out = Vec::new();
            for s in stmts {
                out.extend(lower_stmt(s, ctx)?);
            }
            Ok(out)
        }
        CinStmt::Sieve { cond, body } => {
            let cond = ctx.resolve_expr(cond)?;
            let inner = lower_stmt(body, ctx)?;
            if inner.is_empty() {
                Ok(Vec::new())
            } else {
                Ok(vec![Stmt::if_then(cond, inner)])
            }
        }
        CinStmt::Where { consumer, producer } => {
            let mut out = Vec::new();
            // Result arrays are initialised as soon as they enter scope
            // (paper §5.1): re-initialise the producer's results here so a
            // `where` nested under a forall accumulates from scratch on
            // every iteration.
            for result in producer.results() {
                match ctx.bindings.get(result.name()) {
                    Some(Binding::Output(ob)) => match ob.sink {
                        OutputSink::Dense { buf } => {
                            out.extend(init_output(buf, ob.len(), ob.init, ctx));
                        }
                        OutputSink::SparseList { .. } => {
                            return Err(CompileError::Unsupported {
                                detail: format!(
                                    "sparse output `{}` cannot be a `where` producer; \
                                     appended assembly cannot be re-initialised per iteration",
                                    result.name()
                                ),
                            })
                        }
                    },
                    Some(Binding::Input(_)) => {
                        return Err(CompileError::UnsupportedWrite {
                            name: result.name().to_string(),
                        })
                    }
                    None => {
                        return Err(CompileError::UnknownTensor { name: result.name().to_string() })
                    }
                }
            }
            out.extend(lower_stmt(producer, ctx)?);
            out.extend(lower_stmt(consumer, ctx)?);
            Ok(out)
        }
        CinStmt::Forall { index, extent, body } => {
            loops::lower_forall(index, extent.as_ref(), body, ctx)
        }
        CinStmt::Assign { lhs, reduction, rhs } => {
            let out = ctx.output(lhs.tensor.name())?.clone();
            match out.sink {
                OutputSink::Dense { buf } => {
                    let pos = if out.specs.is_empty() {
                        Expr::int(0)
                    } else {
                        ctx.linearize(lhs.tensor.name(), &out.shape(), lhs)?
                    };
                    let value = ctx.resolve_expr(rhs)?;
                    let reduce = match reduction {
                        Reduction::Overwrite => None,
                        Reduction::Reduce(op) => Some(LowerCtx::reduce_op(*op)?),
                    };
                    Ok(vec![Stmt::Store { buf, index: pos, value, reduce }])
                }
                OutputSink::SparseList { idx, val, .. } => {
                    lower_sparse_assign(lhs, *reduction, rhs, idx, val, ctx)
                }
            }
        }
    }
}

/// Lower an assignment into a sparse-list output: the store becomes a pair
/// of appends — the innermost coordinate into `idx`, the computed value
/// into `val`.  The fiber itself is closed by the `FiberEnd` the loop
/// lowerer emits after the loop driving the sparse dimension.
fn lower_sparse_assign(
    lhs: &finch_cin::Access,
    reduction: Reduction,
    rhs: &finch_cin::CinExpr,
    idx: finch_ir::BufId,
    val: finch_ir::BufId,
    ctx: &mut LowerCtx,
) -> Result<Vec<Stmt>, CompileError> {
    let name = lhs.tensor.name();
    if let Reduction::Reduce(op) = reduction {
        return Err(CompileError::Unsupported {
            detail: format!(
                "`{}=` into sparse output `{name}` is not supported: appended assembly \
                 visits each coordinate once; use an overwriting `=` assignment",
                op.name()
            ),
        });
    }
    let out = ctx.output(name)?;
    let fill = out.init;
    if lhs.indices.len() != out.specs.len() {
        return Err(CompileError::RankMismatch {
            name: name.to_string(),
            rank: out.specs.len(),
            indices: lhs.indices.len(),
        });
    }
    // Every coordinate must be a plain loop index: the append order (and
    // the fiber boundaries) are driven by the enclosing loop nest.
    let mut coords = Vec::with_capacity(lhs.indices.len());
    for ix in &lhs.indices {
        match ix {
            IndexExpr::Var { index, .. } => coords.push(ctx.index_expr(index)?),
            _ => {
                return Err(CompileError::Unsupported {
                    detail: format!(
                        "index modifiers are not supported on sparse output access `{name}`"
                    ),
                })
            }
        }
    }
    // The sparse dimension must be driven by the *innermost* enclosing
    // loop: an inner loop over some other index would append the same
    // coordinate once per iteration, producing duplicate (out-of-order)
    // entries that only surface as a validity error at read time.  Reject
    // the shape up front instead.
    let sparse_index = match lhs.indices.last() {
        Some(IndexExpr::Var { index, .. }) => index,
        _ => unreachable!("checked above: every index is a plain variable"),
    };
    if ctx.loop_stack.last() != Some(sparse_index) {
        return Err(CompileError::Unsupported {
            detail: format!(
                "sparse output `{name}` must be written by the innermost enclosing loop \
                 (`{}`), which drives its compressed dimension; found the store under a \
                 loop over `{}`",
                sparse_index.name(),
                ctx.loop_stack.last().map_or("<none>", |v| v.name()),
            ),
        });
    }
    let coord = coords.pop().expect("sparse outputs have at least one dimension");
    let value = ctx.resolve_expr(rhs)?;
    // Writing the background value to a sparse output stores nothing: an
    // absent coordinate already reads as the fill, so statically-fill
    // stores are pruned.  This is what keeps the zero regions of a
    // coiteration (where the rewriter folded the value to the fill) from
    // materialising entries — the compressed output does work proportional
    // to its stored entries, not to the dimension.
    if value.as_lit() == Some(Value::Float(fill)) {
        return Ok(Vec::new());
    }
    Ok(vec![Stmt::Append { buf: idx, value: coord }, Stmt::Append { buf: val, value }])
}

/// Emit code that fills an output buffer with its initial value.
pub(crate) fn init_output(
    buf: finch_ir::BufId,
    len: usize,
    init: f64,
    ctx: &mut LowerCtx,
) -> Vec<Stmt> {
    if len == 1 {
        return vec![Stmt::Store {
            buf,
            index: Expr::int(0),
            value: Expr::Lit(Value::Float(init)),
            reduce: None,
        }];
    }
    let q = ctx.names.fresh("init_q");
    vec![Stmt::For {
        var: q,
        lo: Expr::int(0),
        hi: Expr::int(len as i64 - 1),
        body: vec![Stmt::Store {
            buf,
            index: Expr::Var(q),
            value: Expr::Lit(Value::Float(init)),
            reduce: None,
        }],
    }]
}
