//! Access bookkeeping: unfurling the accesses driven by a `forall` and
//! applying index modifiers (paper §8).

use finch_cin::{Access, IndexExpr, IndexVar, TensorRef};
use finch_formats::UnfurlLeaf;
use finch_ir::Expr;
use finch_looplets::{Looplet, Phase};

use crate::error::CompileError;
use crate::lower::{Binding, LowerCtx};

/// The lowering state of one access within the current loop.
#[derive(Debug, Clone)]
pub(crate) struct AccessState {
    /// The placeholder key identifying this access inside the loop body.
    pub key: String,
    /// The original tensor's name.
    pub tensor: String,
    /// The level currently being iterated.
    pub level: usize,
    /// Accumulated coordinate shift: `loop coordinate = array coordinate +
    /// shift` (introduced by `offset`/`window` modifiers and `Shift`
    /// looplets).
    pub shift: Expr,
    /// The looplet nest describing the current dimension, in array
    /// coordinates.
    pub nest: Looplet<UnfurlLeaf>,
}

impl AccessState {
    /// The current loop region translated into this access's array
    /// coordinates.
    pub fn to_array(&self, ext: &finch_ir::Extent) -> finch_ir::Extent {
        let neg = Expr::sub(Expr::int(0), self.shift.clone()).simplified();
        finch_ir::Extent {
            lo: Expr::add(ext.lo.clone(), neg.clone()).simplified(),
            hi: Expr::add(ext.hi.clone(), neg).simplified(),
        }
    }

    /// Translate an array-coordinate expression into loop coordinates.
    pub fn to_loop(&self, e: &Expr) -> Expr {
        Expr::add(e.clone(), self.shift.clone()).simplified()
    }
}

/// Should this access be unfurled by a `forall` over `index`?
///
/// True when the access has unconsumed indices, its first unconsumed index
/// is driven by `index`, and its tensor is a structured input.  Output
/// accesses are never unfurled: dense output reads resolve directly at
/// expression-resolution time, and output *writes* are handled by the
/// output's [`OutputSink`](crate::lower::OutputSink) — a linearised store
/// for dense sinks, appends (plus the loop lowerer's `FiberEnd`) for
/// sparse-list sinks.
pub(crate) fn driven_by(access: &Access, index: &IndexVar, ctx: &LowerCtx) -> bool {
    let Some(first) = access.indices.first() else { return false };
    if first.index_var() != index {
        return false;
    }
    let name = access.tensor.name();
    if LowerCtx::is_placeholder(name) {
        return true;
    }
    // Unknown tensors are claimed too, so that unfurling reports a precise
    // "tensor is not bound" error instead of a missing-extent error.
    !matches!(ctx.bindings.get(name), Some(Binding::Output(_)))
}

/// Unfurl one access for a `forall` over its first unconsumed index,
/// producing the placeholder key and the access state.
pub(crate) fn unfurl_access(
    access: &Access,
    ctx: &mut LowerCtx,
) -> Result<AccessState, CompileError> {
    let name = access.tensor.name().to_string();
    // Identify the tensor, the level to unfurl, and the fiber position.
    let (tensor_name, level, pos) = if LowerCtx::is_placeholder(&name) {
        let handle = ctx
            .fibers
            .get(&name)
            .cloned()
            .ok_or_else(|| CompileError::UnknownTensor { name: name.clone() })?;
        (handle.tensor, handle.level, handle.pos)
    } else {
        let bound = ctx.input(&name)?;
        if access.indices.len() != bound.ndim() {
            return Err(CompileError::RankMismatch {
                name: name.clone(),
                rank: bound.ndim(),
                indices: access.indices.len(),
            });
        }
        (name.clone(), 0, Expr::int(0))
    };
    let first = access.indices.first().expect("driven access has an index");
    let (nest, shift) = apply_index_expr(&tensor_name, level, &pos, first, ctx)?;
    let key = ctx.fresh_access_key();
    Ok(AccessState { key, tensor: tensor_name, level, shift, nest })
}

/// Apply an index expression (protocol annotation plus modifiers) to obtain
/// the looplet nest and coordinate shift of one access mode.
fn apply_index_expr(
    tensor: &str,
    level: usize,
    pos: &Expr,
    index_expr: &IndexExpr,
    ctx: &mut LowerCtx,
) -> Result<(Looplet<UnfurlLeaf>, Expr), CompileError> {
    match index_expr {
        IndexExpr::Var { protocol, .. } => {
            let bound = ctx.input(tensor)?.clone();
            let nest = bound.unfurl(level, pos, *protocol, &mut ctx.names);
            Ok((nest, Expr::int(0)))
        }
        IndexExpr::Offset { delta, base } => {
            let (nest, shift) = apply_index_expr(tensor, level, pos, base, ctx)?;
            let delta = ctx.resolve_expr(delta)?;
            Ok((nest, Expr::add(shift, delta).simplified()))
        }
        IndexExpr::Window { lo, hi, base } => {
            let (nest, shift) = apply_index_expr(tensor, level, pos, base, ctx)?;
            let lo = ctx.resolve_expr(lo)?;
            let _hi = ctx.resolve_expr(hi)?;
            // window(lo, hi)[k] accesses array coordinate lo + k, so the
            // loop coordinate is the array coordinate minus lo.
            Ok((nest, Expr::sub(shift, lo).simplified()))
        }
        IndexExpr::Permit { base } => {
            let (nest, shift) = apply_index_expr(tensor, level, pos, base, ctx)?;
            let dim = ctx.input(tensor)?.dim(level);
            let missing = || Looplet::Run {
                body: Box::new(Looplet::Leaf(UnfurlLeaf::Value(Expr::missing()))),
            };
            // The paper's permit protocol: missing before 0, the array's own
            // nest over its dimension, missing after the end.
            let wrapped = Looplet::Pipeline {
                phases: vec![
                    Phase { stride: Some(Expr::int(-1)), body: missing() },
                    Phase { stride: Some(Expr::int(dim as i64 - 1)), body: nest },
                    Phase { stride: None, body: missing() },
                ],
            };
            Ok((wrapped, shift))
        }
    }
}

/// Replace each matched access in the loop body with its placeholder.
pub(crate) fn substitute_placeholders(
    body: &finch_cin::CinStmt,
    table: &[(Access, String)],
) -> finch_cin::CinStmt {
    body.map_exprs(&mut |e| match e {
        finch_cin::CinExpr::Access(a) => {
            table.iter().find(|(orig, _)| orig == a).map(|(_, key)| {
                finch_cin::CinExpr::Access(Access {
                    tensor: TensorRef::new(key.clone()),
                    indices: a.indices[1..].to_vec(),
                })
            })
        }
        _ => None,
    })
}

/// Replace placeholder accesses by their resolved expressions.
pub(crate) fn substitute_resolved(
    body: &finch_cin::CinStmt,
    table: &[(String, finch_cin::CinExpr)],
) -> finch_cin::CinStmt {
    body.map_exprs(&mut |e| match e {
        finch_cin::CinExpr::Access(a) => {
            table.iter().find(|(key, _)| a.tensor.name() == key).map(|(_, repl)| repl.clone())
        }
        _ => None,
    })
}

/// Does the statement still mention an access with the given placeholder
/// key?  Used to drop iteration machinery for accesses that simplification
/// deleted (e.g. everything multiplied by a zero run).
pub(crate) fn mentions_key(body: &finch_cin::CinStmt, key: &str) -> bool {
    body.read_accesses().iter().any(|a| a.tensor.name() == key)
}
