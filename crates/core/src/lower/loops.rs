//! The forall lowerer: unfurling, style resolution and the looplet
//! lowerers (paper §6).

use finch_cin::{CinExpr, CinStmt, IndexExpr, IndexVar};
use finch_formats::UnfurlLeaf;
use finch_ir::{Expr, Extent, Stmt, Value};
use finch_looplets::{Looplet, Stepped, Style};

use crate::error::CompileError;
use crate::lower::access::{
    driven_by, mentions_key, substitute_placeholders, substitute_resolved, unfurl_access,
    AccessState,
};
use crate::lower::statements::lower_stmt;
use crate::lower::{Binding, FiberHandle, LowerCtx, OutputSink};

/// The state of one loop region being lowered: its extent (in loop
/// coordinates), the statement to execute, and the looplet state of every
/// access driven by the loop.
#[derive(Debug, Clone)]
pub(crate) struct LoopState {
    pub index: IndexVar,
    pub ext: Extent,
    pub body: CinStmt,
    pub accesses: Vec<AccessState>,
}

/// Lower `@forall index body`.
pub(crate) fn lower_forall(
    index: &IndexVar,
    extent: Option<&(CinExpr, CinExpr)>,
    body: &CinStmt,
    ctx: &mut LowerCtx,
) -> Result<Vec<Stmt>, CompileError> {
    // Sparse output fibers driven by this loop are closed right after it:
    // one `FiberEnd` per output whose innermost (sparse) dimension this
    // forall iterates, emitted on every exit path so the fiber boundary is
    // recorded even when the loop collapses to nothing.
    let fiber_ends = sparse_fiber_ends(index, body, ctx);

    // 1. Find the read accesses driven by this loop.
    let mut driven: Vec<finch_cin::Access> = Vec::new();
    for a in body.read_accesses() {
        if driven_by(&a, index, ctx) && !driven.contains(&a) {
            driven.push(a);
        }
    }

    // 2. Determine the loop extent.
    let ext = match extent {
        Some((lo, hi)) => Extent::new(ctx.resolve_expr(lo)?, ctx.resolve_expr(hi)?),
        None => infer_extent(index, &driven, body, ctx)?,
    };
    if let (Some(Value::Int(lo)), Some(Value::Int(hi))) = (ext.lo.as_lit(), ext.hi.as_lit()) {
        if lo > hi {
            return Ok(fiber_ends);
        }
    }

    // 3. Unfurl each driven access and substitute placeholders for them.
    let mut accesses = Vec::new();
    let mut table = Vec::new();
    for a in &driven {
        let state = unfurl_access(a, ctx)?;
        table.push((a.clone(), state.key.clone()));
        accesses.push(state);
    }
    let body = substitute_placeholders(body, &table);

    let state = LoopState { index: index.clone(), ext, body, accesses };
    let mut out = lower_loop(state, ctx)?;
    out.extend(fiber_ends);
    Ok(out)
}

/// The `FiberEnd` statements closing every sparse output fiber whose
/// innermost dimension is driven by a `forall` over `index` (paper §5: the
/// compressed level records its `pos` boundary when the fiber's loop ends).
fn sparse_fiber_ends(index: &IndexVar, body: &CinStmt, ctx: &LowerCtx) -> Vec<Stmt> {
    let mut ends: Vec<Stmt> = Vec::new();
    for a in body.write_accesses() {
        let Some(Binding::Output(ob)) = ctx.bindings.get(a.tensor.name()) else { continue };
        let OutputSink::SparseList { pos, idx, .. } = ob.sink else { continue };
        let drives =
            matches!(a.indices.last(), Some(IndexExpr::Var { index: v, .. }) if v == index);
        let seen = ends.iter().any(|s| matches!(s, Stmt::FiberEnd { pos: p, .. } if *p == pos));
        if drives && !seen {
            ends.push(Stmt::FiberEnd { pos, data: idx });
        }
    }
    ends
}

/// Infer the extent of a loop from the dimensions of the tensors it
/// accesses: the first driven access with a plain (unmodified) index wins;
/// otherwise the first output access indexed by the loop variable.
fn infer_extent(
    index: &IndexVar,
    driven: &[finch_cin::Access],
    body: &CinStmt,
    ctx: &LowerCtx,
) -> Result<Extent, CompileError> {
    for a in driven {
        if let Some(IndexExpr::Var { .. }) = a.indices.first() {
            let name = a.tensor.name();
            let (tensor, level) = if LowerCtx::is_placeholder(name) {
                let h = ctx
                    .fibers
                    .get(name)
                    .ok_or_else(|| CompileError::UnknownTensor { name: name.to_string() })?;
                (h.tensor.clone(), h.level)
            } else {
                (name.to_string(), 0)
            };
            let dim = ctx.input(&tensor)?.dim(level);
            return Ok(Extent::literal(0, dim as i64 - 1));
        }
    }
    // Fall back to a write access whose coordinates use this index.
    for a in body.write_accesses() {
        let dims: Option<Vec<usize>> = match ctx.bindings.get(a.tensor.name()) {
            Some(Binding::Output(out)) => Some(out.shape()),
            Some(Binding::Input(t)) => Some((0..t.ndim()).map(|k| t.dim(k)).collect()),
            None => None,
        };
        if let Some(dims) = dims {
            for (k, ix) in a.indices.iter().enumerate() {
                if let IndexExpr::Var { index: v, .. } = ix {
                    if v == index && k < dims.len() {
                        return Ok(Extent::literal(0, dims[k] as i64 - 1));
                    }
                }
            }
        }
    }
    Err(CompileError::CannotInferExtent { index: index.name().to_string() })
}

/// Lower one loop region by selecting the highest-priority looplet style
/// present and running the corresponding lowerer.
pub(crate) fn lower_loop(state: LoopState, ctx: &mut LowerCtx) -> Result<Vec<Stmt>, CompileError> {
    let style = Style::resolve_all(state.accesses.iter().map(|a| a.nest.style()));
    match style {
        None | Some(Style::Leaf) | Some(Style::Lookup) => finalize(state, ctx),
        Some(Style::Thunk) => lower_thunk(state, ctx),
        Some(Style::BindExtent) => lower_bind_extent(state, ctx),
        Some(Style::Shift) => lower_shift(state, ctx),
        Some(Style::Switch) => lower_switch(state, ctx),
        Some(Style::Run) => lower_run(state, ctx),
        Some(Style::Spike) => lower_spike(state, ctx),
        Some(Style::Pipeline) => lower_pipeline(state, ctx),
        Some(Style::Jumper) => lower_stepped(state, ctx, true),
        Some(Style::Stepper) => lower_stepped(state, ctx, false),
    }
}

// ---------------------------------------------------------------------------
// Wrapper lowerers
// ---------------------------------------------------------------------------

fn lower_thunk(mut state: LoopState, ctx: &mut LowerCtx) -> Result<Vec<Stmt>, CompileError> {
    let mut out = Vec::new();
    for a in &mut state.accesses {
        while let Looplet::Thunk { preamble, body } = a.nest.clone() {
            out.extend(preamble);
            a.nest = *body;
        }
    }
    out.extend(lower_loop(state, ctx)?);
    Ok(out)
}

fn lower_bind_extent(mut state: LoopState, ctx: &mut LowerCtx) -> Result<Vec<Stmt>, CompileError> {
    let mut out = Vec::new();
    let ext = state.ext.clone();
    for a in &mut state.accesses {
        while let Looplet::BindExtent { lo, hi, body } = a.nest.clone() {
            let array_ext = a.to_array(&ext);
            if let Some(v) = lo {
                out.push(Stmt::Let { var: v, init: array_ext.lo.clone() });
            }
            if let Some(v) = hi {
                out.push(Stmt::Let { var: v, init: array_ext.hi.clone() });
            }
            a.nest = *body;
        }
    }
    out.extend(lower_loop(state, ctx)?);
    Ok(out)
}

fn lower_shift(mut state: LoopState, ctx: &mut LowerCtx) -> Result<Vec<Stmt>, CompileError> {
    for a in &mut state.accesses {
        while let Looplet::Shift { delta, body } = a.nest.clone() {
            a.shift = Expr::add(a.shift.clone(), delta).simplified();
            a.nest = *body;
        }
    }
    lower_loop(state, ctx)
}

// ---------------------------------------------------------------------------
// Switch lowerer (paper §6.1 "Switches")
// ---------------------------------------------------------------------------

fn lower_switch(state: LoopState, ctx: &mut LowerCtx) -> Result<Vec<Stmt>, CompileError> {
    let k = state
        .accesses
        .iter()
        .position(|a| a.nest.style() == Style::Switch)
        .expect("switch style implies a switch access");
    let cases = match &state.accesses[k].nest {
        Looplet::Switch { cases } => cases.clone(),
        _ => unreachable!("style was switch"),
    };
    let mut lowered = Vec::new();
    for case in &cases {
        let mut branch = state.clone();
        branch.accesses[k].nest = case.body.clone();
        lowered.push((case.cond.clone(), lower_loop(branch, ctx)?));
    }
    // Build an if / else-if chain from the last case backwards.
    let mut chain: Vec<Stmt> = Vec::new();
    for (cond, body) in lowered.into_iter().rev() {
        if cond == Expr::bool(true) && chain.is_empty() {
            chain = body;
        } else {
            chain = vec![Stmt::If { cond, then_branch: body, else_branch: chain }];
        }
    }
    Ok(chain)
}

// ---------------------------------------------------------------------------
// Run lowerer (paper §6.1 "Runs and Rewriting")
// ---------------------------------------------------------------------------

fn lower_run(state: LoopState, ctx: &mut LowerCtx) -> Result<Vec<Stmt>, CompileError> {
    let LoopState { index, ext, body, accesses } = state;
    let mut remaining = Vec::new();
    let mut substitutions: Vec<(String, CinExpr)> = Vec::new();
    for a in accesses {
        if a.nest.style() != Style::Run {
            remaining.push(a);
            continue;
        }
        let Looplet::Run { body: run_body } = &a.nest else { unreachable!("style was run") };
        // A run's body may itself be wrapped in further runs (e.g. produced
        // by spike truncation); unwrap to the terminal leaf.
        let mut run_body = run_body.as_ref();
        while let Looplet::Run { body } = run_body {
            run_body = body.as_ref();
        }
        match run_body {
            Looplet::Leaf(UnfurlLeaf::Value(e)) => {
                substitutions.push((a.key.clone(), CinExpr::Dyn(e.clone())));
            }
            Looplet::Leaf(UnfurlLeaf::Subfiber(pos)) => {
                // A whole run of the same subfiber: the subfiber is constant
                // over the region, so later loops unfurl it as usual.
                ctx.fibers.insert(
                    a.key.clone(),
                    FiberHandle { tensor: a.tensor.clone(), level: a.level + 1, pos: pos.clone() },
                );
            }
            other => {
                return Err(CompileError::UnsupportedLooplet {
                    detail: format!("run of a non-leaf looplet ({})", other.style().priority()),
                })
            }
        }
    }
    let body = substitute_resolved(&body, &substitutions);
    if remaining.is_empty() {
        // Everything structured is resolved: hand the loop to the rewrite
        // engine, which may collapse it entirely (zero regions, invariant
        // additions over runs).
        let forall = CinStmt::Forall {
            index: index.clone(),
            extent: Some((CinExpr::Dyn(ext.lo.clone()), CinExpr::Dyn(ext.hi.clone()))),
            body: Box::new(body),
        };
        let simplified = ctx.rewriter.simplify_stmt(&forall);
        match simplified {
            CinStmt::Forall { body, .. } => {
                finalize(LoopState { index, ext, body: *body, accesses: Vec::new() }, ctx)
            }
            other => lower_stmt(&other, ctx),
        }
    } else {
        let body = ctx.rewriter.simplify_stmt(&body);
        if body.is_pass() {
            return Ok(Vec::new());
        }
        // Drop iteration machinery for accesses the simplifier deleted
        // (e.g. everything multiplied by a zero run).
        let remaining: Vec<AccessState> =
            remaining.into_iter().filter(|a| mentions_key(&body, &a.key)).collect();
        lower_loop(LoopState { index, ext, body, accesses: remaining }, ctx)
    }
}

// ---------------------------------------------------------------------------
// Spike lowerer (paper §6.1 "Spikes")
// ---------------------------------------------------------------------------

fn lower_spike(state: LoopState, ctx: &mut LowerCtx) -> Result<Vec<Stmt>, CompileError> {
    let ext = state.ext.clone();
    let body_ext =
        Extent::new(ext.lo.clone(), Expr::sub(ext.hi.clone(), Expr::int(1)).simplified());
    let tail_ext = Extent::point(ext.hi.clone());

    let mut body_state = state.clone();
    body_state.ext = body_ext.clone();
    let mut tail_state = state.clone();
    tail_state.ext = tail_ext.clone();

    for (a_body, a_tail) in body_state.accesses.iter_mut().zip(tail_state.accesses.iter_mut()) {
        if let Looplet::Spike { body, tail } = a_body.nest.clone() {
            a_body.nest = *body;
            a_tail.nest = *tail;
        } else {
            let old = a_body.to_array(&ext);
            a_body.nest = a_body.nest.truncate(&old, &a_body.to_array(&body_ext));
            a_tail.nest = a_tail.nest.truncate(&old, &a_tail.to_array(&tail_ext));
        }
    }

    let body_stmts = lower_loop(body_state, ctx)?;
    let tail_stmts = lower_loop(tail_state, ctx)?;

    let mut out = Vec::new();
    if !body_stmts.is_empty() {
        // The body region may be empty when the whole region is a single
        // point; decide statically when possible, at runtime otherwise.
        match body_ext.nonempty().as_lit() {
            Some(Value::Bool(true)) => out.extend(body_stmts),
            Some(Value::Bool(false)) => {}
            _ => out.push(Stmt::if_then(body_ext.nonempty(), body_stmts)),
        }
    }
    out.extend(tail_stmts);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Pipeline lowerer (paper §6.1 "Pipelines")
// ---------------------------------------------------------------------------

fn lower_pipeline(state: LoopState, ctx: &mut LowerCtx) -> Result<Vec<Stmt>, CompileError> {
    let k = state
        .accesses
        .iter()
        .position(|a| a.nest.style() == Style::Pipeline)
        .expect("pipeline style implies a pipeline access");
    let phases = match &state.accesses[k].nest {
        Looplet::Pipeline { phases } => phases.clone(),
        _ => unreachable!("style was pipeline"),
    };
    let ext = state.ext.clone();
    let shift_k = state.accesses[k].shift.clone();

    let cur = ctx.names.fresh("phase_start");
    let mut out = vec![Stmt::Let { var: cur, init: ext.lo.clone() }];

    for (pi, phase) in phases.iter().enumerate() {
        let is_last = pi + 1 == phases.len();
        // The phase ends at its declared stride (translated into loop
        // coordinates), clipped to the enclosing region.
        let stop_expr = match (&phase.stride, is_last) {
            (Some(stride), _) => {
                Expr::min(Expr::add(stride.clone(), shift_k.clone()).simplified(), ext.hi.clone())
                    .simplified()
            }
            (None, _) => ext.hi.clone(),
        };
        let stop = ctx.names.fresh("phase_stop");
        out.push(Stmt::Let { var: stop, init: stop_expr });
        let region = Extent::new(Expr::Var(cur), Expr::Var(stop));

        let mut branch = state.clone();
        branch.ext = region.clone();
        for (i, a) in branch.accesses.iter_mut().enumerate() {
            if i == k {
                let old_hi = match &phase.stride {
                    Some(stride) => stride.clone(),
                    None => a.to_array(&ext).hi,
                };
                let old = Extent::new(a.to_array(&region).lo, old_hi);
                a.nest = phase.body.truncate(&old, &a.to_array(&region));
            } else {
                a.nest = a.nest.truncate(&a.to_array(&ext), &a.to_array(&region));
            }
        }
        let mut branch_stmts = lower_loop(branch, ctx)?;
        if is_last && branch_stmts.is_empty() {
            continue;
        }
        branch_stmts
            .push(Stmt::Assign { var: cur, value: Expr::add(Expr::Var(stop), Expr::int(1)) });
        out.push(Stmt::if_then(Expr::le(Expr::Var(cur), Expr::Var(stop)), branch_stmts));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Stepper / Jumper lowerer (paper §6.1 "Steppers" and "Jumpers")
// ---------------------------------------------------------------------------

fn lower_stepped(
    state: LoopState,
    ctx: &mut LowerCtx,
    jumper: bool,
) -> Result<Vec<Stmt>, CompileError> {
    let wanted = if jumper { Style::Jumper } else { Style::Stepper };
    let participants: Vec<usize> = state
        .accesses
        .iter()
        .enumerate()
        .filter(|(_, a)| a.nest.style() == wanted)
        .map(|(i, _)| i)
        .collect();
    debug_assert!(!participants.is_empty(), "stepped style implies a participant");
    let ext = state.ext.clone();

    let payload = |a: &AccessState| -> Stepped<UnfurlLeaf> {
        match &a.nest {
            Looplet::Stepper(s) | Looplet::Jumper(s) => s.clone(),
            _ => unreachable!("participant is a stepper or jumper"),
        }
    };

    let mut out = Vec::new();
    // Position every participant's state at the start of the region.
    for &i in &participants {
        let a = &state.accesses[i];
        let s = payload(a);
        if let Some(seek) = &s.seek {
            out.push(Stmt::Let { var: seek.var, init: a.to_array(&ext).lo });
            out.extend(seek.body.clone());
        }
    }

    let cur = ctx.names.fresh("step_start");
    out.push(Stmt::Let { var: cur, init: ext.lo.clone() });

    let mut wbody: Vec<Stmt> = Vec::new();
    // Capture each participant's declared stride (in loop coordinates)
    // before the body may advance its state.
    let mut stride_vars = Vec::new();
    for &i in &participants {
        let a = &state.accesses[i];
        let s = payload(a);
        let v = ctx.names.fresh("stride");
        wbody.push(Stmt::Let { var: v, init: a.to_loop(&s.stride) });
        stride_vars.push(v);
    }
    // The step covers as much as possible without crossing a child
    // boundary: the minimum stride for steppers (two-finger merges), the
    // maximum for jumpers (leader election / galloping).
    let mut combined = Expr::Var(stride_vars[0]);
    for v in &stride_vars[1..] {
        combined = if jumper {
            Expr::max(combined, Expr::Var(*v))
        } else {
            Expr::min(combined, Expr::Var(*v))
        };
    }
    let chosen = ctx.names.fresh("step_stop");
    wbody.push(Stmt::Let { var: chosen, init: Expr::min(combined, ext.hi.clone()) });
    let region = Extent::new(Expr::Var(cur), Expr::Var(chosen));

    let mut branch = state.clone();
    branch.ext = region.clone();
    for (i, a) in branch.accesses.iter_mut().enumerate() {
        if let Some(pk) = participants.iter().position(|&p| p == i) {
            let s = payload(a);
            let neg = Expr::sub(Expr::int(0), a.shift.clone()).simplified();
            let old = Extent::new(
                a.to_array(&region).lo,
                Expr::add(Expr::Var(stride_vars[pk]), neg).simplified(),
            );
            a.nest = s.body.truncate(&old, &a.to_array(&region));
        } else {
            a.nest = a.nest.truncate(&a.to_array(&ext), &a.to_array(&region));
        }
    }
    wbody.extend(lower_loop(branch, ctx)?);

    // Advance whichever participants' current child ends exactly at the
    // chosen boundary.
    for (pk, &i) in participants.iter().enumerate() {
        let s = payload(&state.accesses[i]);
        if !s.next.is_empty() {
            wbody.push(Stmt::if_then(
                Expr::eq(Expr::Var(stride_vars[pk]), Expr::Var(chosen)),
                s.next.clone(),
            ));
        }
    }
    wbody.push(Stmt::Assign { var: cur, value: Expr::add(Expr::Var(chosen), Expr::int(1)) });

    out.push(Stmt::While { cond: Expr::le(Expr::Var(cur), ext.hi.clone()), body: wbody });
    Ok(out)
}

// ---------------------------------------------------------------------------
// Finalisation: the Lookup lowerer (paper §6.1 "Lookups")
// ---------------------------------------------------------------------------

fn finalize(state: LoopState, ctx: &mut LowerCtx) -> Result<Vec<Stmt>, CompileError> {
    let LoopState { index, ext, body, accesses } = state;
    let loop_var = ctx.names.fresh(index.name());
    let index_expr = Expr::Var(loop_var);

    let mut substitutions: Vec<(String, CinExpr)> = Vec::new();
    for a in &accesses {
        let coord = Expr::sub(index_expr.clone(), a.shift.clone()).simplified();
        if let Some(resolved) = resolve_nest(&a.nest, a, &coord, ctx)? {
            substitutions.push((a.key.clone(), resolved));
        }
    }
    let body = substitute_resolved(&body, &substitutions);
    let body = ctx.rewriter.simplify_stmt(&body);
    if body.is_pass() {
        return Ok(Vec::new());
    }

    let saved = ctx.index_bindings.insert(index.clone(), index_expr);
    ctx.loop_stack.push(index.clone());
    let inner = lower_stmt(&body, ctx);
    ctx.loop_stack.pop();
    match saved {
        Some(prev) => {
            ctx.index_bindings.insert(index.clone(), prev);
        }
        None => {
            ctx.index_bindings.remove(&index);
        }
    }
    let inner = inner?;
    if inner.is_empty() {
        return Ok(Vec::new());
    }

    if ext.is_point() {
        // A single-index region: skip the loop and bind the index directly
        // (paper: "when a loop has length one, Finch skips the loop").
        let mut out = vec![Stmt::Let { var: loop_var, init: ext.lo }];
        out.extend(inner);
        Ok(out)
    } else {
        Ok(vec![Stmt::For { var: loop_var, lo: ext.lo, hi: ext.hi, body: inner }])
    }
}

/// Resolve a looplet nest whose structure has been exhausted (lookups, runs
/// and leaves) at a concrete coordinate.
///
/// Returns `Some(expr)` when the access resolves to a value, or `None` when
/// it resolves to a subfiber (in which case the fiber handle is registered
/// and the placeholder access is left in place for inner loops).
fn resolve_nest(
    nest: &Looplet<UnfurlLeaf>,
    a: &AccessState,
    coord: &Expr,
    ctx: &mut LowerCtx,
) -> Result<Option<CinExpr>, CompileError> {
    match nest {
        Looplet::Leaf(UnfurlLeaf::Value(e)) => Ok(Some(CinExpr::Dyn(e.clone()))),
        Looplet::Leaf(UnfurlLeaf::Subfiber(pos)) => {
            ctx.fibers.insert(
                a.key.clone(),
                FiberHandle { tensor: a.tensor.clone(), level: a.level + 1, pos: pos.clone() },
            );
            Ok(None)
        }
        Looplet::Run { body } => resolve_nest(body, a, coord, ctx),
        Looplet::Lookup { var, body } => {
            let bound = body.substitute_var(*var, coord);
            resolve_nest(&bound, a, coord, ctx)
        }
        Looplet::Shift { delta, body } => {
            let inner = Expr::sub(coord.clone(), delta.clone()).simplified();
            resolve_nest(body, a, &inner, ctx)
        }
        other => Err(CompileError::UnsupportedLooplet {
            detail: format!(
                "looplet of style {:?} reached the lookup lowerer for tensor `{}`",
                other.style(),
                a.tensor
            ),
        }),
    }
}
