//! The lowering compiler: concrete index notation → target IR.
//!
//! Lowering proceeds exactly as described in the paper's §6: statements are
//! lowered node by node until a `forall` is reached; the forall's accesses
//! are unfurled into looplet nests; and the loop is then lowered by
//! repeatedly choosing the highest-priority looplet style present and
//! running the corresponding lowerer, which carves the region into
//! subregions, truncates the other looplets, and recurses.

pub(crate) mod access;
pub(crate) mod loops;
pub(crate) mod statements;

use std::collections::HashMap;

use finch_cin::{Access, CinExpr, CinOp, IndexVar};
use finch_formats::{BoundTensor, LevelSpec};
use finch_ir::{BinOp, BufId, BufferSet, Expr, Names, UnOp};
use finch_rewrite::Rewriter;

use crate::error::CompileError;

/// A tensor bound into a kernel: either a structured input or an output
/// assembled through an [`OutputSink`].
#[derive(Debug, Clone)]
pub(crate) enum Binding {
    /// A read-only structured input.
    Input(BoundTensor),
    /// An output tensor under assembly.
    Output(OutputBinding),
}

/// Where a kernel's writes land: the concrete output format.
///
/// The lowering compiler is format-polymorphic on the output side of an
/// assignment; each sink knows which buffers the generated code writes and
/// what per-store / per-fiber code the compiler must emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OutputSink {
    /// A preallocated dense buffer written in place at linearised
    /// coordinates (the classic output; initialised by generated code).
    Dense {
        /// The values buffer.
        buf: BufId,
    },
    /// An append-assembled sparse list on the innermost dimension: every
    /// executed store appends the coordinate to `idx` and the value to
    /// `val`, and the loop driving the sparse dimension is followed by a
    /// `FiberEnd` that closes the fiber in `pos`.
    SparseList {
        /// Fiber boundaries (`nfibers + 1` entries once assembled).
        pos: BufId,
        /// Coordinates of stored entries, in visit order.
        idx: BufId,
        /// Values of stored entries, parallel to `idx`.
        val: BufId,
    },
}

/// An output tensor under assembly: its requested level stack, fill/init
/// value, and the sink the generated code writes through.
#[derive(Debug, Clone)]
pub(crate) struct OutputBinding {
    pub specs: Vec<LevelSpec>,
    pub init: f64,
    pub sink: OutputSink,
}

impl OutputBinding {
    /// The dimension sizes, outermost first.
    pub fn shape(&self) -> Vec<usize> {
        self.specs.iter().map(|s| s.size()).collect()
    }

    /// Total number of elements of the dense materialisation.
    pub fn len(&self) -> usize {
        self.specs.iter().map(|s| s.size()).product::<usize>().max(1)
    }
}

/// A partially-resolved access: the next level of `tensor` to unfurl and
/// the position of the fiber within it.
#[derive(Debug, Clone)]
pub(crate) struct FiberHandle {
    pub tensor: String,
    pub level: usize,
    pub pos: Expr,
}

/// The state threaded through lowering.
pub(crate) struct LowerCtx {
    pub names: Names,
    pub bufs: BufferSet,
    pub bindings: HashMap<String, Binding>,
    pub index_bindings: HashMap<IndexVar, Expr>,
    /// The indices of the loops enclosing the statement being lowered,
    /// outermost first (used to check that a sparse output's innermost
    /// dimension is driven by the innermost enclosing loop).
    pub loop_stack: Vec<IndexVar>,
    pub fibers: HashMap<String, FiberHandle>,
    pub rewriter: Rewriter,
    next_acc: usize,
}

impl LowerCtx {
    /// Create a context over already-bound tensors.
    pub fn new(
        names: Names,
        bufs: BufferSet,
        bindings: HashMap<String, Binding>,
        rewriter: Rewriter,
    ) -> Self {
        LowerCtx {
            names,
            bufs,
            bindings,
            index_bindings: HashMap::new(),
            loop_stack: Vec::new(),
            fibers: HashMap::new(),
            rewriter,
            next_acc: 0,
        }
    }

    /// A fresh placeholder name for a partially-resolved access.
    pub fn fresh_access_key(&mut self) -> String {
        let key = format!("__acc{}", self.next_acc);
        self.next_acc += 1;
        key
    }

    /// Is this tensor name a compiler-internal placeholder?
    pub fn is_placeholder(name: &str) -> bool {
        name.starts_with("__acc")
    }

    /// Look up a bound input tensor.
    pub fn input(&self, name: &str) -> Result<&BoundTensor, CompileError> {
        match self.bindings.get(name) {
            Some(Binding::Input(t)) => Ok(t),
            Some(Binding::Output(_)) => Err(CompileError::Unsupported {
                detail: format!("tensor `{name}` is an output, expected an input"),
            }),
            None => Err(CompileError::UnknownTensor { name: name.to_string() }),
        }
    }

    /// Look up a bound output tensor.
    pub fn output(&self, name: &str) -> Result<&OutputBinding, CompileError> {
        match self.bindings.get(name) {
            Some(Binding::Output(o)) => Ok(o),
            Some(Binding::Input(_)) => {
                Err(CompileError::UnsupportedWrite { name: name.to_string() })
            }
            None => Err(CompileError::UnknownTensor { name: name.to_string() }),
        }
    }

    /// The currently-bound target expression of an index variable.
    pub fn index_expr(&self, index: &IndexVar) -> Result<Expr, CompileError> {
        self.index_bindings
            .get(index)
            .cloned()
            .ok_or_else(|| CompileError::UnboundIndex { index: index.name().to_string() })
    }

    /// Resolve a CIN expression, all of whose accesses must already be
    /// resolved (or refer to readable dense outputs / scalar inputs), to a
    /// target-IR expression.
    pub fn resolve_expr(&self, expr: &CinExpr) -> Result<Expr, CompileError> {
        match expr {
            CinExpr::Literal(v) => Ok(Expr::Lit(*v)),
            CinExpr::Dyn(e) => Ok(e.clone()),
            CinExpr::Index(i) => self.index_expr(i),
            CinExpr::Access(a) => self.resolve_access_expr(a),
            CinExpr::Call { op, args } => {
                let args: Vec<Expr> =
                    args.iter().map(|a| self.resolve_expr(a)).collect::<Result<_, _>>()?;
                self.resolve_call(*op, args)
            }
        }
    }

    fn resolve_access_expr(&self, a: &Access) -> Result<Expr, CompileError> {
        let name = a.tensor.name();
        if Self::is_placeholder(name) {
            // A placeholder that survived to expression resolution still has
            // unconsumed indices: the loop order cannot drive it.
            let original =
                self.fibers.get(name).map(|h| h.tensor.clone()).unwrap_or_else(|| name.to_string());
            return Err(CompileError::NonConcordantAccess { name: original });
        }
        match self.bindings.get(name) {
            None => Err(CompileError::UnknownTensor { name: name.to_string() }),
            Some(Binding::Output(out)) => match out.sink {
                OutputSink::Dense { buf } => {
                    let pos = self.linearize(name, &out.shape(), a)?;
                    Ok(Expr::load(buf, pos))
                }
                OutputSink::SparseList { .. } => Err(CompileError::Unsupported {
                    detail: format!(
                        "sparse output `{name}` cannot be read back inside the kernel; \
                         finalize it with `output_tensor` and re-bind it as an input"
                    ),
                }),
            },
            Some(Binding::Input(t)) => {
                if t.ndim() == 0 && a.indices.is_empty() {
                    Ok(t.scalar_value())
                } else {
                    Err(CompileError::NonConcordantAccess { name: name.to_string() })
                }
            }
        }
    }

    /// Row-major linearisation of a plain (modifier-free) access into a
    /// dense tensor of the given shape.
    pub fn linearize(&self, name: &str, shape: &[usize], a: &Access) -> Result<Expr, CompileError> {
        if a.indices.len() != shape.len() {
            return Err(CompileError::RankMismatch {
                name: name.to_string(),
                rank: shape.len(),
                indices: a.indices.len(),
            });
        }
        let mut pos = Expr::int(0);
        for (ix, &dim) in a.indices.iter().zip(shape.iter()) {
            let coord = match ix {
                finch_cin::IndexExpr::Var { index, .. } => self.index_expr(index)?,
                _ => {
                    return Err(CompileError::Unsupported {
                        detail: format!(
                            "index modifiers are not supported on dense access `{name}`"
                        ),
                    })
                }
            };
            pos = Expr::add(Expr::mul(pos, Expr::int(dim as i64)), coord).simplified();
        }
        Ok(pos)
    }

    fn resolve_call(&self, op: CinOp, args: Vec<Expr>) -> Result<Expr, CompileError> {
        let fold = |bin: BinOp, args: Vec<Expr>| -> Result<Expr, CompileError> {
            let mut it = args.into_iter();
            let first = it.next().ok_or_else(|| CompileError::Unsupported {
                detail: format!("operator `{}` applied to no arguments", op.name()),
            })?;
            Ok(it.fold(first, |acc, e| Expr::binary(bin, acc, e)))
        };
        let exactly2 = |bin: BinOp, args: Vec<Expr>| -> Result<Expr, CompileError> {
            if args.len() != 2 {
                return Err(CompileError::Unsupported {
                    detail: format!("operator `{}` expects two arguments", op.name()),
                });
            }
            let mut it = args.into_iter();
            let a = it.next().expect("two arguments");
            let b = it.next().expect("two arguments");
            Ok(Expr::binary(bin, a, b))
        };
        let exactly1 = |un: UnOp, mut args: Vec<Expr>| -> Result<Expr, CompileError> {
            if args.len() != 1 {
                return Err(CompileError::Unsupported {
                    detail: format!("operator `{}` expects one argument", op.name()),
                });
            }
            Ok(Expr::unary(un, args.remove(0)))
        };
        match op {
            CinOp::Add => fold(BinOp::Add, args),
            CinOp::Mul => fold(BinOp::Mul, args),
            CinOp::Min => fold(BinOp::Min, args),
            CinOp::Max => fold(BinOp::Max, args),
            CinOp::And => fold(BinOp::And, args),
            CinOp::Or => fold(BinOp::Or, args),
            CinOp::Sub => exactly2(BinOp::Sub, args),
            CinOp::Div => exactly2(BinOp::Div, args),
            CinOp::Eq => exactly2(BinOp::Eq, args),
            CinOp::Ne => exactly2(BinOp::Ne, args),
            CinOp::Lt => exactly2(BinOp::Lt, args),
            CinOp::Le => exactly2(BinOp::Le, args),
            CinOp::Gt => exactly2(BinOp::Gt, args),
            CinOp::Ge => exactly2(BinOp::Ge, args),
            CinOp::Coalesce => Ok(Expr::Coalesce(args)),
            CinOp::Sqrt => exactly1(UnOp::Sqrt, args),
            CinOp::Abs => exactly1(UnOp::Abs, args),
            CinOp::Round => exactly1(UnOp::Round, args),
            CinOp::Neg => exactly1(UnOp::Neg, args),
            CinOp::Not => exactly1(UnOp::Not, args),
        }
    }

    /// Map a CIN reduction operator onto a target-IR store reduction.
    pub fn reduce_op(op: CinOp) -> Result<BinOp, CompileError> {
        match op {
            CinOp::Add => Ok(BinOp::Add),
            CinOp::Mul => Ok(BinOp::Mul),
            CinOp::Min => Ok(BinOp::Min),
            CinOp::Max => Ok(BinOp::Max),
            CinOp::And => Ok(BinOp::And),
            CinOp::Or => Ok(BinOp::Or),
            other => Err(CompileError::Unsupported {
                detail: format!("`{}` is not a supported reduction operator", other.name()),
            }),
        }
    }
}
