//! A resilient, long-lived kernel service.
//!
//! [`KernelService`] owns a bounded LRU cache of [`CompiledKernel`]s keyed by
//! kernel *structure* — the CIN program text, every input's level formats and
//! sizes (not its data), the requested output formats, and the optimisation
//! configuration.  Requests whose structure matches a cached entry skip
//! compilation entirely: the entry's input buffers are overwritten in place
//! ([`CompiledKernel::rebind_input`]) and the persistent VM re-runs without
//! allocating.
//!
//! The service is hardened along four axes:
//!
//! 1. **Deadlines** — each request may carry a wall-clock deadline, enforced
//!    cooperatively by a [`Watch`] on the VM's step-budget path and while
//!    queueing on a busy cache slot.  Expiry surfaces as the typed
//!    [`RuntimeError::Deadline`], never as a stuck worker.
//! 2. **Panic isolation** — every compile and run is wrapped in
//!    `catch_unwind`.  A panicking entry is quarantined (poisoned), recompiled
//!    once after a short backoff, and evicted if the retry also faults.
//! 3. **Degradation ladder** — a faulting kernel falls back through
//!    progressively simpler execution tiers ([`Tier`]): SIMD/parallel
//!    bytecode → typed serial bytecode → untyped bytecode → the tree-walk
//!    oracle.  All tiers run at the same [`OptLevel`], so a degraded response
//!    is bit-identical to the fast path's.
//! 4. **Deadline-aware admission** — past the in-flight limit, requests
//!    queue FIFO-fairly up to their remaining deadline instead of shedding
//!    instantly; behind the bounded queue the typed
//!    [`ServiceError::Overloaded`] still applies, and a waiter whose
//!    deadline expires leaves with the distinct
//!    [`ServiceError::QueueTimeout`].  An optional output allocation budget
//!    bounds memory per request.
//! 5. **Per-structure circuit breakers** — a structure that keeps faulting
//!    trips its breaker ([`crate::BreakerState`]): requests short-circuit
//!    straight to the oracle tier (or a typed
//!    [`ServiceError::CircuitOpen`], per [`BreakerPolicy`]) until a
//!    half-open probe proves the structure healthy again.
//! 6. **Graceful drain** — [`KernelService::drain`] rejects new work with
//!    the typed [`ServiceError::ShuttingDown`], completes (or
//!    deadline-cancels, through every run's cooperative watch) the work in
//!    flight, and leaves the service inspectable via
//!    [`KernelService::health`] and resumable via
//!    [`KernelService::resume`].
//! 7. **Boundary validation** — every [`Request::input`] tensor is
//!    structurally validated; corrupt level arrays surface as the typed
//!    [`ServiceError::InvalidInput`] instead of a downstream panic or a
//!    wrong result.
//!
//! [`KernelService::submit_batch`] amortises the front-end: a slice of
//! requests is admitted under one queue permit, grouped by structural hash,
//! compiled (or looked up) once per group, and rebound serially against one
//! cache entry — with per-request typed outcomes in submission order.
//!
//! A deterministic [`FaultPlan`] injects panics, budget exhaustion, poisoned
//! entries, deadline expiry, and execution stalls at chosen points so tests
//! (and the `serve` bench's `--faults`/`--soak` modes) can prove that
//! *every* injected fault ends in either a bit-identical degraded result or
//! a typed error.

use std::collections::HashMap;
use std::fmt::{self, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use finch_cin::CinStmt;
use finch_formats::{LevelSpec, Tensor};
use finch_ir::opt::ValidationLevel;
use finch_ir::{ExecStats, OptLevel, RuntimeError, Watch};

use crate::breaker::{BreakerBoard, BreakerDecision, BreakerPolicy};
use crate::error::{CompileError, ServiceError};
use crate::kernel::{CompiledKernel, Engine, Kernel};
use crate::queue::{AdmissionQueue, AdmitError, Permit, ServiceState};

/// Configuration for a [`KernelService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum number of cached compiled kernels (LRU-evicted beyond this).
    pub capacity: usize,
    /// Maximum number of requests admitted concurrently; excess requests
    /// queue (up to [`ServiceConfig::queue_depth`]) until a slot frees or
    /// their deadline expires.
    pub max_in_flight: usize,
    /// Maximum number of requests waiting for admission; arrivals behind a
    /// full queue are shed with [`ServiceError::Overloaded`].
    pub queue_depth: usize,
    /// Consecutive tier-faults on one structure before its circuit breaker
    /// opens.  `0` disables the breakers.
    pub breaker_threshold: u32,
    /// How long an open breaker short-circuits before admitting a half-open
    /// probe.
    pub breaker_cooldown: Duration,
    /// What an open breaker does to requests: degrade to the oracle tier or
    /// reject with [`ServiceError::CircuitOpen`].
    pub breaker_policy: BreakerPolicy,
    /// Per-request wall-clock deadline.  `None` disables deadlines.
    pub deadline: Option<Duration>,
    /// Per-request VM step budget.  `None` disables the budget.
    pub step_budget: Option<u64>,
    /// Per-request output allocation budget in elements.  `None` disables it.
    pub alloc_budget: Option<u64>,
    /// Optimisation level kernels are compiled at (a request may override it
    /// with [`Request::with_opt_level`]).
    pub opt_level: OptLevel,
    /// Whether the fast tier uses typed dispatch.
    pub typed_dispatch: bool,
    /// Whether the fast tier uses vectorized superinstructions.
    pub simd: bool,
    /// Worker threads for the fast tier (`0` = one per available core).
    pub threads: usize,
    /// Pass-manager validation level used when compiling.
    pub validation: ValidationLevel,
    /// Backoff slept before recompiling a quarantined entry.
    pub retry_backoff: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            capacity: 64,
            max_in_flight: 32,
            queue_depth: 32,
            breaker_threshold: 0,
            breaker_cooldown: Duration::from_millis(25),
            breaker_policy: BreakerPolicy::Degrade,
            deadline: None,
            step_budget: None,
            alloc_budget: None,
            opt_level: OptLevel::Default,
            typed_dispatch: true,
            simd: true,
            threads: 1,
            validation: ValidationLevel::Off,
            retry_backoff: Duration::from_millis(1),
        }
    }
}

/// What a [`Request`] wants read back out of the kernel after it runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadBack {
    /// Only execution statistics; no output value is materialised.
    Stats,
    /// The named scalar output (read without allocating).
    Scalar(String),
    /// The named tensor output, assembled into a [`Tensor`].
    Tensor(String),
}

/// One unit of work for a [`KernelService`]: a CIN program plus bound inputs
/// and requested outputs.
///
/// Structurally identical requests — same program text, same input formats
/// and sizes (data may differ), same output formats, same optimisation
/// configuration — share one cached compiled kernel.
#[derive(Debug, Clone)]
pub struct Request {
    program: CinStmt,
    inputs: Vec<Tensor>,
    outputs: Vec<(String, Vec<LevelSpec>)>,
    read: ReadBack,
    opt_level: Option<OptLevel>,
    /// First boundary-validation failure among the inputs, recorded at bind
    /// time and surfaced by `submit` as [`ServiceError::InvalidInput`].
    invalid: Option<(String, String)>,
}

impl Request {
    /// A request executing `program`, with no inputs or outputs bound yet.
    pub fn new(program: CinStmt) -> Self {
        Request {
            program,
            inputs: Vec::new(),
            outputs: Vec::new(),
            read: ReadBack::Stats,
            opt_level: None,
            invalid: None,
        }
    }

    /// Bind an input tensor (cloned into the request).
    ///
    /// The tensor is structurally validated ([`Tensor::validate`]): inputs
    /// cross the service's trust boundary here, and a corrupt level array
    /// must surface as the typed [`ServiceError::InvalidInput`] at submit
    /// time, never as a downstream panic or a silently wrong result.
    pub fn input(mut self, tensor: &Tensor) -> Self {
        if self.invalid.is_none() {
            if let Err(e) = tensor.validate() {
                self.invalid = Some((tensor.name().to_string(), e.to_string()));
            }
        }
        self.inputs.push(tensor.clone());
        self
    }

    /// Bind a scalar output and read it back after the run.
    pub fn output_scalar(mut self, name: &str) -> Self {
        self.outputs.push((name.to_string(), Vec::new()));
        self.read = ReadBack::Scalar(name.to_string());
        self
    }

    /// Bind a tensor output with the given per-level storage formats and read
    /// it back after the run.
    pub fn output(mut self, name: &str, specs: &[LevelSpec]) -> Self {
        self.outputs.push((name.to_string(), specs.to_vec()));
        self.read = ReadBack::Tensor(name.to_string());
        self
    }

    /// Read back only execution statistics (no output value), regardless of
    /// which outputs are bound.
    pub fn read_stats(mut self) -> Self {
        self.read = ReadBack::Stats;
        self
    }

    /// Override the service's optimisation level for this request.  Requests
    /// at different levels key to different cache entries.
    pub fn with_opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = Some(level);
        self
    }
}

/// The execution tier a response was served from.  Tiers descend in order
/// when the tier above faults; all tiers run at the same [`OptLevel`], so
/// their outputs and [`ExecStats`] are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Bytecode VM with the configured typed dispatch, SIMD, and threads.
    Fast,
    /// Typed bytecode VM, no SIMD, single-threaded.
    TypedSerial,
    /// Untyped bytecode VM, single-threaded.
    Untyped,
    /// The tree-walking reference interpreter.
    Oracle,
}

impl Tier {
    /// All tiers, fastest first — the order the degradation ladder descends.
    pub const ALL: [Tier; 4] = [Tier::Fast, Tier::TypedSerial, Tier::Untyped, Tier::Oracle];

    /// The tier's position on the ladder (0 = fastest).
    pub fn index(self) -> usize {
        match self {
            Tier::Fast => 0,
            Tier::TypedSerial => 1,
            Tier::Untyped => 2,
            Tier::Oracle => 3,
        }
    }

    /// A short stable label (`fast` / `typed_serial` / `untyped` / `oracle`).
    pub fn label(self) -> &'static str {
        match self {
            Tier::Fast => "fast",
            Tier::TypedSerial => "typed_serial",
            Tier::Untyped => "untyped",
            Tier::Oracle => "oracle",
        }
    }
}

/// A successful service response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Execution statistics of the run that produced the result.
    pub stats: ExecStats,
    /// The tier that served the request ([`Tier::Fast`] unless the request
    /// was degraded by faults).
    pub tier: Tier,
    /// Whether the request was served from a cached compiled kernel.
    pub cache_hit: bool,
    /// The scalar output, when the request asked for [`ReadBack::Scalar`].
    pub scalar: Option<f64>,
    /// The tensor output, when the request asked for [`ReadBack::Tensor`].
    pub tensor: Option<Tensor>,
    /// How long the request waited in the admission queue before an
    /// execution slot freed ([`Duration::ZERO`] on fast-path admission).
    pub queue_wait: Duration,
}

/// Where a [`FaultRule`] strikes in the request lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectPoint {
    /// At cache lookup, before the entry runs (pairs with
    /// [`FaultKind::PoisonEntry`]).
    Lookup,
    /// After inputs are rebound, immediately before execution.
    PreRun,
    /// Mid-execution, with output buffers mid-append (via
    /// [`Watch::with_fault_at_stmt`]).
    MidRun,
    /// After a successful run, before outputs are read back.
    PostRun,
}

/// What kind of fault a [`FaultRule`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A genuine `panic!`, exercising `catch_unwind` isolation and the
    /// degradation ladder.
    Panic,
    /// Step-budget exhaustion: the attempt runs with a budget of 1.
    BudgetExhaustion,
    /// Deadline expiry: the attempt runs with its cancellation flag already
    /// raised.
    DeadlineExpiry,
    /// Mark the cache entry poisoned, exercising quarantine + recompile.
    PoisonEntry,
    /// Deterministically hold the execution slot: the attempt blocks on the
    /// service's stall gate until [`KernelService::release_stalls`], the
    /// request's deadline, or a drain cancellation.  The sleep-free way for
    /// tests to pin `in_flight` while exercising queueing and drain.
    Stall,
}

/// One injected fault: strikes the `request`-th request (by admission order,
/// starting at 0) at the given point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Which request (0-based admission index) the fault strikes.
    pub request: u64,
    /// Where in the lifecycle it strikes.
    pub point: InjectPoint,
    /// What kind of fault it is.
    pub kind: FaultKind,
}

/// A deterministic fault-injection plan.  Rules are consumed (removed) as
/// they fire: at most one non-lookup rule per execution attempt, so stacking
/// several rules on one request walks it down the degradation ladder.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Add a rule.
    pub fn push(&mut self, rule: FaultRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Number of rules not yet fired.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules remain.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// A reproducible plan: each of the first `requests` requests is faulted
    /// with probability `permille`/1000, with the point and kind drawn from a
    /// seeded LCG.  The same `(seed, requests, permille)` always produces the
    /// same plan.
    pub fn seeded(seed: u64, requests: u64, permille: u32) -> Self {
        let mut plan = FaultPlan::new();
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for request in 0..requests {
            let x = next();
            if (x >> 33) % 1000 >= u64::from(permille.min(1000)) {
                continue;
            }
            let point = match (x >> 13) % 4 {
                0 => InjectPoint::Lookup,
                1 => InjectPoint::PreRun,
                2 => InjectPoint::MidRun,
                _ => InjectPoint::PostRun,
            };
            let kind = if point == InjectPoint::Lookup {
                FaultKind::PoisonEntry
            } else {
                match (x >> 23) % 3 {
                    0 => FaultKind::Panic,
                    1 => FaultKind::BudgetExhaustion,
                    _ => FaultKind::DeadlineExpiry,
                }
            };
            plan.push(FaultRule { request, point, kind });
            // Occasionally stack a second panic on the same request so the
            // fast-tier retry also faults and the request degrades down the
            // ladder (a single rule is always absorbed by the retry).
            if kind == FaultKind::Panic && next() % 4 == 0 {
                plan.push(FaultRule {
                    request,
                    point: InjectPoint::PreRun,
                    kind: FaultKind::Panic,
                });
            }
        }
        plan
    }

    /// Remove and return the first rule for `request`, filtered to lookup
    /// rules (`lookup == true`) or execution rules (`lookup == false`).
    fn take(&mut self, request: u64, lookup: bool) -> Option<FaultRule> {
        let pos = self
            .rules
            .iter()
            .position(|r| r.request == request && (r.point == InjectPoint::Lookup) == lookup)?;
        Some(self.rules.remove(pos))
    }
}

/// A snapshot of the service's counters (see [`KernelService::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests submitted (including shed and invalid ones).
    pub requests: u64,
    /// Requests rejected by admission control (in-flight limit and queue
    /// both full).
    pub shed: u64,
    /// Requests that had to wait in the admission queue before admission.
    pub queued: u64,
    /// Requests whose deadline expired while waiting in the admission queue.
    pub queue_timeouts: u64,
    /// Times a circuit breaker opened (threshold crossings and failed
    /// half-open probes).
    pub breaker_opens: u64,
    /// Requests short-circuited by an open breaker (degraded to the oracle
    /// tier or rejected, per [`BreakerPolicy`]).
    pub breaker_short_circuits: u64,
    /// Structural groups formed by [`KernelService::submit_batch`] (each
    /// group checks out its cache entry once).
    pub batch_groups: u64,
    /// Requests served from a cached compiled kernel.
    pub hits: u64,
    /// Requests that required compilation.
    pub misses: u64,
    /// Kernel compilations performed.
    pub compiles: u64,
    /// Recompilations of quarantined entries.
    pub recompiles: u64,
    /// Times an entry was quarantined (poisoned) pending recompile.
    pub quarantined: u64,
    /// Cache entries evicted (LRU pressure or condemned after faults).
    pub evictions: u64,
    /// Panics caught (compile- or run-time).
    pub panics: u64,
    /// Requests that failed with [`RuntimeError::Deadline`].
    pub deadline_errors: u64,
    /// Requests that failed with [`RuntimeError::StepBudgetExceeded`].
    pub budget_errors: u64,
    /// Requests that failed with [`RuntimeError::AllocBudgetExceeded`].
    pub alloc_errors: u64,
    /// Successful responses per tier, indexed by [`Tier::index`].
    pub served_by_tier: [u64; 4],
    /// Faults observed per tier, indexed by [`Tier::index`].
    pub faults_by_tier: [u64; 4],
}

#[derive(Default)]
struct AtomicStats {
    requests: AtomicU64,
    shed: AtomicU64,
    queued: AtomicU64,
    queue_timeouts: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_short_circuits: AtomicU64,
    batch_groups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    recompiles: AtomicU64,
    quarantined: AtomicU64,
    evictions: AtomicU64,
    panics: AtomicU64,
    deadline_errors: AtomicU64,
    budget_errors: AtomicU64,
    alloc_errors: AtomicU64,
    served_by_tier: [AtomicU64; 4],
    faults_by_tier: [AtomicU64; 4],
}

impl AtomicStats {
    fn snapshot(&self) -> ServiceStats {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServiceStats {
            requests: get(&self.requests),
            shed: get(&self.shed),
            queued: get(&self.queued),
            queue_timeouts: get(&self.queue_timeouts),
            breaker_opens: get(&self.breaker_opens),
            breaker_short_circuits: get(&self.breaker_short_circuits),
            batch_groups: get(&self.batch_groups),
            hits: get(&self.hits),
            misses: get(&self.misses),
            compiles: get(&self.compiles),
            recompiles: get(&self.recompiles),
            quarantined: get(&self.quarantined),
            evictions: get(&self.evictions),
            panics: get(&self.panics),
            deadline_errors: get(&self.deadline_errors),
            budget_errors: get(&self.budget_errors),
            alloc_errors: get(&self.alloc_errors),
            served_by_tier: std::array::from_fn(|i| get(&self.served_by_tier[i])),
            faults_by_tier: std::array::from_fn(|i| get(&self.faults_by_tier[i])),
        }
    }
}

/// Two-lane FNV-style streaming hasher: 128 bits of key material make
/// accidental collisions negligible, and a full structural check on every hit
/// makes even a deliberate collision harmless (it falls back to an uncached
/// compile).
struct KeyHasher {
    a: u64,
    b: u64,
}

impl KeyHasher {
    fn new() -> Self {
        KeyHasher { a: 0xcbf2_9ce4_8422_2325, b: 0x9e37_79b9_7f4a_7c15 }
    }

    fn byte(&mut self, x: u8) {
        self.a = (self.a ^ u64::from(x)).wrapping_mul(0x0000_0100_0000_01b3);
        self.b = (self.b ^ u64::from(x)).wrapping_mul(0xc2b2_ae3d_27d4_eb4f).rotate_left(27);
    }

    fn bytes(&mut self, s: &[u8]) {
        for &x in s {
            self.byte(x);
        }
    }

    fn word(&mut self, x: u64) {
        self.bytes(&x.to_le_bytes());
    }

    fn finish(&self) -> (u64, u64) {
        (self.a, self.b)
    }
}

impl fmt::Write for KeyHasher {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.bytes(s.as_bytes());
        Ok(())
    }
}

/// The structural identity of an input, kept for hit verification.
struct InputSig {
    name: String,
    levels: Vec<(&'static str, usize)>,
    fill_bits: u64,
}

/// Everything a cache key hashes, stored in full so hits can be verified
/// structurally (a hash collision must not serve the wrong kernel).
struct KeyCheck {
    program: String,
    inputs: Vec<InputSig>,
    outputs: Vec<(String, Vec<LevelSpec>)>,
    opt: OptLevel,
}

impl KeyCheck {
    fn of(req: &Request, opt: OptLevel) -> Self {
        let mut program = String::new();
        let _ = write!(program, "{}", req.program);
        KeyCheck {
            program,
            inputs: req
                .inputs
                .iter()
                .map(|t| InputSig {
                    name: t.name().to_string(),
                    levels: t.levels().iter().map(|l| (l.format_name(), l.size())).collect(),
                    fill_bits: t.fill().to_bits(),
                })
                .collect(),
            outputs: req.outputs.clone(),
            opt,
        }
    }

    /// Whether `req` (whose program renders to `program`) is structurally the
    /// kernel this entry was compiled for.
    fn matches(&self, program: &str, req: &Request, opt: OptLevel) -> bool {
        if self.opt != opt || self.program != program {
            return false;
        }
        if self.inputs.len() != req.inputs.len() || self.outputs.len() != req.outputs.len() {
            return false;
        }
        for (sig, t) in self.inputs.iter().zip(&req.inputs) {
            if sig.name != t.name()
                || sig.fill_bits != t.fill().to_bits()
                || sig.levels.len() != t.levels().len()
            {
                return false;
            }
            for (&(fmt_name, size), level) in sig.levels.iter().zip(t.levels()) {
                if fmt_name != level.format_name() || size != level.size() {
                    return false;
                }
            }
        }
        self.outputs.iter().zip(&req.outputs).all(|((n, s), (rn, rs))| n == rn && s == rs)
    }
}

/// One cached kernel: the fast-tier compiled kernel plus lazily-derived
/// degraded variants, quarantine state, and LRU bookkeeping.
struct Entry {
    base: CompiledKernel,
    typed_serial: Option<CompiledKernel>,
    untyped: Option<CompiledKernel>,
    oracle: Option<CompiledKernel>,
    check: KeyCheck,
    poisoned: bool,
    last_used: u64,
}

enum SlotState {
    /// The entry is checked out by a request (or still compiling); other
    /// requests for the same key wait on the service condvar.
    Busy,
    /// The entry is available.
    Ready(Box<Entry>),
}

struct CacheInner {
    slots: HashMap<(u64, u64), SlotState>,
    tick: u64,
    /// Reusable render buffer for hit verification, so steady-state cache
    /// hits do not allocate.
    scratch: String,
}

enum AttemptOutcome {
    Ok(Response),
    Typed(RuntimeError),
    Fault(String),
}

/// A long-lived, fault-isolated compiled-kernel cache (see the module docs).
///
/// The service is `Sync`: submit requests from many threads through a shared
/// reference.  Requests for *different* kernels run concurrently; requests
/// for the *same* kernel serialise on its cache slot.
pub struct KernelService {
    cfg: ServiceConfig,
    inner: Mutex<CacheInner>,
    cond: Condvar,
    queue: AdmissionQueue,
    breakers: BreakerBoard,
    /// Raised by an overrun [`KernelService::drain`]; threaded into every
    /// run's cooperative watch so in-flight work aborts with a typed error.
    drain_cancel: Arc<AtomicBool>,
    /// The gate [`FaultKind::Stall`] attempts block on.
    stall: Mutex<StallGate>,
    stall_cond: Condvar,
    next_request: AtomicU64,
    faults: Mutex<FaultPlan>,
    stats: AtomicStats,
}

#[derive(Default)]
struct StallGate {
    released: bool,
    stalled: usize,
}

/// The outcome of a [`KernelService::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// How long the drain took from call to completion.
    pub waited: Duration,
    /// Whether the drain deadline passed and in-flight work was cancelled
    /// through its cooperative watch.
    pub cancelled: bool,
    /// The service state after the drain (always [`ServiceState::Stopped`]).
    pub state: ServiceState,
}

/// A point-in-time health snapshot (see [`KernelService::health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// The lifecycle state.
    pub state: ServiceState,
    /// Requests waiting in the admission queue.
    pub queued: usize,
    /// Requests admitted and executing.
    pub in_flight: usize,
    /// Ready (cached, not checked-out) kernels.
    pub cached: usize,
    /// Circuit breakers in the closed state.
    pub breakers_closed: usize,
    /// Circuit breakers in the open state.
    pub breakers_open: usize,
    /// Circuit breakers half-open (a probe in flight).
    pub breakers_half_open: usize,
    /// Successful responses per tier, indexed by [`Tier::index`].
    pub served_by_tier: [u64; 4],
    /// Faults observed per tier, indexed by [`Tier::index`].
    pub faults_by_tier: [u64; 4],
}

impl Default for KernelService {
    fn default() -> Self {
        KernelService::new(ServiceConfig::default())
    }
}

impl KernelService {
    /// A service with the given configuration and an empty cache.
    pub fn new(cfg: ServiceConfig) -> Self {
        let queue = AdmissionQueue::new(cfg.max_in_flight, cfg.queue_depth);
        let breakers = BreakerBoard::new(cfg.breaker_threshold, cfg.breaker_cooldown);
        KernelService {
            cfg,
            inner: Mutex::new(CacheInner {
                slots: HashMap::new(),
                tick: 0,
                scratch: String::new(),
            }),
            cond: Condvar::new(),
            queue,
            breakers,
            drain_cancel: Arc::new(AtomicBool::new(false)),
            stall: Mutex::new(StallGate::default()),
            stall_cond: Condvar::new(),
            next_request: AtomicU64::new(0),
            faults: Mutex::new(FaultPlan::new()),
            stats: AtomicStats::default(),
        }
    }

    /// The service's configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot()
    }

    /// Number of ready (cached, not checked-out) kernels.
    pub fn cached(&self) -> usize {
        let inner = self.lock_inner();
        inner.slots.values().filter(|s| matches!(s, SlotState::Ready(_))).count()
    }

    /// Install a fault-injection plan, replacing any previous one.
    pub fn install_faults(&self, plan: FaultPlan) {
        *self.faults.lock().unwrap_or_else(|e| e.into_inner()) = plan;
    }

    /// Number of installed fault rules that have not fired yet.
    pub fn pending_faults(&self) -> usize {
        self.faults.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Execute a request: validate its inputs, admit it (queueing up to its
    /// deadline when saturated), consult the structure's circuit breaker,
    /// look up or compile the kernel, rebind the inputs, run (descending
    /// the degradation ladder on faults), and read back the requested
    /// output.
    pub fn submit(&self, req: &Request) -> Result<Response, ServiceError> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        if let Some((name, detail)) = &req.invalid {
            return Err(ServiceError::InvalidInput { name: name.clone(), detail: detail.clone() });
        }
        let deadline = self.request_deadline();
        let permit = self.admit(deadline)?;
        let rid = self.next_request.fetch_add(1, Ordering::SeqCst);
        let opt = req.opt_level.unwrap_or(self.cfg.opt_level);
        let key = self.key_of(req, opt);
        let mut result = self.serve_one(req, key, opt, rid, deadline);
        if let Ok(resp) = &mut result {
            resp.queue_wait = permit.waited;
        }
        result
    }

    /// Execute a slice of requests under **one** admission permit, grouped
    /// by structural hash: each group checks its cache entry out once and
    /// rebinds the member requests serially against it, amortising the
    /// lookup (and any compile) across the group.
    ///
    /// Outcomes are per-request and order-preserving: `result[i]` belongs
    /// to `reqs[i]`.  An admission rejection (overload, queue timeout,
    /// shutdown) applies to the whole batch — every slot gets the same
    /// typed error.
    pub fn submit_batch(&self, reqs: &[Request]) -> Vec<Result<Response, ServiceError>> {
        if reqs.is_empty() {
            return Vec::new();
        }
        self.stats.requests.fetch_add(reqs.len() as u64, Ordering::Relaxed);
        let deadline = self.request_deadline();
        let permit = match self.admit(deadline) {
            Ok(p) => p,
            Err(err) => return reqs.iter().map(|_| Err(err.clone())).collect(),
        };

        // Group indices by (key, opt level), preserving first-seen order.
        let mut results: Vec<Option<Result<Response, ServiceError>>> = vec![None; reqs.len()];
        let mut groups: Vec<((u64, u64), Vec<usize>)> = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            if let Some((name, detail)) = &req.invalid {
                results[i] = Some(Err(ServiceError::InvalidInput {
                    name: name.clone(),
                    detail: detail.clone(),
                }));
                continue;
            }
            let opt = req.opt_level.unwrap_or(self.cfg.opt_level);
            let key = self.key_of(req, opt);
            match groups.iter_mut().find(|(k, idxs)| {
                *k == key && reqs[idxs[0]].opt_level.unwrap_or(self.cfg.opt_level) == opt
            }) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((key, vec![i])),
            }
        }
        self.stats.batch_groups.fetch_add(groups.len() as u64, Ordering::Relaxed);

        for (key, idxs) in groups {
            self.serve_group(reqs, key, &idxs, deadline, &permit, &mut results);
        }
        drop(permit);
        results.into_iter().map(|r| r.expect("every request resolved")).collect()
    }

    /// Serve one structural group of a batch against a single checkout.
    fn serve_group(
        &self,
        reqs: &[Request],
        key: (u64, u64),
        idxs: &[usize],
        deadline: Option<(Instant, u64)>,
        permit: &Permit<'_>,
        results: &mut [Option<Result<Response, ServiceError>>],
    ) {
        let first = idxs[0];
        let opt = reqs[first].opt_level.unwrap_or(self.cfg.opt_level);
        let (tier_start, probe, short_circuited) = match self.breaker_gate(key) {
            Ok(gate) => gate,
            Err(err) => {
                for &i in idxs {
                    results[i] = Some(Err(err.clone()));
                }
                return;
            }
        };
        let (mut entry, cache_hit, cached) = match self.checkout(key, &reqs[first], opt, deadline) {
            Ok(x) => x,
            Err(err) => {
                if probe {
                    self.breakers.abort_probe(key);
                }
                for &i in idxs {
                    results[i] = Some(Err(err.clone()));
                }
                return;
            }
        };
        let mut evict_any = false;
        let mut group_faults = 0u32;
        for &i in idxs {
            let rid = self.next_request.fetch_add(1, Ordering::SeqCst);
            // Members after the first rebind against the group's entry: a
            // cache hit whatever the checkout was.
            let hit = cache_hit || i != first;
            if i != first {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
            }
            let (result, evict, faults) =
                self.execute(&mut entry, &reqs[i], deadline, rid, hit, tier_start);
            evict_any |= evict;
            group_faults += faults;
            results[i] = Some(result.map(|mut resp| {
                resp.queue_wait = permit.waited;
                resp
            }));
        }
        if cached {
            self.checkin(key, entry, evict_any);
        }
        if !short_circuited && self.breakers.record(key, group_faults, probe) {
            self.stats.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The admission + breaker + cache + ladder path shared by `submit`,
    /// after the request holds a permit and a request id.
    fn serve_one(
        &self,
        req: &Request,
        key: (u64, u64),
        opt: OptLevel,
        rid: u64,
        deadline: Option<(Instant, u64)>,
    ) -> Result<Response, ServiceError> {
        let (tier_start, probe, short_circuited) = self.breaker_gate(key)?;
        let (mut entry, cache_hit, cached) = match self.checkout(key, req, opt, deadline) {
            Ok(x) => x,
            Err(err) => {
                if probe {
                    self.breakers.abort_probe(key);
                }
                return Err(err);
            }
        };
        let (result, evict, faults) =
            self.execute(&mut entry, req, deadline, rid, cache_hit, tier_start);
        if cached {
            self.checkin(key, entry, evict);
        }
        if !short_circuited && self.breakers.record(key, faults, probe) {
            self.stats.breaker_opens.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Consult `key`'s circuit breaker.  Returns the starting tier index,
    /// whether this request is the half-open probe, and whether it was
    /// short-circuited (skip breaker recording); or the typed rejection
    /// under [`BreakerPolicy::Reject`].
    fn breaker_gate(&self, key: (u64, u64)) -> Result<(usize, bool, bool), ServiceError> {
        match self.breakers.admit(key) {
            BreakerDecision::Allow { probe } => Ok((0, probe, false)),
            BreakerDecision::ShortCircuit { consecutive_faults, cooldown_ms } => {
                self.stats.breaker_short_circuits.fetch_add(1, Ordering::Relaxed);
                match self.cfg.breaker_policy {
                    BreakerPolicy::Reject => {
                        Err(ServiceError::CircuitOpen { consecutive_faults, cooldown_ms })
                    }
                    BreakerPolicy::Degrade => Ok((Tier::Oracle.index(), false, true)),
                }
            }
        }
    }

    fn request_deadline(&self) -> Option<(Instant, u64)> {
        self.cfg.deadline.map(|d| (Instant::now() + d, (d.as_millis() as u64).max(1)))
    }

    /// Acquire an admission permit, mapping queue rejections to their typed
    /// service errors and keeping the queue counters.
    fn admit(&self, deadline: Option<(Instant, u64)>) -> Result<Permit<'_>, ServiceError> {
        match self.queue.acquire(deadline.map(|(dl, _)| dl)) {
            Ok(permit) => {
                if permit.was_queued {
                    self.stats.queued.fetch_add(1, Ordering::Relaxed);
                }
                Ok(permit)
            }
            Err(AdmitError::Overloaded { in_flight, limit, queued }) => {
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::Overloaded { in_flight, limit, queued })
            }
            Err(AdmitError::QueueTimeout { waited_ms, depth }) => {
                self.stats.queue_timeouts.fetch_add(1, Ordering::Relaxed);
                Err(ServiceError::QueueTimeout { waited_ms, depth })
            }
            Err(AdmitError::ShuttingDown { state }) => Err(ServiceError::ShuttingDown { state }),
        }
    }

    /// The service's lifecycle state.
    pub fn state(&self) -> ServiceState {
        self.queue.snapshot().0
    }

    /// Gracefully drain the service: stop admitting work (new submissions
    /// fail with [`ServiceError::ShuttingDown`], queued waiters are woken
    /// out the same way) and wait for in-flight requests to resolve.  Once
    /// `deadline` passes, the remaining runs are cancelled through their
    /// cooperative watch — they resolve with a typed deadline error, never
    /// a stuck thread.  The service ends [`ServiceState::Stopped`];
    /// [`KernelService::resume`] re-opens it.
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        let (waited, cancelled) = self.queue.drain(deadline, &self.drain_cancel);
        DrainReport { waited, cancelled, state: self.state() }
    }

    /// Accept work again after a [`KernelService::drain`].
    pub fn resume(&self) {
        self.drain_cancel.store(false, Ordering::SeqCst);
        self.queue.resume();
    }

    /// A point-in-time health snapshot: lifecycle state, queue depth,
    /// in-flight count, cache size, breaker states, and per-tier counters.
    pub fn health(&self) -> HealthSnapshot {
        let (state, queued, in_flight) = self.queue.snapshot();
        let (breakers_closed, breakers_open, breakers_half_open) = self.breakers.counts();
        let stats = self.stats.snapshot();
        HealthSnapshot {
            state,
            queued,
            in_flight,
            cached: self.cached(),
            breakers_closed,
            breakers_open,
            breakers_half_open,
            served_by_tier: stats.served_by_tier,
            faults_by_tier: stats.faults_by_tier,
        }
    }

    /// Release every attempt blocked on [`FaultKind::Stall`], now and in
    /// the future (the gate stays open for the service's lifetime).
    pub fn release_stalls(&self) {
        let mut gate = self.stall.lock().unwrap_or_else(|e| e.into_inner());
        gate.released = true;
        drop(gate);
        self.stall_cond.notify_all();
    }

    /// Number of attempts currently blocked on [`FaultKind::Stall`].
    pub fn stalled(&self) -> usize {
        self.stall.lock().unwrap_or_else(|e| e.into_inner()).stalled
    }

    /// Block a [`FaultKind::Stall`] attempt until the gate opens, the
    /// request's deadline passes, or a drain cancels it (the latter two
    /// resolve the attempt with the typed deadline error).
    fn stall_until_released(&self, deadline: Option<(Instant, u64)>) -> Option<RuntimeError> {
        let mut gate = self.stall.lock().unwrap_or_else(|e| e.into_inner());
        gate.stalled += 1;
        let outcome = loop {
            if gate.released {
                break None;
            }
            if self.drain_cancel.load(Ordering::SeqCst) {
                break Some(RuntimeError::Deadline { ms: deadline.map_or(0, |(_, ms)| ms) });
            }
            if let Some((dl, ms)) = deadline {
                if Instant::now() >= dl {
                    break Some(RuntimeError::Deadline { ms });
                }
            }
            gate = self
                .stall_cond
                .wait_timeout(gate, Duration::from_millis(5))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        };
        gate.stalled -= 1;
        outcome
    }

    fn lock_inner(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn key_of(&self, req: &Request, opt: OptLevel) -> (u64, u64) {
        let mut h = KeyHasher::new();
        let _ = write!(h, "{}", req.program);
        h.byte(0xfe);
        for t in &req.inputs {
            h.bytes(t.name().as_bytes());
            h.byte(0);
            for level in t.levels() {
                h.bytes(level.format_name().as_bytes());
                h.word(level.size() as u64);
            }
            h.word(t.fill().to_bits());
            h.byte(1);
        }
        for (name, specs) in &req.outputs {
            h.bytes(name.as_bytes());
            h.byte(0);
            for spec in specs {
                h.bytes(spec.format_name().as_bytes());
                h.word(spec.size() as u64);
            }
            h.byte(2);
        }
        h.bytes(opt.label().as_bytes());
        h.byte(u8::from(self.cfg.typed_dispatch));
        h.byte(u8::from(self.cfg.simd));
        h.word(self.cfg.threads as u64);
        h.finish()
    }

    /// Obtain the entry for `key`: a verified cached entry, a freshly
    /// compiled one (inserted as `Busy` while compiling), or — on a verified
    /// hash collision — an uncached one-shot compile.  Returns the entry plus
    /// `(cache_hit, cached)` flags; `cached == false` means the entry does
    /// not own the slot and must not be checked back in.
    fn checkout(
        &self,
        key: (u64, u64),
        req: &Request,
        opt: OptLevel,
        deadline: Option<(Instant, u64)>,
    ) -> Result<(Box<Entry>, bool, bool), ServiceError> {
        let mut inner = self.lock_inner();
        loop {
            if let Some((dl, ms)) = deadline {
                if Instant::now() >= dl {
                    self.stats.deadline_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(ServiceError::Runtime(RuntimeError::Deadline { ms }));
                }
            }
            match inner.slots.get(&key) {
                None => {
                    inner.slots.insert(key, SlotState::Busy);
                    drop(inner);
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    return match self.compile_entry(req, opt) {
                        Ok(entry) => Ok((Box::new(entry), false, true)),
                        Err(err) => {
                            self.lock_inner().slots.remove(&key);
                            self.cond.notify_all();
                            Err(err)
                        }
                    };
                }
                Some(SlotState::Busy) => {
                    inner = match deadline {
                        Some((dl, _)) => {
                            let wait = dl.saturating_duration_since(Instant::now());
                            self.cond.wait_timeout(inner, wait).unwrap_or_else(|e| e.into_inner()).0
                        }
                        None => self.cond.wait(inner).unwrap_or_else(|e| e.into_inner()),
                    };
                }
                Some(SlotState::Ready(_)) => {
                    let mut scratch = std::mem::take(&mut inner.scratch);
                    scratch.clear();
                    let _ = write!(scratch, "{}", req.program);
                    let matched = match inner.slots.get(&key) {
                        Some(SlotState::Ready(entry)) => entry.check.matches(&scratch, req, opt),
                        _ => false,
                    };
                    inner.scratch = scratch;
                    if matched {
                        let Some(SlotState::Ready(entry)) =
                            inner.slots.insert(key, SlotState::Busy)
                        else {
                            unreachable!("slot was Ready above");
                        };
                        drop(inner);
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok((entry, true, true));
                    }
                    // Hash collision with a structurally different kernel:
                    // serve this request from a one-shot uncached compile.
                    drop(inner);
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    return self.compile_entry(req, opt).map(|e| (Box::new(e), false, false));
                }
            }
        }
    }

    fn compile_entry(&self, req: &Request, opt: OptLevel) -> Result<Entry, ServiceError> {
        self.stats.compiles.fetch_add(1, Ordering::Relaxed);
        let built = catch_unwind(AssertUnwindSafe(|| self.build_kernel(req, opt)));
        let base = match built {
            Ok(Ok(kernel)) => kernel,
            Ok(Err(err)) => return Err(ServiceError::Compile(err)),
            Err(payload) => {
                self.stats.panics.fetch_add(1, Ordering::Relaxed);
                return Err(ServiceError::Faulted {
                    attempts: 0,
                    detail: format!("panic during compilation: {}", panic_message(&payload)),
                });
            }
        };
        Ok(Entry {
            base,
            typed_serial: None,
            untyped: None,
            oracle: None,
            check: KeyCheck::of(req, opt),
            poisoned: false,
            last_used: 0,
        })
    }

    fn build_kernel(&self, req: &Request, opt: OptLevel) -> Result<CompiledKernel, CompileError> {
        let mut kernel = Kernel::new()
            .with_opt_level(opt)
            .with_typed_dispatch(self.cfg.typed_dispatch)
            .with_simd(self.cfg.simd)
            .with_threads(self.cfg.threads)
            .with_validation(self.cfg.validation);
        for tensor in &req.inputs {
            kernel.bind_input(tensor);
        }
        for (name, specs) in &req.outputs {
            if specs.is_empty() {
                kernel.bind_output_scalar(name);
            } else {
                kernel.bind_output_format(name, specs);
            }
        }
        kernel.compile(&req.program)
    }

    /// Run the entry for `req`, descending the degradation ladder on faults
    /// starting at tier `tier_start` (0, or the oracle tier when the
    /// structure's breaker short-circuits).  Returns the outcome, whether
    /// the entry is condemned (must be evicted instead of checked back in),
    /// and the number of tier-faults observed (the breaker's input).
    fn execute(
        &self,
        entry: &mut Entry,
        req: &Request,
        deadline: Option<(Instant, u64)>,
        rid: u64,
        cache_hit: bool,
        tier_start: usize,
    ) -> (Result<Response, ServiceError>, bool, u32) {
        let mut faults = 0u32;
        // Lookup-point faults poison the entry before it serves.
        if let Some(rule) = self.take_fault(rid, true) {
            if rule.kind == FaultKind::PoisonEntry {
                entry.poisoned = true;
            }
        }
        if entry.poisoned {
            self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
            if let Err(err) = self.backoff(rid, deadline) {
                // Out of deadline before the quarantine retry: leave the
                // entry poisoned for the next request to recompile.
                self.count_runtime(&err);
                return (Err(ServiceError::Runtime(err)), false, faults);
            }
            match self.recompile_base(entry) {
                Ok(()) => entry.poisoned = false,
                Err(detail) => {
                    return (Err(ServiceError::Faulted { attempts: 1, detail }), true, 1);
                }
            }
        }

        let mut attempts = 0u32;
        let mut last_fault = String::new();
        let mut tier0_retried = false;
        let mut evict = false;
        let mut tier_idx = tier_start.min(Tier::ALL.len() - 1);
        while tier_idx < Tier::ALL.len() {
            let tier = Tier::ALL[tier_idx];
            attempts += 1;
            let injected = self.take_fault(rid, false);
            match self.attempt(entry, tier, req, deadline, injected, cache_hit) {
                AttemptOutcome::Ok(resp) => {
                    self.stats.served_by_tier[tier_idx].fetch_add(1, Ordering::Relaxed);
                    return (Ok(resp), evict, faults);
                }
                AttemptOutcome::Typed(err) => {
                    self.count_runtime(&err);
                    return (Err(ServiceError::Runtime(err)), evict, faults);
                }
                AttemptOutcome::Fault(detail) => {
                    self.stats.faults_by_tier[tier_idx].fetch_add(1, Ordering::Relaxed);
                    self.stats.panics.fetch_add(1, Ordering::Relaxed);
                    faults += 1;
                    last_fault = detail;
                    if tier == Tier::Fast && !tier0_retried {
                        // Quarantine: recompile once with backoff, retry the
                        // fast tier.
                        tier0_retried = true;
                        entry.poisoned = true;
                        self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                        if let Err(err) = self.backoff(rid, deadline) {
                            self.count_runtime(&err);
                            return (Err(ServiceError::Runtime(err)), false, faults);
                        }
                        match self.recompile_base(entry) {
                            Ok(()) => {
                                entry.poisoned = false;
                                continue;
                            }
                            Err(detail) => {
                                last_fault = detail;
                                faults += 1;
                                evict = true;
                                tier_idx += 1;
                            }
                        }
                    } else {
                        if tier == Tier::Fast {
                            // The retry faulted too: condemn the entry.
                            evict = true;
                        }
                        tier_idx += 1;
                    }
                }
            }
        }
        (Err(ServiceError::Faulted { attempts, detail: last_fault }), true, faults)
    }

    /// The quarantine backoff, capped by the request's remaining deadline
    /// and jittered by a seeded per-request LCG draw so concurrent retries
    /// do not stampede the recompile path in lockstep.
    ///
    /// Sleeps somewhere in `[retry_backoff / 2, retry_backoff]`, never past
    /// the deadline; a request already past its deadline gets the typed
    /// error back immediately instead of sleeping through it.
    fn backoff(&self, rid: u64, deadline: Option<(Instant, u64)>) -> Result<(), RuntimeError> {
        let base = self.cfg.retry_backoff;
        let mut wait = if base.is_zero() {
            Duration::ZERO
        } else {
            // One LCG step over the request id: deterministic per request,
            // decorrelated across requests.  Same constants as the seeded
            // fault plan.
            let draw = (rid ^ 0x9e37_79b9_7f4a_7c15)
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let frac = (draw >> 33) as f64 / (1u64 << 31) as f64;
            Duration::from_nanos((base.as_nanos() as f64 * (0.5 + 0.5 * frac)) as u64)
        };
        if let Some((dl, ms)) = deadline {
            let remaining = dl.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RuntimeError::Deadline { ms });
            }
            wait = wait.min(remaining);
        }
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        Ok(())
    }

    fn recompile_base(&self, entry: &mut Entry) -> Result<(), String> {
        self.stats.recompiles.fetch_add(1, Ordering::Relaxed);
        let (opt, typed, simd, threads) = (
            entry.base.opt_level(),
            entry.base.typed_dispatch(),
            entry.base.simd(),
            entry.base.threads(),
        );
        let rebuilt = catch_unwind(AssertUnwindSafe(|| {
            entry.base.reoptimized_simd(opt, typed, simd).with_threads(threads)
        }));
        match rebuilt {
            Ok(kernel) => {
                entry.base = kernel;
                Ok(())
            }
            Err(payload) => {
                self.stats.panics.fetch_add(1, Ordering::Relaxed);
                Err(format!("panic during recompilation: {}", panic_message(&payload)))
            }
        }
    }

    /// The kernel variant for a tier, derived lazily from the fast-tier
    /// kernel at the same [`OptLevel`] (so results stay bit-identical).
    fn tier_kernel(entry: &mut Entry, tier: Tier) -> &mut CompiledKernel {
        let opt = entry.base.opt_level();
        match tier {
            Tier::Fast => &mut entry.base,
            Tier::TypedSerial => {
                if entry.typed_serial.is_none() {
                    entry.typed_serial =
                        Some(entry.base.reoptimized_simd(opt, true, false).with_threads(1));
                }
                entry.typed_serial.as_mut().expect("just built")
            }
            Tier::Untyped => {
                if entry.untyped.is_none() {
                    entry.untyped =
                        Some(entry.base.reoptimized_simd(opt, false, false).with_threads(1));
                }
                entry.untyped.as_mut().expect("just built")
            }
            Tier::Oracle => {
                if entry.oracle.is_none() {
                    entry.oracle = Some(
                        entry
                            .base
                            .reoptimized_simd(opt, false, false)
                            .with_threads(1)
                            .with_engine(Engine::TreeWalk),
                    );
                }
                entry.oracle.as_mut().expect("just built")
            }
        }
    }

    /// One execution attempt at one tier, with any injected fault applied.
    /// Everything — variant derivation, rebinding, the run itself, readback —
    /// happens inside `catch_unwind`, so a panic anywhere degrades instead of
    /// crashing the service.
    fn attempt(
        &self,
        entry: &mut Entry,
        tier: Tier,
        req: &Request,
        deadline: Option<(Instant, u64)>,
        injected: Option<FaultRule>,
        cache_hit: bool,
    ) -> AttemptOutcome {
        let mut step_budget = self.cfg.step_budget;
        let mut fault_stmt = None;
        let mut pre_panic = false;
        let mut post_panic = false;
        let mut cancelled = false;
        if let Some(rule) = injected {
            match rule.kind {
                FaultKind::Panic => match rule.point {
                    InjectPoint::PreRun => pre_panic = true,
                    InjectPoint::PostRun => post_panic = true,
                    _ => fault_stmt = Some(2),
                },
                FaultKind::BudgetExhaustion => {
                    step_budget = Some(step_budget.map_or(1, |b| b.min(1)))
                }
                FaultKind::DeadlineExpiry => cancelled = true,
                FaultKind::PoisonEntry => {} // handled at lookup
                FaultKind::Stall => {
                    // Park on the stall gate before running.  Released by
                    // `release_stalls`, or converted into the typed deadline
                    // error when the request's deadline (or a drain cancel)
                    // fires first.
                    if let Some(err) = self.stall_until_released(deadline) {
                        return AttemptOutcome::Typed(err);
                    }
                }
            }
        }
        // Every run carries a watch wired to the drain-cancel flag, so a
        // drain past its deadline can cut in-flight work off at the next
        // statement boundary with a typed error.
        let mut watch = match deadline {
            Some((dl, dl_ms)) => Watch::until(dl, dl_ms).with_cancel(self.drain_cancel.clone()),
            None => Watch::cancelled_by(self.drain_cancel.clone(), 0),
        };
        if cancelled {
            // An injected expiry pre-raises a private cancel flag (replacing
            // the drain flag) so only this request trips.
            watch = watch.with_cancel(Arc::new(AtomicBool::new(true)));
        }
        if let Some(at) = fault_stmt {
            watch = watch.with_fault_at_stmt(at);
        }
        let watch = Some(watch);
        let alloc_budget = self.cfg.alloc_budget;

        let ran = catch_unwind(AssertUnwindSafe(
            || -> Result<(ExecStats, Option<f64>, Option<Tensor>), RuntimeError> {
                let kernel = Self::tier_kernel(entry, tier);
                for tensor in &req.inputs {
                    kernel.rebind_input(tensor)?;
                }
                match step_budget {
                    Some(b) => kernel.set_step_budget(b),
                    None => kernel.clear_step_budget(),
                };
                kernel.set_watch(watch.clone());
                kernel.set_alloc_budget(alloc_budget);
                if pre_panic {
                    panic!("injected fault: panic before execution");
                }
                let stats = kernel.run()?;
                if post_panic {
                    panic!("injected fault: panic after execution");
                }
                let (scalar, tensor) = match &req.read {
                    ReadBack::Stats => (None, None),
                    ReadBack::Scalar(name) => (Some(kernel.output_scalar(name)?), None),
                    ReadBack::Tensor(name) => (None, Some(kernel.output_tensor(name)?)),
                };
                Ok((stats, scalar, tensor))
            },
        ));
        match ran {
            Ok(Ok((stats, scalar, tensor))) => AttemptOutcome::Ok(Response {
                stats,
                tier,
                cache_hit,
                queue_wait: Duration::ZERO,
                scalar,
                tensor,
            }),
            Ok(Err(err)) => AttemptOutcome::Typed(err),
            Err(payload) => {
                AttemptOutcome::Fault(format!("{} tier: {}", tier.label(), panic_message(&payload)))
            }
        }
    }

    fn take_fault(&self, rid: u64, lookup: bool) -> Option<FaultRule> {
        self.faults.lock().unwrap_or_else(|e| e.into_inner()).take(rid, lookup)
    }

    fn count_runtime(&self, err: &RuntimeError) {
        match err {
            RuntimeError::Deadline { .. } => {
                self.stats.deadline_errors.fetch_add(1, Ordering::Relaxed);
            }
            RuntimeError::StepBudgetExceeded { .. } => {
                self.stats.budget_errors.fetch_add(1, Ordering::Relaxed);
            }
            RuntimeError::AllocBudgetExceeded { .. } => {
                self.stats.alloc_errors.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Return a checked-out entry to the cache (or evict it), then apply LRU
    /// pressure and wake slot waiters.
    fn checkin(&self, key: (u64, u64), mut entry: Box<Entry>, evict: bool) {
        let mut inner = self.lock_inner();
        if evict {
            inner.slots.remove(&key);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        } else {
            inner.tick += 1;
            entry.last_used = inner.tick;
            inner.slots.insert(key, SlotState::Ready(entry));
            let capacity = self.cfg.capacity.max(1);
            loop {
                let ready =
                    inner.slots.values().filter(|s| matches!(s, SlotState::Ready(_))).count();
                if ready <= capacity {
                    break;
                }
                let victim = inner
                    .slots
                    .iter()
                    .filter_map(|(k, s)| match s {
                        SlotState::Ready(e) if *k != key => Some((*k, e.last_used)),
                        _ => None,
                    })
                    .min_by_key(|&(_, used)| used)
                    .map(|(k, _)| k);
                match victim {
                    Some(vk) => {
                        inner.slots.remove(&vk);
                        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        drop(inner);
        self.cond.notify_all();
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

#[cfg(test)]
mod tests {
    use super::*;
    use finch_cin::build::*;
    use finch_formats::Level;

    fn dot_request(a: &Tensor, b: &Tensor) -> Request {
        let i = idx("i");
        let program = forall(
            i.clone(),
            add_assign(scalar("C"), mul(access(a.name(), [i.clone()]), access(b.name(), [i]))),
        );
        Request::new(program).input(a).input(b).output_scalar("C")
    }

    fn dense_pair(n: usize, scale: f64) -> (Tensor, Tensor) {
        let av: Vec<f64> = (0..n).map(|k| scale * (k as f64 + 1.0)).collect();
        let bv: Vec<f64> = (0..n).map(|k| 0.5 * (k as f64) - 1.0).collect();
        (Tensor::dense_vector("A", &av), Tensor::dense_vector("B", &bv))
    }

    fn sparse_pair(n: usize) -> (Tensor, Tensor) {
        let av: Vec<f64> = (0..n).map(|k| if k % 3 == 0 { k as f64 + 1.0 } else { 0.0 }).collect();
        let bv: Vec<f64> = (0..n).map(|k| if k % 2 == 0 { 2.0 } else { 0.0 }).collect();
        (Tensor::sparse_list_vector("A", &av), Tensor::sparse_list_vector("B", &bv))
    }

    #[test]
    fn structurally_identical_requests_share_one_kernel() {
        let svc = KernelService::default();
        let (a1, b1) = dense_pair(16, 1.0);
        let r1 = svc.submit(&dot_request(&a1, &b1)).unwrap();
        assert!(!r1.cache_hit);

        // Independently rebuilt program, same structure, different data.
        let (a2, b2) = dense_pair(16, -3.0);
        let r2 = svc.submit(&dot_request(&a2, &b2)).unwrap();
        assert!(r2.cache_hit);
        let expected: f64 = a2.values().iter().zip(b2.values()).map(|(x, y)| x * y).sum();
        assert_eq!(r2.scalar.unwrap().to_bits(), expected.to_bits());

        let stats = svc.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.compiles, 1);
        assert_eq!(svc.cached(), 1);
    }

    #[test]
    fn differing_structure_or_flags_miss() {
        let svc = KernelService::default();
        let (a, b) = dense_pair(16, 1.0);
        svc.submit(&dot_request(&a, &b)).unwrap();

        // Same program, sparse input formats: a different kernel.
        let (sa, sb) = sparse_pair(16);
        svc.submit(&dot_request(&sa, &sb)).unwrap();

        // Same everything but a different requested opt level.
        svc.submit(&dot_request(&a, &b).with_opt_level(OptLevel::None)).unwrap();

        // Same inputs, different output format request.
        let i = idx("i");
        let program = forall(
            i.clone(),
            assign(access("C", [i.clone()]), mul(access("A", [i.clone()]), access("B", [i]))),
        );
        svc.submit(
            &Request::new(program)
                .input(&a)
                .input(&b)
                .output("C", &[LevelSpec::Dense { size: 16 }]),
        )
        .unwrap();

        let stats = svc.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.compiles, 4);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cfg = ServiceConfig { capacity: 2, ..ServiceConfig::default() };
        let svc = KernelService::new(cfg);
        let (da, db) = dense_pair(8, 1.0);
        let (sa, sb) = sparse_pair(8);
        let (wa, wb) = dense_pair(24, 1.0);

        svc.submit(&dot_request(&da, &db)).unwrap(); // dense in cache
        svc.submit(&dot_request(&sa, &sb)).unwrap(); // sparse in cache
        svc.submit(&dot_request(&da, &db)).unwrap(); // dense now most recent
        svc.submit(&dot_request(&wa, &wb)).unwrap(); // evicts sparse (LRU)
        assert_eq!(svc.cached(), 2);
        assert_eq!(svc.stats().evictions, 1);

        let r = svc.submit(&dot_request(&da, &db)).unwrap();
        assert!(r.cache_hit, "dense survived eviction");
        let r = svc.submit(&dot_request(&sa, &sb)).unwrap();
        assert!(!r.cache_hit, "sparse was evicted");
    }

    #[test]
    fn cache_hits_are_pointer_stable() {
        let svc = KernelService::default();
        let (a, b) = dense_pair(32, 1.0);
        svc.submit(&dot_request(&a, &b)).unwrap();

        let ptrs = |svc: &KernelService| -> (*const f64, *const f64) {
            let inner = svc.lock_inner();
            let entry = inner
                .slots
                .values()
                .find_map(|s| match s {
                    SlotState::Ready(e) => Some(e),
                    SlotState::Busy => None,
                })
                .expect("one cached entry");
            let bufs = entry.base.buffers();
            let a_val = bufs.lookup("A_val").expect("input values buffer");
            let c_val = bufs.lookup("C_val").expect("output values buffer");
            (bufs.get(a_val).as_f64().unwrap().as_ptr(), bufs.get(c_val).as_f64().unwrap().as_ptr())
        };
        let before = ptrs(&svc);
        for scale in [2.0, -7.0, 0.25] {
            let (a2, b2) = dense_pair(32, scale);
            let r = svc.submit(&dot_request(&a2, &b2)).unwrap();
            assert!(r.cache_hit);
        }
        let after = ptrs(&svc);
        assert_eq!(before, after, "cache-hit reruns must not reallocate buffers");
    }

    #[test]
    fn fault_ladder_degrades_with_bit_identical_results() {
        let (a, b) = sparse_pair(64);
        let expected = {
            let svc = KernelService::default();
            svc.submit(&dot_request(&a, &b)).unwrap().scalar.unwrap()
        };

        // k injected panics walk the ladder: 1 → fast (after quarantine +
        // recompile), 2 → typed serial, 3 → untyped, 4 → oracle, 5 → typed
        // Faulted error.  Every served tier returns the identical scalar.
        let expect_tier = [Tier::Fast, Tier::TypedSerial, Tier::Untyped, Tier::Oracle];
        let points = [
            InjectPoint::PreRun,
            InjectPoint::MidRun,
            InjectPoint::PostRun,
            InjectPoint::PreRun,
            InjectPoint::MidRun,
        ];
        for k in 1..=5u64 {
            let svc = KernelService::default();
            svc.submit(&dot_request(&a, &b)).unwrap(); // warm: rid 0
            let mut plan = FaultPlan::new();
            for p in 0..k {
                plan.push(FaultRule {
                    request: 1,
                    point: points[p as usize],
                    kind: FaultKind::Panic,
                });
            }
            svc.install_faults(plan);
            let result = svc.submit(&dot_request(&a, &b));
            let stats = svc.stats();
            if k <= 4 {
                let resp = result.unwrap();
                assert_eq!(resp.tier, expect_tier[k as usize - 1], "k = {k}");
                assert_eq!(
                    resp.scalar.unwrap().to_bits(),
                    expected.to_bits(),
                    "degraded result must be bit-identical (k = {k})"
                );
            } else {
                match result {
                    Err(ServiceError::Faulted { attempts, .. }) => assert_eq!(attempts, 5),
                    other => panic!("expected Faulted, got {other:?}"),
                }
            }
            assert_eq!(svc.pending_faults(), 0, "all {k} rules fired");
            assert_eq!(stats.panics, k, "every injected panic was caught");
            let faults: u64 = stats.faults_by_tier.iter().sum();
            assert_eq!(faults, k);
            // One quarantine + recompile as soon as the fast tier faults.
            if k >= 1 {
                assert_eq!(stats.quarantined, 1);
                assert_eq!(stats.recompiles, 1);
            }
        }
    }

    #[test]
    fn poisoned_entry_is_quarantined_and_recompiled() {
        let svc = KernelService::default();
        let (a, b) = dense_pair(16, 1.0);
        let baseline = svc.submit(&dot_request(&a, &b)).unwrap().scalar.unwrap();

        let mut plan = FaultPlan::new();
        plan.push(FaultRule {
            request: 1,
            point: InjectPoint::Lookup,
            kind: FaultKind::PoisonEntry,
        });
        svc.install_faults(plan);
        let resp = svc.submit(&dot_request(&a, &b)).unwrap();
        assert_eq!(resp.scalar.unwrap().to_bits(), baseline.to_bits());
        assert_eq!(resp.tier, Tier::Fast);
        let stats = svc.stats();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.recompiles, 1);
    }

    #[test]
    fn injected_resource_faults_yield_typed_errors() {
        let svc = KernelService::default();
        let (a, b) = dense_pair(16, 1.0);
        svc.submit(&dot_request(&a, &b)).unwrap();

        let mut plan = FaultPlan::new();
        plan.push(FaultRule {
            request: 1,
            point: InjectPoint::MidRun,
            kind: FaultKind::BudgetExhaustion,
        });
        plan.push(FaultRule {
            request: 2,
            point: InjectPoint::PreRun,
            kind: FaultKind::DeadlineExpiry,
        });
        svc.install_faults(plan);

        match svc.submit(&dot_request(&a, &b)) {
            Err(ServiceError::Runtime(RuntimeError::StepBudgetExceeded { budget: 1 })) => {}
            other => panic!("expected step-budget error, got {other:?}"),
        }
        match svc.submit(&dot_request(&a, &b)) {
            Err(ServiceError::Runtime(RuntimeError::Deadline { .. })) => {}
            other => panic!("expected deadline error, got {other:?}"),
        }
        let stats = svc.stats();
        assert_eq!(stats.budget_errors, 1);
        assert_eq!(stats.deadline_errors, 1);
        // Resource errors don't poison the entry: the next plain request
        // still hits and succeeds.
        let resp = svc.submit(&dot_request(&a, &b)).unwrap();
        assert!(resp.cache_hit);
        assert_eq!(resp.tier, Tier::Fast);
    }

    #[test]
    fn admission_control_sheds_typed_overload() {
        let cfg = ServiceConfig { max_in_flight: 0, ..ServiceConfig::default() };
        let svc = KernelService::new(cfg);
        let (a, b) = dense_pair(8, 1.0);
        match svc.submit(&dot_request(&a, &b)) {
            Err(ServiceError::Overloaded { limit: 0, .. }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(svc.stats().shed, 1);
    }

    #[test]
    fn compile_errors_are_typed_and_do_not_wedge_the_slot() {
        let svc = KernelService::default();
        let (a, _) = dense_pair(8, 1.0);
        let i = idx("i");
        // References an unbound tensor "Z".
        let program = forall(
            i.clone(),
            add_assign(scalar("C"), mul(access("A", [i.clone()]), access("Z", [i]))),
        );
        let req = Request::new(program).input(&a).output_scalar("C");
        assert!(matches!(svc.submit(&req), Err(ServiceError::Compile(_))));
        // The Busy marker was removed: resubmitting fails the same way
        // instead of deadlocking on the slot.
        assert!(matches!(svc.submit(&req), Err(ServiceError::Compile(_))));
        assert_eq!(svc.cached(), 0);
    }

    #[test]
    fn seeded_fault_plans_are_reproducible() {
        let p1 = FaultPlan::seeded(42, 500, 250);
        let p2 = FaultPlan::seeded(42, 500, 250);
        assert_eq!(p1.rules, p2.rules);
        assert!(!p1.is_empty());
        // Roughly a quarter of requests faulted; exact count is seeded.
        assert!(p1.len() > 50 && p1.len() < 250, "got {}", p1.len());
        let p3 = FaultPlan::seeded(43, 500, 250);
        assert_ne!(p1.rules, p3.rules);
        assert_eq!(FaultPlan::seeded(7, 100, 0).len(), 0);
        // At full rate every request gets at least one rule (panics may
        // stack a second).
        assert!(FaultPlan::seeded(7, 100, 1000).len() >= 100);
    }

    #[test]
    fn deadline_covers_queueing_on_a_busy_slot() {
        use std::sync::atomic::AtomicBool;

        let cfg =
            ServiceConfig { deadline: Some(Duration::from_millis(30)), ..ServiceConfig::default() };
        let svc = Arc::new(KernelService::new(cfg));
        let (a, b) = dense_pair(8, 1.0);
        svc.submit(&dot_request(&a, &b)).unwrap();

        // Check out the only entry by hand so the slot stays Busy, then
        // submit from another thread: it must time out with Deadline rather
        // than wait forever.
        let opt = svc.cfg.opt_level;
        let req = dot_request(&a, &b);
        let key = svc.key_of(&req, opt);
        let (entry, hit, cached) = svc.checkout(key, &req, opt, None).unwrap();
        assert!(hit && cached);

        let done = Arc::new(AtomicBool::new(false));
        let waiter = {
            let svc = Arc::clone(&svc);
            let done = Arc::clone(&done);
            let req = dot_request(&a, &b);
            std::thread::spawn(move || {
                let out = svc.submit(&req);
                done.store(true, Ordering::SeqCst);
                out
            })
        };
        let out = waiter.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
        match out {
            Err(ServiceError::Runtime(RuntimeError::Deadline { .. })) => {}
            other => panic!("expected Deadline while queued, got {other:?}"),
        }
        svc.checkin(key, entry, false);
        // Slot is usable again.
        assert!(svc.submit(&dot_request(&a, &b)).unwrap().cache_hit);
    }

    #[test]
    fn batches_group_by_structure_and_preserve_order() {
        let svc = KernelService::default();
        let (da, db) = dense_pair(16, 1.0);
        let (da2, db2) = dense_pair(16, -2.0);
        let (sa, sb) = sparse_pair(16);
        let bad = Tensor::from_raw_parts(
            "A",
            vec![
                Level::Dense { size: 2 },
                Level::SparseList { size: 5, pos: vec![0, 3, 1], idx: vec![1, 2, 4] },
            ],
            vec![1.0, 2.0, 3.0],
            0.0,
        );
        let i = idx("i");
        let j = idx("j");
        let bad_req = Request::new(forall(
            i.clone(),
            forall(j.clone(), add_assign(scalar("C"), access("A", [i, j]))),
        ))
        .input(&bad)
        .output_scalar("C");

        let reqs = vec![
            dot_request(&da, &db),   // dense group, compiles
            dot_request(&sa, &sb),   // sparse group, compiles
            dot_request(&da2, &db2), // dense group, rebinds
            bad_req,                 // rejected at the boundary
        ];
        let results = svc.submit_batch(&reqs);
        assert_eq!(results.len(), 4);
        let expect_dense = |scale: f64| -> f64 {
            (0..16).map(|k| scale * (k as f64 + 1.0) * (0.5 * k as f64 - 1.0)).sum()
        };
        assert_eq!(results[0].as_ref().unwrap().scalar.unwrap().to_bits(), {
            expect_dense(1.0).to_bits()
        });
        assert!(!results[0].as_ref().unwrap().cache_hit);
        assert!(!results[1].as_ref().unwrap().cache_hit);
        assert_eq!(results[2].as_ref().unwrap().scalar.unwrap().to_bits(), {
            expect_dense(-2.0).to_bits()
        });
        assert!(results[2].as_ref().unwrap().cache_hit, "group member rebinds the shared entry");
        match &results[3] {
            Err(ServiceError::InvalidInput { name, .. }) => assert_eq!(name, "A"),
            other => panic!("expected InvalidInput, got {other:?}"),
        }

        let stats = svc.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.batch_groups, 2, "dense and sparse structures form two groups");
        assert_eq!(stats.compiles, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn an_empty_batch_is_a_no_op() {
        let svc = KernelService::default();
        assert!(svc.submit_batch(&[]).is_empty());
        assert_eq!(svc.stats().requests, 0);
    }

    #[test]
    fn saturated_admission_queues_instead_of_shedding() {
        let cfg = ServiceConfig { max_in_flight: 1, queue_depth: 8, ..ServiceConfig::default() };
        let svc = Arc::new(KernelService::new(cfg));
        let (a, b) = dense_pair(8, 1.0);
        svc.submit(&dot_request(&a, &b)).unwrap(); // warm: rid 0

        // rid 1 stalls inside its slot, keeping the service saturated.
        let mut plan = FaultPlan::new();
        plan.push(FaultRule { request: 1, point: InjectPoint::PreRun, kind: FaultKind::Stall });
        svc.install_faults(plan);
        let stalled = {
            let svc = Arc::clone(&svc);
            let req = dot_request(&a, &b);
            std::thread::spawn(move || svc.submit(&req))
        };
        while svc.stalled() == 0 {
            std::thread::yield_now();
        }

        // The next request queues behind the stalled one instead of being
        // shed, and completes once the stall releases.
        let queued = {
            let svc = Arc::clone(&svc);
            let req = dot_request(&a, &b);
            std::thread::spawn(move || svc.submit(&req))
        };
        while svc.health().queued == 0 {
            std::thread::yield_now();
        }
        svc.release_stalls();
        assert!(stalled.join().unwrap().is_ok());
        assert!(queued.join().unwrap().is_ok());
        let stats = svc.stats();
        assert_eq!(stats.shed, 0, "saturation queued rather than shed");
        assert_eq!(stats.queued, 1);
        assert_eq!(stats.queue_timeouts, 0);
    }

    #[test]
    fn quarantine_backoff_is_capped_by_the_deadline() {
        // A huge retry backoff with a tiny deadline: the quarantine path
        // must not sleep through the deadline.
        let cfg = ServiceConfig {
            retry_backoff: Duration::from_secs(10),
            deadline: Some(Duration::from_millis(50)),
            ..ServiceConfig::default()
        };
        let svc = KernelService::new(cfg);
        let (a, b) = dense_pair(8, 1.0);
        svc.submit(&dot_request(&a, &b)).unwrap(); // warm: rid 0

        let mut plan = FaultPlan::new();
        plan.push(FaultRule { request: 1, point: InjectPoint::PreRun, kind: FaultKind::Panic });
        svc.install_faults(plan);
        let started = Instant::now();
        let result = svc.submit(&dot_request(&a, &b));
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "backoff slept {elapsed:?}, ignoring the 50ms deadline"
        );
        // The retry may finish inside the deadline's last statement-check
        // window or trip it; both are typed, neither hangs.
        match result {
            Ok(resp) => assert_eq!(resp.tier, Tier::Fast),
            Err(ServiceError::Runtime(RuntimeError::Deadline { .. })) => {}
            other => panic!("expected Ok or Deadline, got {other:?}"),
        }
    }

    #[test]
    fn queue_timeout_is_attributed_to_the_queue_not_execution() {
        let cfg = ServiceConfig {
            max_in_flight: 1,
            queue_depth: 4,
            deadline: Some(Duration::from_millis(20)),
            ..ServiceConfig::default()
        };
        let svc = KernelService::new(cfg);
        let (a, b) = dense_pair(8, 1.0);
        svc.submit(&dot_request(&a, &b)).unwrap();

        // Hold the only execution slot directly: the next submit spends its
        // entire deadline in the admission queue and must say so.
        let slot = svc.queue.acquire(None).unwrap();
        match svc.submit(&dot_request(&a, &b)) {
            Err(ServiceError::QueueTimeout { waited_ms, .. }) => assert!(waited_ms >= 15),
            other => panic!("expected QueueTimeout, got {other:?}"),
        }
        drop(slot);
        let stats = svc.stats();
        assert_eq!(stats.queue_timeouts, 1);
        assert_eq!(stats.deadline_errors, 0, "the expiry was queue-, not execution-attributed");
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn invalid_inputs_are_rejected_at_the_boundary() {
        let svc = KernelService::default();
        let bad = Tensor::from_raw_parts(
            "A",
            vec![Level::SparseList { size: 4, pos: vec![0, 3], idx: vec![2, 1, 3] }],
            vec![1.0, 2.0, 3.0],
            0.0,
        );
        let i = idx("i");
        let req = Request::new(forall(i.clone(), add_assign(scalar("C"), access("A", [i]))))
            .input(&bad)
            .output_scalar("C");
        match svc.submit(&req) {
            Err(ServiceError::InvalidInput { name, detail }) => {
                assert_eq!(name, "A");
                assert!(!detail.is_empty());
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        // Nothing was admitted, compiled, or cached for the bad request.
        let stats = svc.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.compiles, 0);
        assert_eq!(svc.cached(), 0);
    }
}
