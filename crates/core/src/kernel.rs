//! The user-facing compiler API: bind tensors, compile a CIN program, run
//! the generated code.

use std::collections::HashMap;

use finch_cin::CinStmt;
use finch_formats::{BoundLevel, BoundTensor, Level, LevelSpec, OutputBuilder, Tensor};
use finch_ir::opt::{PassReport, ValidationLevel};
use finch_ir::pretty::Printer;
use finch_ir::{
    run_sharded, Buffer, BufferSet, ExecStats, Interpreter, Names, OptLevel, OptStats, Program,
    RuntimeError, ShardPlan, Stmt, Vm, Watch,
};
use finch_rewrite::Rewriter;

use crate::error::CompileError;
use crate::lower::statements::{init_output, lower_stmt};
use crate::lower::{Binding, LowerCtx, OutputBinding, OutputSink};

/// The execution engine a [`CompiledKernel`] runs on.
///
/// Both engines execute the same lowered IR and maintain identical
/// [`ExecStats`] work counters; they are differential-tested against each
/// other (outputs and counters bit-identical) in the workspace test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The flat register bytecode VM (`finch_ir::vm`).  The default: the
    /// kernel is compiled once to bytecode and runs in a tight dispatch
    /// loop over unboxed typed registers.
    #[default]
    Bytecode,
    /// The tree-walking interpreter (`finch_ir::interp`), retained as the
    /// semantics oracle for differential testing.
    TreeWalk,
}

/// Resolve a requested worker-thread count: `0` means "auto" — the
/// machine's [`std::thread::available_parallelism`] — and anything else is
/// clamped to at least 1 (the serial path).
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Copy an `i64` array into an existing buffer in place, reusing its
/// capacity (the rebind fast path; replaces the buffer only if a kind
/// mismatch somehow slipped past binding).
fn copy_i64(bufs: &mut BufferSet, id: finch_ir::BufId, src: &[i64]) {
    match bufs.get_mut(id) {
        Buffer::I64(d) => {
            d.clear();
            d.extend_from_slice(src);
        }
        other => *other = Buffer::I64(src.to_vec().into()),
    }
}

impl Engine {
    /// A short stable label, used by the benchmark harness and its JSON
    /// report (`tree_walk` / `bytecode`).
    pub fn label(self) -> &'static str {
        match self {
            Engine::Bytecode => "bytecode",
            Engine::TreeWalk => "tree_walk",
        }
    }
}

/// A kernel under construction: tensors are bound to it, then a CIN program
/// is compiled against those bindings.
///
/// [`Kernel::compile`] produces both the lowered IR tree and its flat
/// register bytecode; the resulting [`CompiledKernel`] runs on the bytecode
/// VM by default (see [`Engine`] for selecting the tree-walking oracle).
///
/// ```
/// use finch::build::*;
/// use finch::{Kernel, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Tensor::sparse_list_vector("A", &[0.0, 1.5, 0.0, 2.0]);
/// let b = Tensor::dense_vector("B", &[1.0, 10.0, 100.0, 1000.0]);
///
/// let mut kernel = Kernel::new();
/// kernel.bind_input(&a).bind_input(&b).bind_output_scalar("C");
///
/// let i = idx("i");
/// let program = forall(i.clone(), add_assign(scalar("C"), mul(access("A", [i.clone()]), access("B", [i]))));
/// let mut compiled = kernel.compile(&program)?;
/// compiled.run()?;   // executes on the bytecode VM
/// assert_eq!(compiled.output_scalar("C")?, 2015.0);
/// // Non-scalar and unknown names are typed errors, not silent `None`s:
/// assert!(compiled.output_scalar("missing").is_err());
/// # Ok(()) }
/// ```
///
/// Outputs are format-polymorphic: [`Kernel::bind_output_format`] selects a
/// sparse list assembled by appending, and
/// [`CompiledKernel::output_tensor`] finalizes it into a [`Tensor`] that can
/// be re-bound as the input of a follow-up kernel:
///
/// ```
/// use finch::build::*;
/// use finch::{Kernel, LevelSpec, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Tensor::sparse_list_vector("A", &[0.0, 1.5, 0.0, 2.0]);
/// let b = Tensor::sparse_list_vector("B", &[0.0, 10.0, 5.0, 3.0]);
/// let mut kernel = Kernel::new();
/// kernel
///     .bind_input(&a)
///     .bind_input(&b)
///     .bind_output_format("C", &[LevelSpec::SparseList { size: 4 }]);
/// let i = idx("i");
/// let program = forall(i.clone(), assign(access("C", [i.clone()]), mul(access("A", [i.clone()]), access("B", [i]))));
/// let mut compiled = kernel.compile(&program)?;
/// compiled.run()?;   // does work proportional to the stored entries
/// let c = compiled.output_tensor("C")?;
/// assert_eq!(c.to_dense(), vec![0.0, 15.0, 0.0, 6.0]);
/// assert_eq!(c.stored(), 2);   // only the intersection was materialised
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct Kernel {
    names: Names,
    bufs: BufferSet,
    bindings: HashMap<String, Binding>,
    rewriter: Rewriter,
    opt_level: OptLevel,
    typed_dispatch: bool,
    simd: bool,
    validation: ValidationLevel,
    threads: usize,
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

impl Kernel {
    /// An empty kernel with the default rewrite rule set.
    pub fn new() -> Self {
        Kernel {
            names: Names::new(),
            bufs: BufferSet::new(),
            bindings: HashMap::new(),
            rewriter: Rewriter::with_default_rules(),
            opt_level: OptLevel::default(),
            typed_dispatch: true,
            simd: true,
            validation: ValidationLevel::default(),
            threads: 1,
        }
    }

    /// The worker-thread count [`CompiledKernel::run`] will use for loops
    /// the shard analysis proved splittable (default 1 = the serial path,
    /// exactly as before the parallel tier existed).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Select the worker-thread count used by the compiled kernel.  `0`
    /// resolves to the machine's [`std::thread::available_parallelism`]
    /// ("auto"); `1` selects the serial path.  Parallel runs are
    /// bit-identical to serial ones — kernels the analysis cannot prove
    /// shardable simply stay serial.
    pub fn set_threads(&mut self, threads: usize) -> &mut Self {
        self.threads = resolve_threads(threads);
        self
    }

    /// Builder-style variant of [`Kernel::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = resolve_threads(threads);
        self
    }

    /// How much post-pass checking [`Kernel::compile`]'s pass manager
    /// performs: always-on translation validation in debug/test builds,
    /// off in release unless opted back in (the figure harness's
    /// `--validate`).
    pub fn validation(&self) -> ValidationLevel {
        self.validation
    }

    /// Select the [`ValidationLevel`] applied by [`Kernel::compile`].
    pub fn set_validation(&mut self, validation: ValidationLevel) -> &mut Self {
        self.validation = validation;
        self
    }

    /// Builder-style variant of [`Kernel::set_validation`].
    pub fn with_validation(mut self, validation: ValidationLevel) -> Self {
        self.validation = validation;
        self
    }

    /// Whether [`Kernel::compile`] will run the register-type inference
    /// stage and emit monomorphic typed bytecode (the default at
    /// [`OptLevel::Default`] and above; never applied at
    /// [`OptLevel::None`]).
    pub fn typed_dispatch(&self) -> bool {
        self.typed_dispatch
    }

    /// Enable or disable the typed-dispatch stage (used by the benchmark
    /// harness to measure the stage's wall-clock win in isolation).
    pub fn set_typed_dispatch(&mut self, typed: bool) -> &mut Self {
        self.typed_dispatch = typed;
        self
    }

    /// Builder-style variant of [`Kernel::set_typed_dispatch`].
    pub fn with_typed_dispatch(mut self, typed: bool) -> Self {
        self.typed_dispatch = typed;
        self
    }

    /// Whether [`Kernel::compile`] will run the vectorize stage over the
    /// typed bytecode, fusing matching inner loops into SIMD-style kernel
    /// ops (the default; requires typed dispatch and an [`OptLevel`]
    /// above [`OptLevel::None`] to have any effect).
    pub fn simd(&self) -> bool {
        self.simd
    }

    /// Enable or disable the vectorize stage (used by the benchmark
    /// harness to measure the kernel-op tier's wall-clock win in
    /// isolation).
    pub fn set_simd(&mut self, simd: bool) -> &mut Self {
        self.simd = simd;
        self
    }

    /// Builder-style variant of [`Kernel::set_simd`].
    pub fn with_simd(mut self, simd: bool) -> Self {
        self.simd = simd;
        self
    }

    /// The optimisation level [`Kernel::compile`] will apply.
    pub fn opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// Select the optimisation level applied by [`Kernel::compile`]
    /// (defaults to [`OptLevel::Default`]).
    pub fn set_opt_level(&mut self, level: OptLevel) -> &mut Self {
        self.opt_level = level;
        self
    }

    /// Builder-style variant of [`Kernel::set_opt_level`].
    pub fn with_opt_level(mut self, level: OptLevel) -> Self {
        self.opt_level = level;
        self
    }

    /// Bind a structured input tensor under its own name.
    pub fn bind_input(&mut self, tensor: &Tensor) -> &mut Self {
        let bound = BoundTensor::bind(tensor, &mut self.bufs);
        self.bindings.insert(tensor.name().to_string(), Binding::Input(bound));
        self
    }

    /// Bind a dense output tensor of the given shape, initialised to `init`
    /// by the generated code at the start of every run.
    pub fn bind_output(&mut self, name: &str, shape: &[usize], init: f64) -> &mut Self {
        let len = shape.iter().product::<usize>().max(1);
        let buf = self.bufs.add(&format!("{name}_val"), Buffer::F64(vec![init; len].into()));
        let specs = shape.iter().map(|&size| LevelSpec::Dense { size }).collect();
        self.bindings.insert(
            name.to_string(),
            Binding::Output(OutputBinding { specs, init, sink: OutputSink::Dense { buf } }),
        );
        self
    }

    /// Bind a scalar output, re-initialised to zero before every run.
    pub fn bind_output_scalar(&mut self, name: &str) -> &mut Self {
        self.bind_output(name, &[], 0.0)
    }

    /// Bind an output tensor with an explicit level stack (outermost
    /// first), choosing how the generated code assembles the result.
    ///
    /// * An all-[`LevelSpec::Dense`] stack behaves exactly like
    ///   [`Kernel::bind_output`] with `init = 0.0`.
    /// * A stack whose **innermost** level is [`LevelSpec::SparseList`]
    ///   (any dense levels above it) is assembled by appending: each
    ///   executed store appends the coordinate and value, each fiber is
    ///   closed with its `pos` boundary, and the result does work
    ///   proportional to the number of stored entries instead of the dense
    ///   size.  Only overwriting (`=`) assignments can target it, and the
    ///   assembled result is read back with
    ///   [`CompiledKernel::output_tensor`].
    ///
    /// # Panics
    ///
    /// Panics when a [`LevelSpec::SparseList`] appears anywhere but the
    /// innermost position (sparse-over-sparse output assembly is not
    /// implemented).
    pub fn bind_output_format(&mut self, name: &str, specs: &[LevelSpec]) -> &mut Self {
        match specs.split_last() {
            Some((LevelSpec::SparseList { .. }, outer)) => {
                assert!(
                    outer.iter().all(|s| matches!(s, LevelSpec::Dense { .. })),
                    "sparse output levels are only supported in the innermost position \
                     (output `{name}`)"
                );
                let pos = self.bufs.add(&format!("{name}_pos"), Buffer::I64(vec![0].into()));
                let idx = self.bufs.add(&format!("{name}_idx"), Buffer::I64(Vec::new().into()));
                let val = self.bufs.add(&format!("{name}_val"), Buffer::F64(Vec::new().into()));
                self.bindings.insert(
                    name.to_string(),
                    Binding::Output(OutputBinding {
                        specs: specs.to_vec(),
                        init: 0.0,
                        sink: OutputSink::SparseList { pos, idx, val },
                    }),
                );
                self
            }
            _ => {
                assert!(
                    specs.iter().all(|s| matches!(s, LevelSpec::Dense { .. })),
                    "sparse output levels are only supported in the innermost position \
                     (output `{name}`)"
                );
                let shape: Vec<usize> = specs.iter().map(|s| s.size()).collect();
                self.bind_output(name, &shape, 0.0)
            }
        }
    }

    /// Access the rewrite engine to register domain-specific rules before
    /// compiling (paper §6.1: "users can add custom rules").
    pub fn rewriter_mut(&mut self) -> &mut Rewriter {
        &mut self.rewriter
    }

    /// Compile a CIN program against the bound tensors.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when the program references unbound
    /// tensors, is not concordant with the tensors' level orders, or uses
    /// unsupported features.
    pub fn compile(self, program: &CinStmt) -> Result<CompiledKernel, CompileError> {
        let Kernel {
            names,
            bufs,
            bindings,
            rewriter,
            opt_level,
            typed_dispatch,
            simd,
            validation,
            threads,
        } = self;
        let outputs: HashMap<String, OutputBinding> = bindings
            .iter()
            .filter_map(|(name, b)| match b {
                Binding::Output(o) => Some((name.clone(), o.clone())),
                Binding::Input(_) => None,
            })
            .collect();
        let inputs: HashMap<String, BoundTensor> = bindings
            .iter()
            .filter_map(|(name, b)| match b {
                Binding::Input(t) => Some((name.clone(), t.clone())),
                Binding::Output(_) => None,
            })
            .collect();
        let mut ctx = LowerCtx::new(names, bufs, bindings, rewriter);
        // Result arrays are initialised as soon as they enter scope (paper
        // §5.1): dense outputs get initialisation code at the top of the
        // generated program, counted like every other store — so a
        // dense-output kernel honestly pays its O(n) write traffic where a
        // sparse-output kernel pays O(stored).  Sparse outputs start empty
        // and are reset host-side before each run instead.  `where`
        // producers enter scope at their `where`, which emits their
        // (per-iteration) initialisation itself — initialising them here
        // too would double-count the store traffic.
        let mut where_results = std::collections::HashSet::new();
        program.visit(&mut |s| {
            if let CinStmt::Where { producer, .. } = s {
                for r in producer.results() {
                    where_results.insert(r.name().to_string());
                }
            }
        });
        let mut code = Vec::new();
        let mut sorted: Vec<(&String, &OutputBinding)> = outputs.iter().collect();
        sorted.sort_by_key(|(name, _)| name.as_str());
        for (name, ob) in sorted {
            if where_results.contains(name) {
                continue;
            }
            if let OutputSink::Dense { buf } = ob.sink {
                code.extend(init_output(buf, ob.len(), ob.init, &mut ctx));
            }
        }
        code.extend(lower_stmt(program, &mut ctx)?);
        // Finch relies on Julia to clean up the lowered straight-line code
        // (constant folding, copy propagation, invariant-load hoisting);
        // our engines execute the IR as given, so the same clean-up runs
        // here as an explicit staged pipeline, gated by the opt level.
        let raw_code = code;
        let raw_names = ctx.names.clone();
        let (code, bytecode, opt_stats, pass_reports) = optimize_kernel(
            &raw_code,
            &mut ctx.names,
            &ctx.bufs,
            opt_level,
            typed_dispatch,
            simd,
            validation,
        )?;
        let source = Printer::new(&ctx.names, &ctx.bufs).program(&code);
        let vm = Vm::new(&bytecode);
        Ok(CompiledKernel {
            code,
            raw_code,
            raw_names,
            bytecode,
            vm,
            names: ctx.names,
            bufs: ctx.bufs,
            outputs,
            inputs,
            source,
            program: format!("{program}"),
            engine: Engine::default(),
            step_budget: None,
            watch: None,
            alloc_budget: None,
            opt_level,
            opt_stats,
            typed_dispatch,
            simd,
            validation,
            threads,
            pass_reports,
        })
    }
}

/// Run the full optimise-and-lower pipeline — the IR passes, the bytecode
/// lowering, the peephole and (when enabled) the register-type inference
/// stage — through the translation-validated pass manager, producing the
/// artifacts both engines execute.  Used by [`Kernel::compile`] and
/// [`CompiledKernel::reoptimized`].  The typing stage needs the buffer
/// set: buffer element types seed the inference; at
/// [`ValidationLevel::Full`] the same buffers synthesize the witness
/// inputs every pass is differentially checked on.
fn optimize_kernel(
    raw_code: &[Stmt],
    names: &mut Names,
    bufs: &finch_ir::BufferSet,
    level: OptLevel,
    typed: bool,
    simd: bool,
    validation: ValidationLevel,
) -> Result<(Vec<Stmt>, Program, OptStats, Vec<PassReport>), CompileError> {
    let lowered =
        finch_ir::opt::optimize_and_lower(raw_code, names, bufs, level, typed, simd, validation)
            .map_err(|e| CompileError::ValidationFailed {
                pass: e.pass.to_string(),
                detail: e.detail,
            })?;
    Ok((lowered.code, lowered.program, lowered.stats, lowered.reports))
}

/// A compiled kernel: generated code (both the IR tree and its bytecode)
/// plus the buffers it runs against.
///
/// [`CompiledKernel::run`] executes on the flat register bytecode VM by
/// default; select the tree-walking oracle with [`CompiledKernel::set_engine`]
/// or a one-off [`CompiledKernel::run_with`]:
///
/// ```
/// use finch::build::*;
/// use finch::{Engine, Kernel, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Tensor::sparse_list_vector("A", &[0.0, 1.5, 0.0, 2.0]);
/// let b = Tensor::dense_vector("B", &[1.0, 10.0, 100.0, 1000.0]);
/// let mut kernel = Kernel::new();
/// kernel.bind_input(&a).bind_input(&b).bind_output_scalar("C");
/// let i = idx("i");
/// let program = forall(i.clone(), add_assign(scalar("C"), mul(access("A", [i.clone()]), access("B", [i]))));
///
/// let mut compiled = kernel.compile(&program)?.with_step_budget(1_000_000);
/// assert_eq!(compiled.engine(), Engine::Bytecode);      // the default
/// let fast = compiled.run()?;                           // bytecode VM
/// let oracle = compiled.run_with(Engine::TreeWalk)?;    // semantics oracle
/// assert_eq!(fast, oracle);                             // identical work counters
/// # Ok(()) }
/// ```
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    code: Vec<Stmt>,
    /// The lowered IR before any optimisation pass ran, kept so the same
    /// kernel can be re-derived at any [`OptLevel`] (see
    /// [`CompiledKernel::reoptimized`]).
    raw_code: Vec<Stmt>,
    /// The name table as it stood before optimisation (LICM creates fresh
    /// variables, so re-optimising must start from the pristine table).
    raw_names: Names,
    bytecode: Program,
    /// The persistent register VM: re-runs reset it in place instead of
    /// allocating a fresh register file per execution.
    vm: Vm,
    names: Names,
    bufs: BufferSet,
    outputs: HashMap<String, OutputBinding>,
    /// The bound input tensors, kept so later runs can swap in fresh data
    /// of the same structure without recompiling (and so the rebind can be
    /// validated against the structure the code was generated for).
    inputs: HashMap<String, BoundTensor>,
    source: String,
    program: String,
    engine: Engine,
    step_budget: Option<u64>,
    /// Cooperative deadline / cancellation applied to every run on either
    /// engine (the service arms this per request).
    watch: Option<Watch>,
    /// Output-allocation element budget applied to every run on either
    /// engine, alongside the step budget.
    alloc_budget: Option<u64>,
    opt_level: OptLevel,
    opt_stats: OptStats,
    typed_dispatch: bool,
    simd: bool,
    /// The validation level the pass manager ran at when this kernel was
    /// compiled (re-optimisations run at the same level).
    validation: ValidationLevel,
    /// Worker threads [`CompiledKernel::run`] uses on the bytecode engine
    /// when the compiled program carries a non-empty shard plan (1 = the
    /// serial path).
    threads: usize,
    /// One report per optimisation pass that ran: transform, verifier and
    /// translation-validation wall-clock in nanoseconds.
    pass_reports: Vec<PassReport>,
}

impl CompiledKernel {
    /// The generated code, rendered as pseudo-Rust (the reproduction of the
    /// paper's Figure 1b listings).
    pub fn code(&self) -> &str {
        &self.source
    }

    /// The CIN program this kernel was compiled from.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// The generated statements (for structural assertions in tests).
    pub fn stmts(&self) -> &[Stmt] {
        &self.code
    }

    /// The compiled bytecode (for structural assertions and debugging).
    pub fn bytecode(&self) -> &Program {
        &self.bytecode
    }

    /// The optimisation level this kernel was compiled at.
    pub fn opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// Per-pass optimisation counters from this kernel's compilation (IR
    /// folds, hoisted loads, fused bytecode pairs, ...).
    pub fn opt_stats(&self) -> OptStats {
        self.opt_stats
    }

    /// Re-derive this kernel at a different [`OptLevel`] from the kept
    /// pre-optimisation IR.  Buffers, outputs, engine selection, typed
    /// dispatch and step budget carry over, so the result is directly
    /// comparable against `self` — the benchmark harness uses this to
    /// time `OptLevel::None` against `OptLevel::Default` on identical
    /// kernels.
    pub fn reoptimized(&self, level: OptLevel) -> CompiledKernel {
        self.reoptimized_typed(level, self.typed_dispatch)
    }

    /// [`CompiledKernel::reoptimized`] with explicit control over the
    /// typed-dispatch stage, so the benchmark harness can time the same
    /// kernel with typed dispatch on and off at the same [`OptLevel`].
    pub fn reoptimized_typed(&self, level: OptLevel, typed: bool) -> CompiledKernel {
        self.reoptimized_simd(level, typed, self.simd)
    }

    /// [`CompiledKernel::reoptimized_typed`] with explicit control over
    /// the vectorize stage as well, so the benchmark harness can time the
    /// same kernel with the SIMD kernel-op tier on and off.
    pub fn reoptimized_simd(&self, level: OptLevel, typed: bool, simd: bool) -> CompiledKernel {
        self.rederive(level, typed, simd, self.validation)
            .expect("re-optimisation of already-validated code must validate")
    }

    /// Re-derive this kernel at its current [`OptLevel`] and dispatch mode
    /// under a different [`ValidationLevel`] — the benchmark harness uses
    /// this (via `figures --validate`) to measure per-pass verification
    /// and translation-validation cost on release builds, where the
    /// default level is [`ValidationLevel::Off`].
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::ValidationFailed`] when a pass's output
    /// fails the requested checks — which would be a compiler bug, not a
    /// user error.
    pub fn revalidated(&self, validation: ValidationLevel) -> Result<CompiledKernel, CompileError> {
        self.rederive(self.opt_level, self.typed_dispatch, self.simd, validation)
    }

    fn rederive(
        &self,
        level: OptLevel,
        typed: bool,
        simd: bool,
        validation: ValidationLevel,
    ) -> Result<CompiledKernel, CompileError> {
        let mut names = self.raw_names.clone();
        let (code, bytecode, opt_stats, pass_reports) = optimize_kernel(
            &self.raw_code,
            &mut names,
            &self.bufs,
            level,
            typed,
            simd,
            validation,
        )?;
        let source = Printer::new(&names, &self.bufs).program(&code);
        let vm = Vm::new(&bytecode);
        Ok(CompiledKernel {
            code,
            raw_code: self.raw_code.clone(),
            raw_names: self.raw_names.clone(),
            bytecode,
            vm,
            names,
            bufs: self.bufs.clone(),
            outputs: self.outputs.clone(),
            inputs: self.inputs.clone(),
            source,
            program: self.program.clone(),
            engine: self.engine,
            step_budget: self.step_budget,
            watch: self.watch.clone(),
            alloc_budget: self.alloc_budget,
            opt_level: level,
            opt_stats,
            typed_dispatch: typed,
            simd,
            validation,
            threads: self.threads,
            pass_reports,
        })
    }

    /// The [`ValidationLevel`] the pass manager ran at when this kernel was
    /// compiled.
    pub fn validation(&self) -> ValidationLevel {
        self.validation
    }

    /// Per-pass timing and validation reports from this kernel's
    /// compilation, in the order the passes ran.
    pub fn pass_reports(&self) -> &[PassReport] {
        &self.pass_reports
    }

    /// Whether this kernel's bytecode went through the typed-dispatch
    /// (register-type inference) stage.
    pub fn typed_dispatch(&self) -> bool {
        self.typed_dispatch
    }

    /// Whether this kernel's bytecode went through the vectorize stage
    /// (which only has an effect on typed bytecode above
    /// [`OptLevel::None`]).
    pub fn simd(&self) -> bool {
        self.simd
    }

    /// How many scalar inner-loop body instructions the vectorize stage
    /// replaced with SIMD kernel ops, over how many it examined in
    /// innermost typed counted loops — the vectorized fraction reported
    /// by the benchmark harness.
    pub fn instrs_vectorized(&self) -> (u64, u64) {
        (self.opt_stats.instrs_vectorized, self.opt_stats.instrs_vectorizable)
    }

    /// The worker-thread count [`CompiledKernel::run`] uses on the
    /// bytecode engine (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Select the worker-thread count for subsequent runs.  `0` resolves
    /// to the machine's [`std::thread::available_parallelism`] ("auto");
    /// `1` selects the serial path.  Threads only take effect on the
    /// bytecode engine and only over loops the shard analysis proved
    /// splittable (see [`CompiledKernel::sharded`]); everything else runs
    /// serial, so a parallel run is never incorrect, merely sometimes not
    /// parallel.
    pub fn set_threads(&mut self, threads: usize) -> &mut Self {
        self.threads = resolve_threads(threads);
        self
    }

    /// Builder-style variant of [`CompiledKernel::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = resolve_threads(threads);
        self
    }

    /// Whether the shard analysis proved at least one top-level counted
    /// loop of this kernel splittable across worker threads.  When this is
    /// `false`, [`CompiledKernel::set_threads`] has no effect on execution.
    pub fn sharded(&self) -> bool {
        !self.bytecode.shard_plan().is_empty()
    }

    /// The shard plan the compiler recorded on the bytecode: the loop
    /// regions the parallel driver may split, with per-buffer roles.
    /// Empty when nothing was proved shardable.
    pub fn shard_plan(&self) -> &ShardPlan {
        self.bytecode.shard_plan()
    }

    /// The engine [`CompiledKernel::run`] dispatches to.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Select the engine used by subsequent [`CompiledKernel::run`] calls.
    pub fn set_engine(&mut self, engine: Engine) -> &mut Self {
        self.engine = engine;
        self
    }

    /// Builder-style variant of [`CompiledKernel::set_engine`].
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The configured step budget, if any.
    pub fn step_budget(&self) -> Option<u64> {
        self.step_budget
    }

    /// Bound the number of executed statements on either engine; a run that
    /// exceeds the budget aborts with [`RuntimeError::StepBudgetExceeded`].
    /// Useful to guard long-running kernels (or miscompiled non-terminating
    /// code) at the call site.
    pub fn set_step_budget(&mut self, budget: u64) -> &mut Self {
        self.step_budget = Some(budget);
        self
    }

    /// Builder-style variant of [`CompiledKernel::set_step_budget`].
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = Some(budget);
        self
    }

    /// Remove a previously configured step budget.
    pub fn clear_step_budget(&mut self) -> &mut Self {
        self.step_budget = None;
        self
    }

    /// The configured cooperative watch (deadline / cancellation), if any.
    pub fn watch(&self) -> Option<&Watch> {
        self.watch.as_ref()
    }

    /// Set or clear a cooperative [`Watch`] applied to every run on either
    /// engine: a run whose deadline expires (or whose cancellation flag is
    /// raised) aborts with [`RuntimeError::Deadline`], checked on the same
    /// statement path as the step budget.  Buffers stay reusable — the
    /// next run resets them in place exactly as after a budget abort.
    pub fn set_watch(&mut self, watch: Option<Watch>) -> &mut Self {
        self.watch = watch;
        self
    }

    /// Builder-style variant of [`CompiledKernel::set_watch`].
    pub fn with_watch(mut self, watch: Watch) -> Self {
        self.watch = Some(watch);
        self
    }

    /// The configured output-allocation element budget, if any.
    pub fn alloc_budget(&self) -> Option<u64> {
        self.alloc_budget
    }

    /// Bound the number of elements a run may append to growable (sparse)
    /// outputs on either engine; exceeding it aborts with
    /// [`RuntimeError::AllocBudgetExceeded`].  The admission-control
    /// companion of the step budget.
    pub fn set_alloc_budget(&mut self, budget: Option<u64>) -> &mut Self {
        self.alloc_budget = budget;
        self
    }

    /// Builder-style variant of [`CompiledKernel::set_alloc_budget`].
    pub fn with_alloc_budget(mut self, budget: u64) -> Self {
        self.alloc_budget = Some(budget);
        self
    }

    /// Replace the data of a bound input tensor in place, without
    /// recompiling: the tensor's arrays are copied into the kernel's
    /// existing buffers (reusing their capacity, so steady-state rebinds
    /// of same-sized instances allocate nothing).
    ///
    /// The new tensor must match the structure the kernel was compiled
    /// against — same name, same level kinds and dimension sizes, same
    /// fill value (the fill is baked into the generated code) — but its
    /// stored entries (coordinates and values) are free to differ.  This
    /// is what lets a kernel cache serve many tensor instances of one
    /// structural shape from a single compilation.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadInputRebind`] (and leaves every buffer
    /// untouched) when the structure does not match.
    pub fn rebind_input(&mut self, tensor: &Tensor) -> Result<(), RuntimeError> {
        let mismatch = |detail: String| RuntimeError::BadInputRebind {
            name: tensor.name().to_string(),
            detail,
        };
        let bound = self.inputs.get(tensor.name()).ok_or_else(|| {
            mismatch("no input tensor was bound under this name at compile time".into())
        })?;
        if tensor.fill().to_bits() != bound.fill().to_bits() {
            return Err(mismatch(format!(
                "fill value {} differs from the compiled fill {}",
                tensor.fill(),
                bound.fill()
            )));
        }
        if tensor.ndim() != bound.ndim() {
            return Err(mismatch(format!(
                "rank {} differs from the compiled rank {}",
                tensor.ndim(),
                bound.ndim()
            )));
        }
        // Validate every level before touching any buffer, so a failed
        // rebind is atomic.
        for (k, (level, blevel)) in tensor.levels().iter().zip(bound.levels()).enumerate() {
            let ok = matches!(
                (level, blevel),
                (Level::Dense { .. }, BoundLevel::Dense { .. })
                    | (Level::SparseList { .. }, BoundLevel::SparseList { .. })
                    | (Level::SparseBand { .. }, BoundLevel::SparseBand { .. })
                    | (Level::SparseVbl { .. }, BoundLevel::SparseVbl { .. })
                    | (Level::RunLength { .. }, BoundLevel::RunLength { .. })
                    | (Level::PackBits { .. }, BoundLevel::PackBits { .. })
                    | (Level::Bitmap { .. }, BoundLevel::Bitmap { .. })
                    | (Level::Triangular { .. }, BoundLevel::Triangular { .. })
                    | (Level::Symmetric { .. }, BoundLevel::Symmetric { .. })
                    | (Level::Ragged { .. }, BoundLevel::Ragged { .. })
            );
            if !ok {
                return Err(mismatch(format!(
                    "level {k} is {}, but the kernel was compiled for a different level kind",
                    level.format_name()
                )));
            }
            if level.size() != blevel.size() {
                return Err(mismatch(format!(
                    "level {k} has size {}, but the kernel was compiled for size {}",
                    level.size(),
                    blevel.size()
                )));
            }
        }
        // Copy the arrays into the existing buffers in place.  Levels are
        // re-fetched by index (a `BoundLevel` clone is heap-free) so the
        // cache-hit rebind path performs no allocation of its own.
        let values_id = bound.values();
        let nlevels = bound.ndim();
        for k in 0..nlevels {
            let blevel = self.inputs[tensor.name()].levels()[k].clone();
            let level = &tensor.levels()[k];
            match (level, blevel) {
                (
                    Level::SparseList { pos, idx, .. },
                    BoundLevel::SparseList { pos: bp, idx: bi, .. },
                )
                | (
                    Level::RunLength { pos, idx, .. },
                    BoundLevel::RunLength { pos: bp, idx: bi, .. },
                ) => {
                    copy_i64(&mut self.bufs, bp, pos);
                    copy_i64(&mut self.bufs, bi, idx);
                }
                (
                    Level::SparseBand { pos, start, .. },
                    BoundLevel::SparseBand { pos: bp, start: bs, .. },
                ) => {
                    copy_i64(&mut self.bufs, bp, pos);
                    copy_i64(&mut self.bufs, bs, start);
                }
                (
                    Level::SparseVbl { pos, idx, ofs, .. },
                    BoundLevel::SparseVbl { pos: bp, idx: bi, ofs: bo, .. },
                )
                | (
                    Level::PackBits { pos, idx, ofs, .. },
                    BoundLevel::PackBits { pos: bp, idx: bi, ofs: bo, .. },
                ) => {
                    copy_i64(&mut self.bufs, bp, pos);
                    copy_i64(&mut self.bufs, bi, idx);
                    copy_i64(&mut self.bufs, bo, ofs);
                }
                (Level::Bitmap { tbl, .. }, BoundLevel::Bitmap { tbl: bt, .. }) => {
                    match self.bufs.get_mut(bt) {
                        Buffer::Bool(d) => {
                            d.clear();
                            d.extend_from_slice(tbl);
                        }
                        other => *other = Buffer::Bool(tbl.clone()),
                    }
                }
                (Level::Ragged { pos, .. }, BoundLevel::Ragged { pos: bp, .. }) => {
                    copy_i64(&mut self.bufs, bp, pos);
                }
                // Dense / Triangular / Symmetric levels carry no arrays.
                _ => {}
            }
        }
        match self.bufs.get_mut(values_id) {
            Buffer::F64(d) => {
                d.clear();
                d.extend_from_slice(tensor.values());
            }
            other => *other = Buffer::F64(tensor.values().to_vec().into()),
        }
        Ok(())
    }

    /// The names of the bound input tensors (rebind targets), sorted.
    pub fn input_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inputs.keys().cloned().collect();
        names.sort();
        names
    }

    /// The kernel's buffer set (crate-internal: the service's tests probe
    /// pointer stability of cache-hit reruns through this).
    #[cfg(test)]
    pub(crate) fn buffers(&self) -> &BufferSet {
        &self.bufs
    }

    /// Re-initialise the outputs and execute the kernel on the selected
    /// engine (the bytecode VM unless changed), returning the engine's work
    /// counters.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if the generated code faults (which the
    /// test suite treats as a compiler bug) or exceeds the step budget.
    pub fn run(&mut self) -> Result<ExecStats, RuntimeError> {
        self.run_with(self.engine)
    }

    /// Re-initialise the outputs and execute the kernel on an explicitly
    /// chosen engine, leaving the configured default untouched.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] under the same conditions as
    /// [`CompiledKernel::run`].
    pub fn run_with(&mut self, engine: Engine) -> Result<ExecStats, RuntimeError> {
        self.reset_outputs();
        match engine {
            Engine::Bytecode => {
                // The persistent VM resets in place: re-runs allocate
                // nothing (no register file, no stats, no output vecs).
                self.vm.reset();
                self.vm.set_step_budget(self.step_budget);
                self.vm.set_watch(self.watch.clone());
                self.vm.set_alloc_budget(self.alloc_budget);
                if self.threads > 1 {
                    run_sharded(&mut self.vm, &self.bytecode, &mut self.bufs, self.threads)?;
                } else {
                    self.vm.run(&self.bytecode, &mut self.bufs)?;
                }
                Ok(self.vm.stats())
            }
            Engine::TreeWalk => {
                let mut interp = Interpreter::new(&self.names);
                if let Some(budget) = self.step_budget {
                    interp = interp.with_step_budget(budget);
                }
                interp.set_watch(self.watch.clone());
                interp.set_alloc_budget(self.alloc_budget);
                interp.run(&self.code, &mut self.bufs)?;
                Ok(interp.stats())
            }
        }
    }

    /// Re-initialise the outputs and execute once on the bytecode VM
    /// while collecting per-pc dispatch counts (untimed instrumentation;
    /// semantics and [`ExecStats`] identical to [`CompiledKernel::run`]).
    /// The benchmark harness derives the executed-typed-instruction
    /// fraction and the per-opcode histogram from the counts.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] under the same conditions as
    /// [`CompiledKernel::run`].
    pub fn profile(&mut self) -> Result<(ExecStats, Vec<u64>), RuntimeError> {
        self.reset_outputs();
        self.vm.reset();
        self.vm.set_step_budget(self.step_budget);
        self.vm.set_watch(self.watch.clone());
        self.vm.set_alloc_budget(self.alloc_budget);
        let counts = self.vm.run_profiled(&self.bytecode, &mut self.bufs)?;
        Ok((self.vm.stats(), counts))
    }

    /// Reset sparse outputs to their empty state so re-runs assemble from
    /// scratch.  Dense outputs are initialised by the generated code
    /// itself.  The growable arrays are truncated in place — their
    /// capacity (grown by earlier runs) is reused, so steady-state reruns
    /// perform no output allocation.
    fn reset_outputs(&mut self) {
        for out in self.outputs.values() {
            if let OutputSink::SparseList { pos, idx, val } = out.sink {
                match self.bufs.get_mut(pos) {
                    Buffer::I64(v) => {
                        v.clear();
                        v.push(0);
                    }
                    other => *other = Buffer::I64(vec![0].into()),
                }
                self.bufs.get_mut(idx).clear();
                self.bufs.get_mut(val).clear();
            }
        }
    }

    fn output_binding(&self, name: &str) -> Result<&OutputBinding, RuntimeError> {
        self.outputs.get(name).ok_or_else(|| RuntimeError::BadOutputQuery {
            name: name.to_string(),
            detail: "no output was bound under this name".into(),
        })
    }

    /// The dense (row-major) contents of a named output after the last run;
    /// sparse outputs are materialised through their fill value.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadOutputQuery`] when no output was bound
    /// under `name`, or when a sparse output's assembly is incomplete (the
    /// kernel has not run).
    pub fn output(&self, name: &str) -> Result<Vec<f64>, RuntimeError> {
        let ob = self.output_binding(name)?;
        match ob.sink {
            OutputSink::Dense { buf } => Ok(self.bufs.get(buf).to_f64_vec()),
            OutputSink::SparseList { .. } => Ok(self.output_tensor(name)?.to_dense()),
        }
    }

    /// The value of a scalar output after the last run.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadOutputQuery`] when no output was bound
    /// under `name` or when the binding is not a scalar (use
    /// [`CompiledKernel::output`] or [`CompiledKernel::output_tensor`] for
    /// tensor outputs).
    pub fn output_scalar(&self, name: &str) -> Result<f64, RuntimeError> {
        let ob = self.output_binding(name)?;
        match ob.sink {
            // Read the scalar lane directly — no intermediate vec, so the
            // cache-hit request path performs no read-back allocation.
            OutputSink::Dense { buf } if ob.specs.is_empty() => match self.bufs.get(buf) {
                Buffer::F64(v) => Ok(v[0]),
                other => Ok(other.to_f64_vec()[0]),
            },
            _ => Err(RuntimeError::BadOutputQuery {
                name: name.to_string(),
                detail: format!(
                    "bound as a rank-{} {} output, not a scalar; read it with `output` \
                     or `output_tensor`",
                    ob.specs.len(),
                    ob.specs.last().map_or("dense", |s| s.format_name()),
                ),
            }),
        }
    }

    /// Finalize a named output into a first-class [`Tensor`] (named after
    /// the output), so the result of one kernel can be re-bound as an input
    /// of the next — kernel chaining.
    ///
    /// Dense outputs materialise as dense tensors; sparse outputs keep
    /// their assembled `pos`/`idx`/`val` arrays, validated on the way out.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadOutputQuery`] when no output was bound
    /// under `name`, or when a sparse output's assembly is structurally
    /// invalid — in particular before the kernel has run.
    pub fn output_tensor(&self, name: &str) -> Result<Tensor, RuntimeError> {
        let ob = self.output_binding(name)?;
        let builder = OutputBuilder::new(name, ob.specs.clone());
        let bad = |e: finch_formats::TensorError| RuntimeError::BadOutputQuery {
            name: name.to_string(),
            detail: format!("assembled output is not a valid tensor: {e}"),
        };
        match ob.sink {
            OutputSink::Dense { buf } => {
                builder.finalize_dense(self.bufs.get(buf).to_f64_vec(), ob.init).map_err(bad)
            }
            OutputSink::SparseList { pos, idx, val } => {
                let pos = self.bufs.get(pos).as_i64().expect("pos is an i64 buffer").to_vec();
                let idx = self.bufs.get(idx).as_i64().expect("idx is an i64 buffer").to_vec();
                let val = self.bufs.get(val).as_f64().expect("val is an f64 buffer").to_vec();
                builder.finalize_sparse_list(pos, idx, val, ob.init).map_err(bad)
            }
        }
    }

    /// Names of all outputs.
    pub fn output_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.outputs.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finch_cin::build::*;
    use finch_formats::Level;

    fn dot_product(a: &Tensor, b: &Tensor) -> CompiledKernel {
        let mut kernel = Kernel::new();
        kernel.bind_input(a).bind_input(b).bind_output_scalar("C");
        let i = idx("i");
        let program = forall(
            i.clone(),
            add_assign(scalar("C"), mul(access(a.name(), [i.clone()]), access(b.name(), [i]))),
        );
        kernel.compile(&program).expect("dot product compiles")
    }

    fn reference_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn dense_dot_product_matches_reference() {
        let av = vec![1.0, 2.0, 3.0, 4.0];
        let bv = vec![0.5, 0.0, 2.0, 10.0];
        let a = Tensor::dense_vector("A", &av);
        let b = Tensor::dense_vector("B", &bv);
        let mut k = dot_product(&a, &b);
        k.run().unwrap();
        assert_eq!(k.output_scalar("C").unwrap(), reference_dot(&av, &bv));
    }

    #[test]
    fn sparse_times_dense_dot_product() {
        let av = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
        let bv: Vec<f64> = (0..11).map(|x| x as f64 * 0.5).collect();
        let a = Tensor::sparse_list_vector("A", &av);
        let b = Tensor::dense_vector("B", &bv);
        let mut k = dot_product(&a, &b);
        k.run().unwrap();
        let got = k.output_scalar("C").unwrap();
        assert!((got - reference_dot(&av, &bv)).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn sparse_times_sparse_dot_product_is_a_two_finger_merge() {
        let av = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
        let bv = vec![0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0];
        let a = Tensor::sparse_list_vector("A", &av);
        let b = Tensor::sparse_list_vector("B", &bv);
        let mut k = dot_product(&a, &b);
        k.run().unwrap();
        let got = k.output_scalar("C").unwrap();
        assert!((got - reference_dot(&av, &bv)).abs() < 1e-9, "got {got}");
        // The generated code contains a while loop (the merge) rather than a
        // dense for loop over the whole dimension.
        assert!(k.code().contains("while"), "generated code:\n{}", k.code());
    }

    #[test]
    fn sparse_list_times_band_reproduces_figure_1() {
        let av = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
        let bv = vec![0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0];
        let a = Tensor::sparse_list_vector("A", &av);
        let b = Tensor::band_vector("B", &bv);
        let mut k = dot_product(&a, &b);
        let stats = k.run().unwrap();
        let got = k.output_scalar("C").unwrap();
        assert!((got - reference_dot(&av, &bv)).abs() < 1e-9, "got {got}");
        // The looplet code skips to the band: the number of loop iterations
        // should be far below the dense dimension times nonzeros.
        assert!(stats.loop_iters < 64, "stats {stats:?}\ncode:\n{}", k.code());
    }

    #[test]
    fn gallop_protocol_compiles_and_matches() {
        let av = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
        let bv = vec![0.0, 0.0, 0.0, 3.7, 0.0, 9.2, 0.0, 8.7, 0.0, 0.0, 5.0];
        let a = Tensor::sparse_list_vector("A", &av);
        let b = Tensor::sparse_list_vector("B", &bv);
        let mut kernel = Kernel::new();
        kernel.bind_input(&a).bind_input(&b).bind_output_scalar("C");
        let i = idx("i");
        let program = forall(
            i.clone(),
            add_assign(scalar("C"), mul(access("A", [i.gallop()]), access("B", [i.gallop()]))),
        );
        let mut k = kernel.compile(&program).expect("gallop dot compiles");
        k.run().unwrap();
        let got = k.output_scalar("C").unwrap();
        assert!((got - reference_dot(&av, &bv)).abs() < 1e-9, "got {got}\ncode:\n{}", k.code());
        assert!(k.code().contains("search"), "galloping should binary search:\n{}", k.code());
    }

    #[test]
    fn spmv_over_csr_matches_reference() {
        let nrows = 5;
        let ncols = 7;
        let data: Vec<f64> =
            (0..nrows * ncols).map(|k| if k % 3 == 0 { (k % 11) as f64 } else { 0.0 }).collect();
        let xv: Vec<f64> = (0..ncols).map(|k| (k as f64) - 2.5).collect();
        let a = Tensor::csr_matrix("A", nrows, ncols, &data);
        let x = Tensor::dense_vector("x", &xv);

        let mut kernel = Kernel::new();
        kernel.bind_input(&a).bind_input(&x).bind_output("y", &[nrows], 0.0);
        let (i, j) = (idx("i"), idx("j"));
        let program = forall(
            i.clone(),
            forall(
                j.clone(),
                add_assign(
                    access("y", [i.clone()]),
                    mul(access("A", [i, j.clone()]), access("x", [j])),
                ),
            ),
        );
        let mut k = kernel.compile(&program).expect("spmv compiles");
        k.run().unwrap();
        let y = k.output("y").unwrap();
        for r in 0..nrows {
            let expect: f64 = (0..ncols).map(|c| data[r * ncols + c] * xv[c]).sum();
            assert!((y[r] - expect).abs() < 1e-9, "row {r}: {} vs {expect}", y[r]);
        }
    }

    #[test]
    fn unknown_tensor_is_reported() {
        let kernel = Kernel::new();
        let i = idx("i");
        let program = forall(i.clone(), add_assign(scalar("C"), access("A", [i])));
        let err = kernel.compile(&program).unwrap_err();
        assert!(matches!(err, CompileError::UnknownTensor { .. }));
    }

    #[test]
    fn writing_to_an_input_is_reported() {
        let a = Tensor::dense_vector("A", &[1.0]);
        let mut kernel = Kernel::new();
        kernel.bind_input(&a);
        let i = idx("i");
        let program = forall(i.clone(), add_assign(access("A", [i]), lit(1.0)));
        let err = kernel.compile(&program).unwrap_err();
        assert!(matches!(
            err,
            CompileError::UnsupportedWrite { .. } | CompileError::UnknownTensor { .. }
        ));
    }

    #[test]
    fn non_concordant_access_is_reported() {
        // forall i forall j C[] += A[j, i] cannot be driven concordantly.
        let a = Tensor::csr_matrix("A", 3, 3, &[1.0; 9]);
        let mut kernel = Kernel::new();
        kernel.bind_input(&a).bind_output_scalar("C");
        let (i, j) = (idx("i"), idx("j"));
        let program =
            forall(i.clone(), forall(j.clone(), add_assign(scalar("C"), access("A", [j, i]))));
        let err = kernel.compile(&program).unwrap_err();
        assert!(
            matches!(
                err,
                CompileError::NonConcordantAccess { .. } | CompileError::CannotInferExtent { .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn bytecode_engine_is_the_default() {
        let a = Tensor::dense_vector("A", &[1.0, 2.0]);
        let b = Tensor::dense_vector("B", &[3.0, 4.0]);
        let k = dot_product(&a, &b);
        assert_eq!(k.engine(), Engine::Bytecode);
        assert!(k.bytecode().validate().is_ok(), "compiled bytecode validates");
    }

    #[test]
    fn engines_agree_on_outputs_and_stats() {
        let av = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
        let bv = vec![0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0];
        let a = Tensor::sparse_list_vector("A", &av);
        let b = Tensor::band_vector("B", &bv);
        let mut k = dot_product(&a, &b);
        let fast = k.run_with(Engine::Bytecode).unwrap();
        let fast_out = k.output_scalar("C").unwrap();
        let oracle = k.run_with(Engine::TreeWalk).unwrap();
        let oracle_out = k.output_scalar("C").unwrap();
        assert_eq!(fast, oracle, "work counters must be identical");
        assert_eq!(fast_out.to_bits(), oracle_out.to_bits(), "outputs must be bit-identical");
    }

    #[test]
    fn set_engine_redirects_run() {
        let a = Tensor::dense_vector("A", &[1.0, 2.0]);
        let b = Tensor::dense_vector("B", &[3.0, 4.0]);
        let mut k = dot_product(&a, &b);
        k.set_engine(Engine::TreeWalk);
        assert_eq!(k.engine(), Engine::TreeWalk);
        k.run().unwrap();
        assert_eq!(k.output_scalar("C").unwrap(), 11.0);
        let k2 = k.clone().with_engine(Engine::Bytecode);
        assert_eq!(k2.engine(), Engine::Bytecode);
    }

    #[test]
    fn step_budget_applies_to_both_engines() {
        let a = Tensor::dense_vector("A", &[1.0; 64]);
        let b = Tensor::dense_vector("B", &[2.0; 64]);
        let mut k = dot_product(&a, &b).with_step_budget(3);
        for engine in [Engine::Bytecode, Engine::TreeWalk] {
            let err = k.run_with(engine).unwrap_err();
            assert!(
                matches!(err, RuntimeError::StepBudgetExceeded { budget: 3 }),
                "{engine:?}: got {err:?}"
            );
        }
        k.clear_step_budget();
        assert_eq!(k.step_budget(), None);
        k.run().unwrap();
    }

    #[test]
    fn engine_labels_are_stable() {
        assert_eq!(Engine::Bytecode.label(), "bytecode");
        assert_eq!(Engine::TreeWalk.label(), "tree_walk");
        assert_eq!(Engine::default(), Engine::Bytecode);
    }

    fn sparse_mul_kernel(av: &[f64], bv: &[f64]) -> CompiledKernel {
        let a = Tensor::sparse_list_vector("A", av);
        let b = Tensor::sparse_list_vector("B", bv);
        let mut kernel = Kernel::new();
        kernel
            .bind_input(&a)
            .bind_input(&b)
            .bind_output_format("C", &[LevelSpec::SparseList { size: av.len() }]);
        let i = idx("i");
        let program = forall(
            i.clone(),
            assign(access("C", [i.clone()]), mul(access("A", [i.clone()]), access("B", [i]))),
        );
        kernel.compile(&program).expect("sparse multiply compiles")
    }

    #[test]
    fn sparse_output_assembles_only_the_intersection() {
        let av = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
        let bv = vec![0.0, 2.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0];
        let mut k = sparse_mul_kernel(&av, &bv);
        k.run().unwrap();
        let c = k.output_tensor("C").unwrap();
        let expect: Vec<f64> = av.iter().zip(&bv).map(|(x, y)| x * y).collect();
        assert_eq!(c.to_dense(), expect);
        // Coordinates 1, 3 and 6 are stored in both inputs.
        assert_eq!(c.stored(), 3);
        match &c.levels()[0] {
            Level::SparseList { pos, idx, .. } => {
                assert_eq!(pos, &vec![0, 3]);
                assert_eq!(idx, &vec![1, 3, 6]);
            }
            other => panic!("expected a sparse list level, got {other:?}"),
        }
    }

    #[test]
    fn sparse_output_is_bit_identical_across_engines() {
        let av = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
        let bv = vec![0.0, 2.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0];
        let mut k = sparse_mul_kernel(&av, &bv);
        let fast = k.run_with(Engine::Bytecode).unwrap();
        let fast_out = k.output_tensor("C").unwrap();
        let oracle = k.run_with(Engine::TreeWalk).unwrap();
        let oracle_out = k.output_tensor("C").unwrap();
        assert_eq!(fast, oracle, "work counters must be identical");
        assert_eq!(fast_out, oracle_out, "pos/idx/val arrays must be identical");
        let bits = |t: &Tensor| -> Vec<u64> { t.values().iter().map(|v| v.to_bits()).collect() };
        assert_eq!(bits(&fast_out), bits(&oracle_out), "values must be bit-identical");
    }

    #[test]
    fn sparse_output_stores_strictly_less_than_the_dense_variant() {
        let n = 1000;
        let mut av = vec![0.0; n];
        let mut bv = vec![0.0; n];
        for k in (0..n).step_by(97) {
            av[k] = 1.0 + k as f64;
            bv[k] = 2.0;
        }
        let sparse_stats = {
            let mut k = sparse_mul_kernel(&av, &bv);
            k.run().unwrap()
        };
        let dense_stats = {
            let a = Tensor::sparse_list_vector("A", &av);
            let b = Tensor::sparse_list_vector("B", &bv);
            let mut kernel = Kernel::new();
            kernel.bind_input(&a).bind_input(&b).bind_output("C", &[n], 0.0);
            let i = idx("i");
            let program = forall(
                i.clone(),
                assign(access("C", [i.clone()]), mul(access("A", [i.clone()]), access("B", [i]))),
            );
            kernel.compile(&program).expect("dense multiply compiles").run().unwrap()
        };
        // The dense output pays O(n) initialisation; the sparse output pays
        // O(stored) appends.
        assert!(
            sparse_stats.stores < dense_stats.stores,
            "sparse assembly must store less: {} vs {}",
            sparse_stats.stores,
            dense_stats.stores
        );
    }

    #[test]
    fn sparse_output_chains_into_a_follow_up_kernel() {
        let av = vec![0.0, 1.5, 0.0, 2.0, 0.0];
        let bv = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut k = sparse_mul_kernel(&av, &[0.0, 1.0, 1.0, 1.0, 0.0]);
        k.run().unwrap();
        let c = k.output_tensor("C").unwrap();
        // Re-bind the assembled sparse result as an input of a dot product.
        let b = Tensor::dense_vector("B", &bv);
        let mut kernel = Kernel::new();
        kernel.bind_input(&c).bind_input(&b).bind_output_scalar("D");
        let i = idx("i");
        let program = forall(
            i.clone(),
            add_assign(scalar("D"), mul(access("C", [i.clone()]), access("B", [i]))),
        );
        let mut chained = kernel.compile(&program).expect("chained kernel compiles");
        chained.run().unwrap();
        let expect: f64 = c.to_dense().iter().zip(&bv).map(|(x, y)| x * y).sum();
        assert_eq!(chained.output_scalar("D").unwrap(), expect);
    }

    #[test]
    fn threshold_filter_assembles_only_passing_entries() {
        let av = vec![0.0, 5.0, 0.0, 1.0, 7.0, 0.0, 2.0];
        let a = Tensor::sparse_list_vector("A", &av);
        let mut kernel = Kernel::new();
        kernel.bind_input(&a).bind_output_format("C", &[LevelSpec::SparseList { size: av.len() }]);
        let i = idx("i");
        let program = forall(
            i.clone(),
            sieve(
                gt(access("A", [i.clone()]), lit(3.0)),
                assign(access("C", [i.clone()]), access("A", [i])),
            ),
        );
        let mut k = kernel.compile(&program).expect("filter compiles");
        k.run().unwrap();
        let c = k.output_tensor("C").unwrap();
        assert_eq!(c.to_dense(), vec![0.0, 5.0, 0.0, 0.0, 7.0, 0.0, 0.0]);
        assert_eq!(c.stored(), 2);
    }

    #[test]
    fn matrix_sparse_output_closes_one_fiber_per_row() {
        let data = vec![
            0.0, 1.0, 0.0, 2.0, //
            0.0, 0.0, 0.0, 0.0, //
            3.0, 0.0, 4.0, 0.0,
        ];
        let a = Tensor::csr_matrix("A", 3, 4, &data);
        let mut kernel = Kernel::new();
        kernel.bind_input(&a).bind_output_format(
            "C",
            &[LevelSpec::Dense { size: 3 }, LevelSpec::SparseList { size: 4 }],
        );
        let (i, j) = (idx("i"), idx("j"));
        let program = forall(
            i.clone(),
            forall(j.clone(), assign(access("C", [i.clone(), j.clone()]), access("A", [i, j]))),
        );
        let mut k = kernel.compile(&program).expect("copy compiles");
        k.run().unwrap();
        let c = k.output_tensor("C").unwrap();
        assert_eq!(c.to_dense(), data);
        match &c.levels()[1] {
            Level::SparseList { pos, idx, .. } => {
                assert_eq!(pos, &vec![0, 2, 2, 4], "one fiber per row, middle row empty");
                assert_eq!(idx, &vec![1, 3, 0, 2]);
            }
            other => panic!("expected a sparse list level, got {other:?}"),
        }
    }

    #[test]
    fn output_queries_report_typed_errors() {
        let a = Tensor::dense_vector("A", &[1.0, 2.0]);
        let b = Tensor::dense_vector("B", &[3.0, 4.0]);
        let k = dot_product(&a, &b);
        let err = k.output_scalar("nope").unwrap_err();
        assert!(matches!(err, RuntimeError::BadOutputQuery { .. }), "got {err:?}");
        assert!(k.output("nope").is_err());
        assert!(k.output_tensor("nope").is_err());

        let x = Tensor::dense_vector("x", &[1.0, 2.0, 3.0]);
        let mut kernel = Kernel::new();
        kernel.bind_input(&x).bind_output("y", &[3], 0.0);
        let i = idx("i");
        let program = forall(i.clone(), assign(access("y", [i.clone()]), access("x", [i])));
        let k = kernel.compile(&program).expect("copy compiles");
        let err = k.output_scalar("y").unwrap_err();
        match err {
            RuntimeError::BadOutputQuery { name, detail } => {
                assert_eq!(name, "y");
                assert!(detail.contains("rank-1"), "{detail}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn sparse_output_before_any_run_is_a_typed_error() {
        let k = sparse_mul_kernel(&[0.0, 1.0], &[1.0, 1.0]);
        let err = k.output_tensor("C").unwrap_err();
        assert!(matches!(err, RuntimeError::BadOutputQuery { .. }), "got {err:?}");
    }

    #[test]
    fn sparse_output_written_by_a_non_innermost_loop_is_rejected_at_compile_time() {
        // forall i forall j C[i] = A[j] would append the same coordinate
        // once per j; it must be a CompileError, not a late validity error.
        let a = Tensor::dense_vector("A", &[1.0, 2.0, 3.0]);
        let mut kernel = Kernel::new();
        kernel.bind_input(&a).bind_output_format("C", &[LevelSpec::SparseList { size: 3 }]);
        let (i, j) = (idx("i"), idx("j"));
        let program = forall_in(
            i.clone(),
            lit_int(0),
            lit_int(2),
            forall(j.clone(), assign(access("C", [i]), access("A", [j]))),
        );
        let err = kernel.compile(&program).unwrap_err();
        match err {
            CompileError::Unsupported { detail } => {
                assert!(detail.contains("innermost"), "{detail}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn where_producers_are_not_double_initialised() {
        // The `where` lowering initialises its producer at scope entry; the
        // top-of-program init must skip it or the store traffic is counted
        // twice.
        let a = Tensor::dense_vector("A", &[1.0, 2.0, 3.0]);
        let mut kernel = Kernel::new();
        kernel.bind_input(&a).bind_output_scalar("t").bind_output_scalar("S");
        let i = idx("i");
        let program = where_(
            assign(scalar("S"), mul(lit(2.0), finch_cin::CinExpr::Access(scalar("t")))),
            forall(i.clone(), add_assign(scalar("t"), access("A", [i]))),
        );
        let k = kernel.compile(&program).expect("where compiles");
        // Exactly one init store for S and one (where-emitted) for t: the
        // code must contain exactly two literal stores of 0 into the two
        // scalar buffers before the loop.
        let init_stores = Stmt::count_matching(k.stmts(), &|s| {
            matches!(s, Stmt::Store { value: finch_ir::Expr::Lit(v), reduce: None, .. }
                     if *v == finch_ir::Value::Float(0.0))
        });
        assert_eq!(init_stores, 2, "one init per scalar, no double init:\n{}", k.code());
    }

    #[test]
    fn reductions_into_sparse_outputs_are_rejected() {
        let a = Tensor::sparse_list_vector("A", &[0.0, 1.0]);
        let mut kernel = Kernel::new();
        kernel.bind_input(&a).bind_output_format("C", &[LevelSpec::SparseList { size: 2 }]);
        let i = idx("i");
        let program = forall(i.clone(), add_assign(access("C", [i.clone()]), access("A", [i])));
        let err = kernel.compile(&program).unwrap_err();
        assert!(matches!(err, CompileError::Unsupported { .. }), "got {err:?}");
    }

    #[test]
    fn bind_output_format_with_dense_specs_matches_bind_output() {
        let x = Tensor::dense_vector("x", &[1.0, 2.0, 3.0]);
        let mut kernel = Kernel::new();
        kernel.bind_input(&x).bind_output_format("y", &[LevelSpec::Dense { size: 3 }]);
        let i = idx("i");
        let program = forall(i.clone(), assign(access("y", [i.clone()]), access("x", [i])));
        let mut k = kernel.compile(&program).expect("copy compiles");
        k.run().unwrap();
        assert_eq!(k.output("y").unwrap(), vec![1.0, 2.0, 3.0]);
        let t = k.output_tensor("y").unwrap();
        assert_eq!(t.to_dense(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn typed_dispatch_is_on_by_default_and_specializes_the_inner_loop() {
        let a = Tensor::dense_vector("A", &[1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::dense_vector("B", &[0.5, 0.0, 2.0, 10.0]);
        let k = dot_product(&a, &b);
        assert!(k.typed_dispatch());
        let stats = k.opt_stats();
        assert!(stats.instrs_typed > 0, "typing ran: {stats:?}");
        assert!(stats.regs_pretagged > 0, "registers pinned: {stats:?}");
        assert!(!k.bytecode().pretags().is_empty());
        // The stage is gated off at OptLevel::None.
        let none = k.reoptimized(OptLevel::None);
        assert_eq!(none.opt_stats().instrs_typed, 0);
        assert!(none.bytecode().pretags().is_empty());
    }

    #[test]
    fn typed_and_generic_dispatch_agree_bit_for_bit() {
        let av = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
        let bv = vec![0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0];
        let a = Tensor::sparse_list_vector("A", &av);
        let b = Tensor::band_vector("B", &bv);
        let typed = dot_product(&a, &b);
        let mut generic = typed.reoptimized_typed(OptLevel::Default, false);
        let mut typed = typed;
        assert!(!generic.typed_dispatch());
        assert_eq!(generic.opt_stats().instrs_typed, 0);
        let st = typed.run().unwrap();
        let sg = generic.run().unwrap();
        assert_eq!(st, sg, "typed dispatch must not change the work counters");
        let (t, g) = (typed.output_scalar("C").unwrap(), generic.output_scalar("C").unwrap());
        assert_eq!(t.to_bits(), g.to_bits(), "outputs must be bit-identical");
    }

    #[test]
    fn reruns_reuse_sparse_output_capacity() {
        let av = vec![0.0, 1.9, 0.0, 3.0, 0.0, 2.7, 0.0, 5.5];
        let bv = vec![1.0, 2.0, 0.0, 3.7, 4.7, 1.5, 8.7, 2.0];
        let mut k = sparse_mul_kernel(&av, &bv);
        k.run().unwrap();
        let val = k.bufs.lookup("C_val").expect("val buffer exists");
        let ptr_before = k.bufs.get(val).as_f64().unwrap().as_ptr();
        assert_eq!(
            ptr_before as usize % finch_ir::buffer::LANE_ALIGN,
            0,
            "f64 lanes must start on a {}-byte boundary",
            finch_ir::buffer::LANE_ALIGN
        );
        for _ in 0..3 {
            k.run().unwrap();
            let ptr_after = k.bufs.get(val).as_f64().unwrap().as_ptr();
            assert_eq!(ptr_before, ptr_after, "rerun must reuse the val allocation");
        }
        // The assembled result stays correct across the reuse.
        let c = k.output_tensor("C").unwrap();
        let expect: Vec<f64> = av.iter().zip(&bv).map(|(x, y)| x * y).collect();
        assert_eq!(c.to_dense(), expect);
    }

    #[test]
    fn profile_counts_match_run_semantics() {
        let a = Tensor::dense_vector("A", &[1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::dense_vector("B", &[0.5, 0.0, 2.0, 10.0]);
        let mut k = dot_product(&a, &b);
        let run_stats = k.run().unwrap();
        let (profile_stats, counts) = k.profile().unwrap();
        assert_eq!(run_stats, profile_stats, "profiling must not change semantics");
        assert_eq!(counts.len(), k.bytecode().code().len());
        let executed: u64 = counts.iter().sum();
        assert!(executed > 0);
        // The dense dot inner loop is fully typed: the executed
        // tag-free fraction must be overwhelming.
        let typed_executed: u64 = counts
            .iter()
            .zip(k.bytecode().code())
            .filter(|(_, i)| i.is_tag_free())
            .map(|(c, _)| *c)
            .sum();
        let fraction = typed_executed as f64 / executed as f64;
        assert!(fraction > 0.9, "dense loop should be ~fully typed, got {fraction}");
    }

    #[test]
    fn compiled_kernels_cross_thread_boundaries() {
        // The parallel tier hands kernels and their buffers to worker
        // threads; the public types must stay Send + Sync.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Kernel>();
        assert_send_sync::<CompiledKernel>();
        assert_send_sync::<finch_ir::Program>();
        assert_send_sync::<finch_ir::BufferSet>();
    }

    fn spmv_kernel(threads: usize) -> CompiledKernel {
        let nrows = 17;
        let ncols = 13;
        let data: Vec<f64> = (0..nrows * ncols)
            .map(|k| if k % 3 == 0 { (k % 11) as f64 - 4.0 } else { 0.0 })
            .collect();
        let xv: Vec<f64> = (0..ncols).map(|k| (k as f64) * 0.25 - 1.5).collect();
        let a = Tensor::csr_matrix("A", nrows, ncols, &data);
        let x = Tensor::dense_vector("x", &xv);
        let mut kernel = Kernel::new().with_threads(threads);
        kernel.bind_input(&a).bind_input(&x).bind_output("y", &[nrows], 0.0);
        let (i, j) = (idx("i"), idx("j"));
        let program = forall(
            i.clone(),
            forall(
                j.clone(),
                add_assign(
                    access("y", [i.clone()]),
                    mul(access("A", [i, j.clone()]), access("x", [j])),
                ),
            ),
        );
        kernel.compile(&program).expect("spmv compiles")
    }

    #[test]
    fn parallel_runs_are_bit_identical_to_serial() {
        let mut serial = spmv_kernel(1);
        assert_eq!(serial.threads(), 1);
        let s_stats = serial.run().unwrap();
        let s_out = serial.output("y").unwrap();
        assert!(serial.sharded(), "the dense outer row loop shards:\n{}", serial.code());
        for threads in [2, 3, 4, 8, 64] {
            let mut par = spmv_kernel(threads);
            assert_eq!(par.threads(), threads);
            let p_stats = par.run().unwrap();
            let p_out = par.output("y").unwrap();
            assert_eq!(s_stats, p_stats, "{threads} threads: work counters diverge");
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&s_out), bits(&p_out), "{threads} threads: outputs diverge");
        }
    }

    #[test]
    fn non_shardable_kernels_run_serial_at_any_thread_count() {
        // The sparse-sparse dot product is a while-loop merge with a float
        // reduction: not shardable, so threads must be a silent no-op.
        let av = vec![0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0];
        let bv = vec![0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0];
        let a = Tensor::sparse_list_vector("A", &av);
        let b = Tensor::sparse_list_vector("B", &bv);
        let mut serial = dot_product(&a, &b);
        let s_stats = serial.run().unwrap();
        let s_out = serial.output_scalar("C").unwrap();
        let mut par = dot_product(&a, &b);
        par.set_threads(4);
        assert!(!par.sharded(), "a float-reduction merge must not shard");
        assert!(par.shard_plan().is_empty());
        let p_stats = par.run().unwrap();
        let p_out = par.output_scalar("C").unwrap();
        assert_eq!(s_stats, p_stats);
        assert_eq!(s_out.to_bits(), p_out.to_bits());
    }

    #[test]
    fn threads_clamp_to_one_and_carry_through_reoptimize() {
        let a = Tensor::dense_vector("A", &[1.0, 2.0]);
        let b = Tensor::dense_vector("B", &[3.0, 4.0]);
        let mut k = dot_product(&a, &b);
        k.set_threads(0);
        assert_eq!(k.threads(), 1);
        k.set_threads(4);
        let re = k.reoptimized(OptLevel::None);
        assert_eq!(re.threads(), 4, "reoptimize must carry the thread count");
        assert_eq!(Kernel::new().with_threads(0).threads(), 1);
    }

    #[test]
    fn generated_code_is_printable_and_mentions_buffers() {
        let a = Tensor::sparse_list_vector("A", &[0.0, 1.0, 0.0, 2.0]);
        let b = Tensor::dense_vector("B", &[1.0; 4]);
        let k = dot_product(&a, &b);
        let code = k.code();
        assert!(code.contains("A_idx"), "{code}");
        assert!(code.contains("C_val"), "{code}");
        assert!(!k.program().is_empty());
    }
}
