//! # finch — a Rust reproduction of the Looplets/Finch structured-array compiler
//!
//! This crate is the top of the reproduction of *"Looplets: A Language for
//! Structured Coiteration"* (CGO 2023).  It compiles **extended concrete
//! index notation** (`finch-cin`) over **structured tensors**
//! (`finch-formats`) by unfurling each access into a **looplet nest**
//! (`finch-looplets`), progressively lowering the nests with
//! style-resolved looplet lowerers, simplifying with **rewrite rules**
//! (`finch-rewrite`), and emitting an imperative **target IR** (`finch-ir`)
//! that is pretty-printed, compiled to a flat register **bytecode**, and
//! executed by an instrumented register VM (the tree-walking interpreter is
//! retained as a semantics oracle — see [`Engine`]).
//!
//! The workflow mirrors the paper's Figure 1:
//!
//! ```
//! use finch::build::*;
//! use finch::{Kernel, Tensor};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The motivating example: a sparse list dotted with a sparse band.
//! let a = Tensor::sparse_list_vector("A", &[0.0, 1.9, 0.0, 3.0, 0.0, 0.0, 2.7, 0.0, 5.5, 0.0, 0.0]);
//! let b = Tensor::band_vector("B", &[0.0, 0.0, 0.0, 3.7, 4.7, 9.2, 1.5, 8.7, 0.0, 0.0, 0.0]);
//!
//! let mut kernel = Kernel::new();
//! kernel.bind_input(&a).bind_input(&b).bind_output_scalar("C");
//!
//! let i = idx("i");
//! let program = forall(i.clone(), add_assign(scalar("C"), mul(access("A", [i.clone()]), access("B", [i]))));
//!
//! let mut compiled = kernel.compile(&program)?;
//! println!("{}", compiled.code());     // the generated coiteration loop
//! let stats = compiled.run()?;          // executes it and counts the work
//! assert!((compiled.output_scalar("C").unwrap() - (3.0 * 3.7 + 2.7 * 1.5)).abs() < 1e-9);
//! assert!(stats.loop_iters < 64);       // the band was skipped to, not scanned
//! # Ok(()) }
//! ```
//!
//! The sibling crates are re-exported so downstream users (the examples,
//! the benchmark harness, and the integration tests in this repository)
//! only need to depend on `finch`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod breaker;
mod error;
mod kernel;
mod lower;
mod queue;
mod service;

pub use breaker::{BreakerPolicy, BreakerState};
pub use error::{CompileError, ServiceError};
pub use kernel::{CompiledKernel, Engine, Kernel};
pub use queue::ServiceState;
pub use service::{
    DrainReport, FaultKind, FaultPlan, FaultRule, HealthSnapshot, InjectPoint, KernelService,
    ReadBack, Request, Response, ServiceConfig, ServiceStats, Tier,
};

// Re-export the surface language, formats and runtime types.
pub use finch_cin::build;
pub use finch_cin::{
    Access, CinExpr, CinOp, CinStmt, IndexExpr, IndexVar, Protocol, Reduction, TensorRef,
};
pub use finch_formats::{BoundTensor, Level, LevelSpec, OutputBuilder, Tensor, TensorError};
pub use finch_ir::opt::{PassReport, ValidationLevel};
pub use finch_ir::{
    ExecStats, OptLevel, OptStats, RuntimeError, ShardPlan, ShardRegion, ShardRole, Value, Watch,
};
pub use finch_looplets as looplets;
pub use finch_rewrite::Rewriter;
