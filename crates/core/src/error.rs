//! Compile-time errors.

use std::error::Error;
use std::fmt;

/// Errors reported while compiling a concrete-index-notation program.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The program references a tensor that was never bound.
    UnknownTensor {
        /// The missing tensor's name.
        name: String,
    },
    /// An access uses a different number of indices than the tensor's rank.
    RankMismatch {
        /// The tensor's name.
        name: String,
        /// Its rank.
        rank: usize,
        /// The number of indices in the access.
        indices: usize,
    },
    /// An access could not be fully resolved by the enclosing loops; this
    /// usually means the iteration order does not match the tensor's level
    /// order (non-concordant iteration).  Transpose the tensor or reorder
    /// the loops.
    NonConcordantAccess {
        /// The tensor's name.
        name: String,
    },
    /// Writes are only supported into dense output tensors bound with
    /// [`Kernel::bind_output`](crate::Kernel::bind_output).
    UnsupportedWrite {
        /// The tensor written to.
        name: String,
    },
    /// The extent of a `forall` could not be inferred from its accesses;
    /// provide it explicitly with `forall_in`.
    CannotInferExtent {
        /// The index variable whose extent is missing.
        index: String,
    },
    /// An index variable was used as a value before any enclosing loop bound
    /// it.
    UnboundIndex {
        /// The index variable's name.
        index: String,
    },
    /// The compiler reached a looplet arrangement it cannot lower.
    UnsupportedLooplet {
        /// Description of the situation.
        detail: String,
    },
    /// A feature of the surface language that this reproduction does not
    /// implement (e.g. writes through index modifiers).
    Unsupported {
        /// Description of the unsupported feature.
        detail: String,
    },
    /// An optimisation pass failed post-pass verification or translation
    /// validation (a miscompile caught by the pass manager; see
    /// `finch_ir::opt::ValidationLevel`).
    ValidationFailed {
        /// The offending pass's name.
        pass: String,
        /// What the verifier or witness comparison found.
        detail: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownTensor { name } => write!(f, "tensor `{name}` is not bound"),
            CompileError::RankMismatch { name, rank, indices } => write!(
                f,
                "tensor `{name}` has rank {rank} but was accessed with {indices} indices"
            ),
            CompileError::NonConcordantAccess { name } => write!(
                f,
                "access to `{name}` is not concordant with the loop order; transpose the tensor or reorder the loops"
            ),
            CompileError::UnsupportedWrite { name } => {
                write!(f, "writes into `{name}` are not supported; bind it as a dense output")
            }
            CompileError::CannotInferExtent { index } => {
                write!(f, "cannot infer the extent of index `{index}`; use an explicit extent")
            }
            CompileError::UnboundIndex { index } => {
                write!(f, "index `{index}` used before any enclosing loop bound it")
            }
            CompileError::UnsupportedLooplet { detail } => {
                write!(f, "cannot lower looplet arrangement: {detail}")
            }
            CompileError::Unsupported { detail } => write!(f, "unsupported program: {detail}"),
            CompileError::ValidationFailed { pass, detail } => {
                write!(f, "pass `{pass}` failed validation: {detail}")
            }
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_useful_messages() {
        let errs = vec![
            CompileError::UnknownTensor { name: "A".into() },
            CompileError::RankMismatch { name: "A".into(), rank: 2, indices: 3 },
            CompileError::NonConcordantAccess { name: "A".into() },
            CompileError::UnsupportedWrite { name: "A".into() },
            CompileError::CannotInferExtent { index: "i".into() },
            CompileError::UnboundIndex { index: "i".into() },
            CompileError::UnsupportedLooplet { detail: "x".into() },
            CompileError::Unsupported { detail: "x".into() },
            CompileError::ValidationFailed { pass: "fold".into(), detail: "x".into() },
        ];
        for e in errs {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CompileError>();
    }
}
