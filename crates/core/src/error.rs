//! Typed error surfaces: compile-time errors and the kernel service's
//! request-level failure modes.

use std::error::Error;
use std::fmt;

use finch_ir::RuntimeError;

use crate::queue::ServiceState;

/// Errors reported while compiling a concrete-index-notation program.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The program references a tensor that was never bound.
    UnknownTensor {
        /// The missing tensor's name.
        name: String,
    },
    /// An access uses a different number of indices than the tensor's rank.
    RankMismatch {
        /// The tensor's name.
        name: String,
        /// Its rank.
        rank: usize,
        /// The number of indices in the access.
        indices: usize,
    },
    /// An access could not be fully resolved by the enclosing loops; this
    /// usually means the iteration order does not match the tensor's level
    /// order (non-concordant iteration).  Transpose the tensor or reorder
    /// the loops.
    NonConcordantAccess {
        /// The tensor's name.
        name: String,
    },
    /// Writes are only supported into dense output tensors bound with
    /// [`Kernel::bind_output`](crate::Kernel::bind_output).
    UnsupportedWrite {
        /// The tensor written to.
        name: String,
    },
    /// The extent of a `forall` could not be inferred from its accesses;
    /// provide it explicitly with `forall_in`.
    CannotInferExtent {
        /// The index variable whose extent is missing.
        index: String,
    },
    /// An index variable was used as a value before any enclosing loop bound
    /// it.
    UnboundIndex {
        /// The index variable's name.
        index: String,
    },
    /// The compiler reached a looplet arrangement it cannot lower.
    UnsupportedLooplet {
        /// Description of the situation.
        detail: String,
    },
    /// A feature of the surface language that this reproduction does not
    /// implement (e.g. writes through index modifiers).
    Unsupported {
        /// Description of the unsupported feature.
        detail: String,
    },
    /// An optimisation pass failed post-pass verification or translation
    /// validation (a miscompile caught by the pass manager; see
    /// `finch_ir::opt::ValidationLevel`).
    ValidationFailed {
        /// The offending pass's name.
        pass: String,
        /// What the verifier or witness comparison found.
        detail: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnknownTensor { name } => write!(f, "tensor `{name}` is not bound"),
            CompileError::RankMismatch { name, rank, indices } => write!(
                f,
                "tensor `{name}` has rank {rank} but was accessed with {indices} indices"
            ),
            CompileError::NonConcordantAccess { name } => write!(
                f,
                "access to `{name}` is not concordant with the loop order; transpose the tensor or reorder the loops"
            ),
            CompileError::UnsupportedWrite { name } => {
                write!(f, "writes into `{name}` are not supported; bind it as a dense output")
            }
            CompileError::CannotInferExtent { index } => {
                write!(f, "cannot infer the extent of index `{index}`; use an explicit extent")
            }
            CompileError::UnboundIndex { index } => {
                write!(f, "index `{index}` used before any enclosing loop bound it")
            }
            CompileError::UnsupportedLooplet { detail } => {
                write!(f, "cannot lower looplet arrangement: {detail}")
            }
            CompileError::Unsupported { detail } => write!(f, "unsupported program: {detail}"),
            CompileError::ValidationFailed { pass, detail } => {
                write!(f, "pass `{pass}` failed validation: {detail}")
            }
        }
    }
}

impl Error for CompileError {}

/// A typed service failure.  Every failure mode the service can hit — shed
/// load, queue timeouts, shutdown rejections, open breakers, invalid
/// inputs, compile errors, resource exhaustion, and kernels that fault at
/// every tier — surfaces as one of these; the service never aborts.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// Admission control rejected the request: the in-flight limit and the
    /// wait queue are both full (or the limit is zero).
    Overloaded {
        /// Requests in flight when this one arrived.
        in_flight: usize,
        /// The configured admission limit.
        limit: usize,
        /// Requests already waiting in the admission queue.
        queued: usize,
    },
    /// The request queued for admission but its deadline expired before an
    /// execution slot freed.  Distinct from [`RuntimeError::Deadline`],
    /// which attributes the expiry to *execution*.
    QueueTimeout {
        /// How long the request waited in the queue, milliseconds.
        waited_ms: u64,
        /// Waiters still queued when this one gave up.
        depth: usize,
    },
    /// The service is draining or stopped; no new work is accepted until
    /// [`KernelService::resume`](crate::KernelService::resume).
    ShuttingDown {
        /// The lifecycle state that rejected the request.
        state: ServiceState,
    },
    /// The structure's circuit breaker is open and the service is
    /// configured to reject (rather than degrade) short-circuited requests.
    CircuitOpen {
        /// Consecutive tier-faults recorded when the breaker opened.
        consecutive_faults: u32,
        /// The configured cooldown before a half-open probe, milliseconds.
        cooldown_ms: u64,
    },
    /// An input tensor failed boundary validation (non-monotonic `pos`,
    /// unsorted or out-of-range `idx`, wrong value count).
    InvalidInput {
        /// The offending tensor's name.
        name: String,
        /// What the validator found.
        detail: String,
    },
    /// The program failed to compile.
    Compile(CompileError),
    /// The run failed with a typed runtime error (deadline, step budget,
    /// allocation budget, rebind mismatch, ...).  Resource errors are final:
    /// they do not trigger the degradation ladder.
    Runtime(RuntimeError),
    /// The kernel faulted at every tier of the degradation ladder.
    Faulted {
        /// Number of execution attempts made (including the fast-tier retry).
        attempts: u32,
        /// Description of the last fault.
        detail: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { in_flight, limit, queued } => write!(
                f,
                "service overloaded: {in_flight} requests in flight (limit {limit}), {queued} queued"
            ),
            ServiceError::QueueTimeout { waited_ms, depth } => write!(
                f,
                "deadline expired after {waited_ms}ms in the admission queue ({depth} still waiting)"
            ),
            ServiceError::ShuttingDown { state } => {
                write!(f, "service is {state}: not accepting new requests")
            }
            ServiceError::CircuitOpen { consecutive_faults, cooldown_ms } => write!(
                f,
                "circuit breaker open after {consecutive_faults} consecutive faults (cooldown {cooldown_ms}ms)"
            ),
            ServiceError::InvalidInput { name, detail } => {
                write!(f, "input tensor `{name}` failed validation: {detail}")
            }
            ServiceError::Compile(e) => write!(f, "compilation failed: {e}"),
            ServiceError::Runtime(e) => write!(f, "{e}"),
            ServiceError::Faulted { attempts, detail } => {
                write!(f, "kernel faulted at every tier after {attempts} attempts: {detail}")
            }
        }
    }
}

impl Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_useful_messages() {
        let errs = vec![
            CompileError::UnknownTensor { name: "A".into() },
            CompileError::RankMismatch { name: "A".into(), rank: 2, indices: 3 },
            CompileError::NonConcordantAccess { name: "A".into() },
            CompileError::UnsupportedWrite { name: "A".into() },
            CompileError::CannotInferExtent { index: "i".into() },
            CompileError::UnboundIndex { index: "i".into() },
            CompileError::UnsupportedLooplet { detail: "x".into() },
            CompileError::Unsupported { detail: "x".into() },
            CompileError::ValidationFailed { pass: "fold".into(), detail: "x".into() },
        ];
        for e in errs {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CompileError>();
        assert_err::<ServiceError>();
    }

    #[test]
    fn service_errors_display_useful_messages() {
        let errs = vec![
            ServiceError::Overloaded { in_flight: 4, limit: 4, queued: 16 },
            ServiceError::QueueTimeout { waited_ms: 25, depth: 3 },
            ServiceError::ShuttingDown { state: ServiceState::Draining },
            ServiceError::CircuitOpen { consecutive_faults: 5, cooldown_ms: 10 },
            ServiceError::InvalidInput { name: "A".into(), detail: "bad pos".into() },
            ServiceError::Compile(CompileError::UnknownTensor { name: "Z".into() }),
            ServiceError::Runtime(RuntimeError::Deadline { ms: 40 }),
            ServiceError::Faulted { attempts: 5, detail: "panic".into() },
        ];
        for e in errs {
            assert!(!format!("{e}").is_empty());
        }
    }
}
