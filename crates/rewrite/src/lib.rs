//! # finch-rewrite — the structural-simplification rewrite engine
//!
//! Finch expresses sparse and structural optimisations as **rewrite rules**
//! over concrete index notation (paper §6.1, Figure 5).  Because the
//! lowering compiler emits a *separate* expression for every subregion it
//! carves out of a loop, plain algebraic rules such as `x * 0 → 0` and
//! `C[] += 0 → pass` are enough to delete all the work associated with a
//! zero region — that is where the asymptotic wins of sparse code come from.
//!
//! The engine is deliberately extensible ("users can add custom rules for
//! the kinds of computations in their domain"): a [`Rewriter`] owns a list
//! of named expression rules and statement rules, applies them bottom-up to
//! a fixpoint, and accepts additional rules through
//! [`Rewriter::add_expr_rule`] / [`Rewriter::add_stmt_rule`].
//!
//! ```
//! use finch_cin::build::*;
//! use finch_rewrite::Rewriter;
//!
//! let rw = Rewriter::with_default_rules();
//! // C[] += 0 * x   ──►   @pass C
//! let stmt = add_assign(scalar("C"), mul(lit(0.0), access("x", [idx("i")])));
//! assert!(rw.simplify_stmt(&stmt).is_pass());
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod rules;

use finch_cin::{CinExpr, CinStmt};

/// The boxed rewrite function of an [`ExprRule`].
pub type ExprRuleFn = Box<dyn Fn(&CinExpr) -> Option<CinExpr> + Send + Sync>;

/// The boxed rewrite function of a [`StmtRule`].
pub type StmtRuleFn = Box<dyn Fn(&CinStmt) -> Option<CinStmt> + Send + Sync>;

/// A named expression-rewrite rule.
///
/// The function receives an already-rebuilt node (its children have been
/// rewritten) and returns `Some(replacement)` to fire.
pub struct ExprRule {
    /// Human-readable rule name (shown in traces and tests).
    pub name: &'static str,
    /// The rewrite function.
    pub apply: ExprRuleFn,
}

/// A named statement-rewrite rule.
pub struct StmtRule {
    /// Human-readable rule name.
    pub name: &'static str,
    /// The rewrite function.
    pub apply: StmtRuleFn,
}

impl std::fmt::Debug for ExprRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExprRule").field("name", &self.name).finish()
    }
}

impl std::fmt::Debug for StmtRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StmtRule").field("name", &self.name).finish()
    }
}

/// The rewrite engine: a rule set applied bottom-up to a fixpoint.
#[derive(Debug)]
pub struct Rewriter {
    expr_rules: Vec<ExprRule>,
    stmt_rules: Vec<StmtRule>,
    max_iterations: usize,
}

impl Default for Rewriter {
    fn default() -> Self {
        Rewriter::with_default_rules()
    }
}

impl Rewriter {
    /// An engine with no rules at all (useful for testing custom rules in
    /// isolation).
    pub fn empty() -> Self {
        Rewriter { expr_rules: Vec::new(), stmt_rules: Vec::new(), max_iterations: 20 }
    }

    /// An engine loaded with the paper's Figure-5 rule set: constant
    /// folding, operator flattening, identity removal, zero annihilation,
    /// `missing`/`coalesce` handling, sieve folding, pass propagation and
    /// invariant-loop collapsing.
    pub fn with_default_rules() -> Self {
        let mut rw = Rewriter::empty();
        rules::install_default_rules(&mut rw);
        rw
    }

    /// Register an additional expression rule (applied after the built-in
    /// ones).
    pub fn add_expr_rule(
        &mut self,
        name: &'static str,
        apply: impl Fn(&CinExpr) -> Option<CinExpr> + Send + Sync + 'static,
    ) {
        self.expr_rules.push(ExprRule { name, apply: Box::new(apply) });
    }

    /// Register an additional statement rule (applied after the built-in
    /// ones).
    pub fn add_stmt_rule(
        &mut self,
        name: &'static str,
        apply: impl Fn(&CinStmt) -> Option<CinStmt> + Send + Sync + 'static,
    ) {
        self.stmt_rules.push(StmtRule { name, apply: Box::new(apply) });
    }

    /// The names of all installed rules, expression rules first.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.expr_rules
            .iter()
            .map(|r| r.name)
            .chain(self.stmt_rules.iter().map(|r| r.name))
            .collect()
    }

    /// Simplify an expression: apply every expression rule bottom-up,
    /// repeating until a fixpoint (or an iteration cap) is reached.
    pub fn simplify_expr(&self, expr: &CinExpr) -> CinExpr {
        let mut current = expr.clone();
        for _ in 0..self.max_iterations {
            let next = current.map(&mut |node| self.apply_expr_rules(node));
            if next == current {
                return next;
            }
            current = next;
        }
        current
    }

    /// Simplify a statement: expressions first, then statement rules, again
    /// to a fixpoint.
    pub fn simplify_stmt(&self, stmt: &CinStmt) -> CinStmt {
        let mut current = stmt.clone();
        for _ in 0..self.max_iterations {
            let exprs_done = current.map_exprs(&mut |node| self.apply_expr_rules(node));
            let next = exprs_done.map_stmts(&mut |node| self.apply_stmt_rules(node));
            if next == current {
                return next;
            }
            current = next;
        }
        current
    }

    fn apply_expr_rules(&self, node: &CinExpr) -> Option<CinExpr> {
        let mut current: Option<CinExpr> = None;
        // Apply every rule in order; if several fire, chain their effects.
        for rule in &self.expr_rules {
            let input = current.as_ref().unwrap_or(node);
            if let Some(next) = (rule.apply)(input) {
                current = Some(next);
            }
        }
        current
    }

    fn apply_stmt_rules(&self, node: &CinStmt) -> Option<CinStmt> {
        let mut current: Option<CinStmt> = None;
        for rule in &self.stmt_rules {
            let input = current.as_ref().unwrap_or(node);
            if let Some(next) = (rule.apply)(input) {
                current = Some(next);
            }
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finch_cin::build::*;
    use finch_cin::{CinExpr, CinOp};
    use finch_ir::Value;

    fn rw() -> Rewriter {
        Rewriter::with_default_rules()
    }

    #[test]
    fn zero_annihilation_in_multiplication() {
        let e = mul(lit(0.0), access("x", [idx("i")]));
        assert_eq!(rw().simplify_expr(&e).as_literal(), Some(Value::Float(0.0)));
    }

    #[test]
    fn multiplicative_identity_is_removed() {
        let a = access("x", [idx("i")]);
        let e = mul(lit(1.0), a.clone());
        assert_eq!(rw().simplify_expr(&e), CinExpr::Access(a));
    }

    #[test]
    fn additive_identity_is_removed() {
        let a = access("x", [idx("i")]);
        let e = add(lit(0.0), a.clone());
        assert_eq!(rw().simplify_expr(&e), CinExpr::Access(a));
    }

    #[test]
    fn nested_variadic_calls_are_flattened_and_folded() {
        let e = add(add(lit(1.0), lit(2.0)), lit(3.0));
        assert_eq!(rw().simplify_expr(&e).as_literal(), Some(Value::Float(6.0)));
        let e = mul(mul(lit(2.0), lit(3.0)), lit(4.0));
        assert_eq!(rw().simplify_expr(&e).as_literal(), Some(Value::Float(24.0)));
    }

    #[test]
    fn missing_propagates_and_coalesce_recovers() {
        let e = mul(CinExpr::Literal(Value::Missing), access("x", [idx("i")]));
        assert_eq!(rw().simplify_expr(&e).as_literal(), Some(Value::Missing));

        let e = coalesce(vec![
            CinExpr::Literal(Value::Missing),
            lit(3.0),
            access("x", [idx("i")]).into(),
        ]);
        assert_eq!(rw().simplify_expr(&e).as_literal(), Some(Value::Float(3.0)));
    }

    #[test]
    fn adding_zero_to_an_output_becomes_a_pass() {
        let s = add_assign(scalar("C"), mul(lit(0.0), access("B", [idx("i")])));
        let out = rw().simplify_stmt(&s);
        assert!(out.is_pass());
        assert_eq!(out.results(), vec!["C".into()]);
    }

    #[test]
    fn forall_over_a_pass_is_a_pass() {
        let i = idx("i");
        let s = forall(i, add_assign(scalar("C"), lit(0.0)));
        assert!(rw().simplify_stmt(&s).is_pass());
    }

    #[test]
    fn sieve_folding() {
        let body = add_assign(scalar("C"), lit(2.0));
        let s = sieve(CinExpr::Literal(Value::Bool(true)), body.clone());
        assert_eq!(rw().simplify_stmt(&s), body);
        let s = sieve(CinExpr::Literal(Value::Bool(false)), body);
        assert!(rw().simplify_stmt(&s).is_pass());
    }

    #[test]
    fn invariant_addition_loop_collapses_to_a_multiplication() {
        // @forall i in 0:9  C[] += 2.5   ──►   C[] += 2.5 * 10
        let i = idx("i");
        let s = forall_in(i, lit_int(0), lit_int(9), add_assign(scalar("C"), lit(2.5)));
        let out = rw().simplify_stmt(&s);
        match out {
            finch_cin::CinStmt::Assign { rhs, .. } => {
                // 2.5 added over a loop of length 10 folds to a single +25.
                assert_eq!(rhs.as_literal(), Some(Value::Float(25.0)));
            }
            other => panic!("expected a collapsed assignment, got {other}"),
        }
    }

    #[test]
    fn custom_rules_can_be_registered() {
        let mut rw = Rewriter::with_default_rules();
        // A domain rule: min(x, x) => x over CIN calls.
        rw.add_expr_rule("min_idempotent", |e| match e {
            CinExpr::Call { op: CinOp::Min, args } if args.len() == 2 && args[0] == args[1] => {
                Some(args[0].clone())
            }
            _ => None,
        });
        let a = access("x", [idx("i")]);
        let e = CinExpr::call(CinOp::Min, vec![a.clone().into(), a.clone().into()]);
        assert_eq!(rw.simplify_expr(&e), CinExpr::Access(a));
        assert!(rw.rule_names().contains(&"min_idempotent"));
    }

    #[test]
    fn empty_rewriter_is_the_identity() {
        let rw = Rewriter::empty();
        let e = mul(lit(0.0), access("x", [idx("i")]));
        assert_eq!(rw.simplify_expr(&e), e);
    }
}
