//! The default rule set (the reproduction of the paper's Figure 5).

use finch_cin::{CinExpr, CinOp, CinStmt, Reduction};
use finch_ir::{BinOp, UnOp, Value};

use crate::Rewriter;

/// Install every default rule into the given engine.
pub fn install_default_rules(rw: &mut Rewriter) {
    rw.add_expr_rule("normalize_dyn_literal", normalize_dyn_literal);
    rw.add_expr_rule("flatten_variadic", flatten_variadic);
    rw.add_expr_rule("missing_propagation", missing_propagation);
    rw.add_expr_rule("coalesce_simplify", coalesce_simplify);
    rw.add_expr_rule("annihilator", annihilator);
    rw.add_expr_rule("identity_removal", identity_removal);
    rw.add_expr_rule("constant_fold", constant_fold);

    rw.add_stmt_rule("assign_identity_update", assign_identity_update);
    rw.add_stmt_rule("assign_missing", assign_missing);
    rw.add_stmt_rule("sieve_fold", sieve_fold);
    rw.add_stmt_rule("invariant_loop", invariant_loop);
    rw.add_stmt_rule("forall_over_pass", forall_over_pass);
    rw.add_stmt_rule("sieve_over_pass", sieve_over_pass);
    rw.add_stmt_rule("multi_of_passes", multi_of_passes);
    rw.add_stmt_rule("where_trivial", where_trivial);
}

// ---------------------------------------------------------------------------
// Expression rules
// ---------------------------------------------------------------------------

/// `$(literal)` → the literal, so that structural rules can see constants
/// introduced by the lowering compiler (run values, truncated spike tails).
fn normalize_dyn_literal(e: &CinExpr) -> Option<CinExpr> {
    match e {
        CinExpr::Dyn(inner) => inner.as_lit().map(CinExpr::Literal),
        _ => None,
    }
}

/// `+(a..., +(b...), c...) => +(a..., b..., c...)` and likewise for the other
/// variadic operators.
fn flatten_variadic(e: &CinExpr) -> Option<CinExpr> {
    let CinExpr::Call { op, args } = e else { return None };
    if !op.is_variadic() {
        return None;
    }
    if !args.iter().any(|a| matches!(a, CinExpr::Call { op: inner, .. } if inner == op)) {
        return None;
    }
    let mut flat = Vec::with_capacity(args.len());
    for a in args {
        match a {
            CinExpr::Call { op: inner, args: inner_args } if inner == op => {
                flat.extend(inner_args.iter().cloned())
            }
            other => flat.push(other.clone()),
        }
    }
    Some(CinExpr::Call { op: *op, args: flat })
}

/// `f(a..., missing, b...) => missing` for every operator except `coalesce`.
fn missing_propagation(e: &CinExpr) -> Option<CinExpr> {
    let CinExpr::Call { op, args } = e else { return None };
    if *op == CinOp::Coalesce {
        return None;
    }
    if args.iter().any(|a| a.as_literal() == Some(Value::Missing)) {
        Some(CinExpr::Literal(Value::Missing))
    } else {
        None
    }
}

/// `coalesce(a..., missing, b...) => coalesce(a..., b...)`, plus: an empty
/// coalesce is `missing`, a unary coalesce is its argument, and a coalesce
/// whose first argument is a known (non-missing) literal is that literal.
fn coalesce_simplify(e: &CinExpr) -> Option<CinExpr> {
    let CinExpr::Call { op: CinOp::Coalesce, args } = e else { return None };
    // Drop literal-missing arguments.
    let kept: Vec<CinExpr> =
        args.iter().filter(|a| a.as_literal() != Some(Value::Missing)).cloned().collect();
    if kept.len() != args.len() {
        return Some(CinExpr::Call { op: CinOp::Coalesce, args: kept });
    }
    if args.is_empty() {
        return Some(CinExpr::Literal(Value::Missing));
    }
    if args.len() == 1 {
        return Some(args[0].clone());
    }
    if let Some(v) = args[0].as_literal() {
        if v != Value::Missing {
            return Some(CinExpr::Literal(v));
        }
    }
    None
}

/// `*(a..., 0, b...) => 0`, `and(a..., false, b...) => false`,
/// `or(a..., true, b...) => true`.
fn annihilator(e: &CinExpr) -> Option<CinExpr> {
    let CinExpr::Call { op, args } = e else { return None };
    let hit = |a: &CinExpr| -> bool {
        match (op, a.as_literal()) {
            (CinOp::Mul | CinOp::And, Some(v)) => v.is_zero(),
            (CinOp::Or, Some(v)) => v == Value::Bool(true),
            _ => false,
        }
    };
    if args.iter().any(hit) {
        op.annihilator().map(CinExpr::Literal)
    } else {
        None
    }
}

/// `*(a..., 1, b...) => *(a..., b...)`, `+(a..., 0, b...) => +(a..., b...)`,
/// and the unary/empty collapses `op(x) => x`, `op() => identity`.
fn identity_removal(e: &CinExpr) -> Option<CinExpr> {
    let CinExpr::Call { op, args } = e else { return None };
    if !op.is_variadic() || *op == CinOp::Coalesce {
        return None;
    }
    let identity = op.identity()?;
    let is_identity = |a: &CinExpr| -> bool {
        match (op, a.as_literal()) {
            (CinOp::Add, Some(v)) => v.is_zero(),
            (CinOp::Mul | CinOp::And, Some(v)) => v.is_one(),
            (CinOp::Or, Some(v)) => v == Value::Bool(false),
            (CinOp::Min, Some(v)) => v == Value::Float(f64::INFINITY),
            (CinOp::Max, Some(v)) => v == Value::Float(f64::NEG_INFINITY),
            _ => false,
        }
    };
    let kept: Vec<CinExpr> = args.iter().filter(|a| !is_identity(a)).cloned().collect();
    if kept.len() == args.len() && args.len() > 1 {
        return None;
    }
    match kept.len() {
        0 => Some(CinExpr::Literal(identity)),
        1 => Some(kept.into_iter().next().expect("one element")),
        _ => Some(CinExpr::Call { op: *op, args: kept }),
    }
}

fn binop_of(op: CinOp) -> Option<BinOp> {
    Some(match op {
        CinOp::Add => BinOp::Add,
        CinOp::Sub => BinOp::Sub,
        CinOp::Mul => BinOp::Mul,
        CinOp::Div => BinOp::Div,
        CinOp::Min => BinOp::Min,
        CinOp::Max => BinOp::Max,
        CinOp::And => BinOp::And,
        CinOp::Or => BinOp::Or,
        CinOp::Eq => BinOp::Eq,
        CinOp::Ne => BinOp::Ne,
        CinOp::Lt => BinOp::Lt,
        CinOp::Le => BinOp::Le,
        CinOp::Gt => BinOp::Gt,
        CinOp::Ge => BinOp::Ge,
        _ => return None,
    })
}

fn unop_of(op: CinOp) -> Option<UnOp> {
    Some(match op {
        CinOp::Sqrt => UnOp::Sqrt,
        CinOp::Abs => UnOp::Abs,
        CinOp::Round => UnOp::Round,
        CinOp::Neg => UnOp::Neg,
        CinOp::Not => UnOp::Not,
        _ => return None,
    })
}

/// `f(a...) => eval(f(a...))` when every argument is a compile-time constant.
fn constant_fold(e: &CinExpr) -> Option<CinExpr> {
    let CinExpr::Call { op, args } = e else { return None };
    let values: Option<Vec<Value>> = args.iter().map(|a| a.as_literal()).collect();
    let values = values?;
    if values.is_empty() {
        return None;
    }
    let result = if *op == CinOp::Coalesce {
        values.iter().copied().find(|v| !v.is_missing()).unwrap_or(Value::Missing)
    } else if let Some(un) = unop_of(*op) {
        if values.len() != 1 {
            return None;
        }
        Value::unop(un, values[0]).ok()?
    } else if let Some(bin) = binop_of(*op) {
        let mut acc = values[0];
        if values.len() == 1 {
            return Some(CinExpr::Literal(acc));
        }
        for v in &values[1..] {
            acc = Value::binop(bin, acc, *v).ok()?;
        }
        acc
    } else {
        return None;
    };
    Some(CinExpr::Literal(result))
}

// ---------------------------------------------------------------------------
// Statement rules
// ---------------------------------------------------------------------------

/// `a[i...] += 0 => @pass(a)`, `a[i...] *= 1 => @pass(a)`, and likewise for
/// the other reduction operators' identities.
fn assign_identity_update(s: &CinStmt) -> Option<CinStmt> {
    let CinStmt::Assign { lhs, reduction: Reduction::Reduce(op), rhs } = s else { return None };
    let v = rhs.as_literal()?;
    let is_identity = match op {
        CinOp::Add => v.is_zero(),
        CinOp::Mul => v.is_one(),
        CinOp::And => v.is_one(),
        CinOp::Or => v == Value::Bool(false),
        CinOp::Min => v == Value::Float(f64::INFINITY),
        CinOp::Max => v == Value::Float(f64::NEG_INFINITY),
        _ => false,
    };
    if is_identity {
        Some(CinStmt::Pass(vec![lhs.tensor.clone()]))
    } else {
        None
    }
}

/// Assigning `missing` leaves the output unchanged (the paper treats
/// out-of-bounds writes under `permit` as dropped).
fn assign_missing(s: &CinStmt) -> Option<CinStmt> {
    let CinStmt::Assign { lhs, rhs, .. } = s else { return None };
    if rhs.as_literal() == Some(Value::Missing) {
        Some(CinStmt::Pass(vec![lhs.tensor.clone()]))
    } else {
        None
    }
}

/// `@sieve true s => s` and `@sieve false s => @pass(getresults(s))`.
fn sieve_fold(s: &CinStmt) -> Option<CinStmt> {
    let CinStmt::Sieve { cond, body } = s else { return None };
    match cond.as_literal() {
        Some(Value::Bool(true)) => Some((**body).clone()),
        Some(Value::Bool(false)) => Some(CinStmt::Pass(body.results())),
        _ => None,
    }
}

/// `@forall i s => s` when `s` is a pass (nothing left to do in the loop).
fn forall_over_pass(s: &CinStmt) -> Option<CinStmt> {
    let CinStmt::Forall { body, .. } = s else { return None };
    if body.is_pass() {
        Some(CinStmt::Pass(body.results()))
    } else {
        None
    }
}

/// A sieve around a pass is a pass.
fn sieve_over_pass(s: &CinStmt) -> Option<CinStmt> {
    let CinStmt::Sieve { body, .. } = s else { return None };
    if body.is_pass() {
        Some(CinStmt::Pass(body.results()))
    } else {
        None
    }
}

/// A multi whose constituents are all passes is a pass over the union of
/// their outputs.
fn multi_of_passes(s: &CinStmt) -> Option<CinStmt> {
    let CinStmt::Multi(stmts) = s else { return None };
    if !stmts.is_empty() && stmts.iter().all(|st| st.is_pass()) {
        Some(CinStmt::Pass(s.results()))
    } else {
        None
    }
}

/// `a where @pass() => a`, and a `where` whose consumer is a pass does
/// nothing observable.
fn where_trivial(s: &CinStmt) -> Option<CinStmt> {
    let CinStmt::Where { consumer, producer } = s else { return None };
    if producer.is_pass() {
        return Some((**consumer).clone());
    }
    if consumer.is_pass() {
        return Some(CinStmt::Pass(consumer.results()));
    }
    None
}

/// The invariant-loop rule of Figure 5: adding the same value `n` times is
/// adding `value * n` once, and idempotent or overwriting updates need only
/// be performed once.  Only fires when the loop has an explicit extent (the
/// lowering compiler always provides one before asking for simplification).
fn invariant_loop(s: &CinStmt) -> Option<CinStmt> {
    let CinStmt::Forall { index, extent: Some((lo, hi)), body } = s else { return None };
    let CinStmt::Assign { lhs, reduction, rhs } = &**body else { return None };
    // The update must not depend on the loop index, neither through the
    // value nor through the output coordinates.
    if rhs.mentions_index(index) {
        return None;
    }
    if lhs.index_vars().iter().any(|v| v == index) {
        return None;
    }
    if lo.mentions_index(index) || hi.mentions_index(index) {
        return None;
    }
    let statically_nonempty = match (lo.as_literal(), hi.as_literal()) {
        (Some(a), Some(b)) => match (a.as_int(), b.as_int()) {
            (Ok(a), Ok(b)) => Some(a <= b),
            _ => None,
        },
        _ => None,
    };
    match reduction {
        Reduction::Reduce(CinOp::Add) => {
            // length = max(hi - lo + 1, 0)
            let len = CinExpr::call(
                CinOp::Max,
                vec![
                    CinExpr::call(
                        CinOp::Add,
                        vec![
                            CinExpr::call(CinOp::Sub, vec![hi.clone(), lo.clone()]),
                            CinExpr::int(1),
                        ],
                    ),
                    CinExpr::int(0),
                ],
            );
            Some(CinStmt::Assign {
                lhs: lhs.clone(),
                reduction: Reduction::Reduce(CinOp::Add),
                rhs: CinExpr::call(CinOp::Mul, vec![rhs.clone(), len]),
            })
        }
        Reduction::Reduce(CinOp::Min | CinOp::Max | CinOp::Or | CinOp::And)
        | Reduction::Overwrite => {
            // Idempotent updates: safe to collapse only when the loop is
            // known to execute at least once.
            if statically_nonempty == Some(true) {
                Some((**body).clone())
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finch_cin::build::*;

    #[test]
    fn annihilator_covers_and_or() {
        let rw = Rewriter::with_default_rules();
        let e = CinExpr::call(
            CinOp::And,
            vec![access("A", [idx("i")]).into(), CinExpr::Literal(Value::Bool(false))],
        );
        assert_eq!(rw.simplify_expr(&e).as_literal(), Some(Value::Bool(false)));
        let e = CinExpr::call(
            CinOp::Or,
            vec![access("A", [idx("i")]).into(), CinExpr::Literal(Value::Bool(true))],
        );
        assert_eq!(rw.simplify_expr(&e).as_literal(), Some(Value::Bool(true)));
    }

    #[test]
    fn unary_constant_folding() {
        let rw = Rewriter::with_default_rules();
        assert_eq!(rw.simplify_expr(&sqrt(lit(9.0))).as_literal(), Some(Value::Float(3.0)));
        assert_eq!(rw.simplify_expr(&round_u8(lit(7.4))).as_literal(), Some(Value::Float(7.0)));
    }

    #[test]
    fn overwrite_of_missing_is_dropped() {
        let rw = Rewriter::with_default_rules();
        let s = assign(scalar("C"), CinExpr::Literal(Value::Missing));
        assert!(rw.simplify_stmt(&s).is_pass());
    }

    #[test]
    fn min_update_with_plus_infinity_is_dropped() {
        let rw = Rewriter::with_default_rules();
        let s = reduce_assign(scalar("C"), CinOp::Min, lit(f64::INFINITY));
        assert!(rw.simplify_stmt(&s).is_pass());
    }

    #[test]
    fn where_with_pass_producer_reduces_to_consumer() {
        let rw = Rewriter::with_default_rules();
        let consumer = assign(scalar("O"), lit(1.0));
        let s = where_(consumer.clone(), pass(vec!["o".into()]));
        assert_eq!(rw.simplify_stmt(&s), consumer);
    }

    #[test]
    fn invariant_overwrite_collapses_when_statically_nonempty() {
        let rw = Rewriter::with_default_rules();
        let i = idx("i");
        let s = forall_in(i, lit_int(0), lit_int(4), assign(scalar("C"), lit(3.0)));
        let out = rw.simplify_stmt(&s);
        assert_eq!(out, assign(scalar("C"), lit(3.0)));
    }

    #[test]
    fn invariant_loop_does_not_fire_when_the_body_depends_on_the_index() {
        let rw = Rewriter::with_default_rules();
        let i = idx("i");
        let s =
            forall_in(i.clone(), lit_int(0), lit_int(4), add_assign(scalar("C"), access("x", [i])));
        // The loop must survive.
        assert!(matches!(rw.simplify_stmt(&s), CinStmt::Forall { .. }));
    }

    #[test]
    fn multi_of_passes_collapses() {
        let rw = Rewriter::with_default_rules();
        let s = multi(vec![pass(vec!["A".into()]), pass(vec!["B".into()])]);
        let out = rw.simplify_stmt(&s);
        assert!(out.is_pass());
        assert_eq!(out.results().len(), 2);
    }
}
