//! Lowering styles and the pairwise style-resolution heuristic (paper §6.2).
//!
//! When several accesses in the same loop body are described by different
//! looplets, the compiler must decide which looplet pass runs first.  Each
//! looplet declares a [`Style`]; styles are resolved pairwise, and the
//! winning style's lowerer runs, truncating or ignoring the other looplets
//! as needed.  The priority order of the paper is
//!
//! ```text
//! Switch > Run > Spike > Pipeline > Jumper > Stepper > Lookup
//! ```
//!
//! with the implementation-level wrappers (`Thunk`, `BindExtent`, `Shift`)
//! resolved before everything else since they merely unwrap.

use crate::looplet::Looplet;

/// The lowering style a looplet declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Style {
    /// A terminal leaf: nothing left to lower.
    Leaf,
    /// Plain random-access iteration (emit a `for` loop).
    Lookup,
    /// Two-finger style iteration over children.
    Stepper,
    /// Leader-elected iteration (galloping).
    Jumper,
    /// Concatenated phases.
    Pipeline,
    /// A repeated value with a final scalar.
    Spike,
    /// A single repeated value.
    Run,
    /// A runtime choice between looplets.
    Switch,
    /// A shifted wrapper (unwrapped by the access bookkeeping).
    Shift,
    /// Binds the current region's bounds to variables.
    BindExtent,
    /// Hoisted preamble statements.
    Thunk,
}

impl Style {
    /// The numeric priority of the style: higher priorities are lowered
    /// first.  Matches the paper's ordering, with wrappers first.
    pub fn priority(self) -> u8 {
        match self {
            Style::Thunk => 110,
            Style::BindExtent => 105,
            Style::Shift => 100,
            Style::Switch => 90,
            Style::Run => 80,
            Style::Spike => 70,
            Style::Pipeline => 60,
            Style::Jumper => 50,
            Style::Stepper => 40,
            Style::Lookup => 30,
            Style::Leaf => 0,
        }
    }

    /// Pairwise resolution: the style whose lowerer can handle both inputs.
    pub fn resolve(self, other: Style) -> Style {
        if self.priority() >= other.priority() {
            self
        } else {
            other
        }
    }

    /// Resolve a collection of styles; `None` when the collection is empty.
    pub fn resolve_all<I: IntoIterator<Item = Style>>(styles: I) -> Option<Style> {
        styles.into_iter().reduce(Style::resolve)
    }
}

impl<L> Looplet<L> {
    /// The style declared by the outermost node of this nest.
    pub fn style(&self) -> Style {
        match self {
            Looplet::Leaf(_) => Style::Leaf,
            Looplet::Run { .. } => Style::Run,
            Looplet::Spike { .. } => Style::Spike,
            Looplet::Lookup { .. } => Style::Lookup,
            Looplet::Pipeline { .. } => Style::Pipeline,
            Looplet::Stepper(_) => Style::Stepper,
            Looplet::Jumper(_) => Style::Jumper,
            Looplet::Switch { .. } => Style::Switch,
            Looplet::Shift { .. } => Style::Shift,
            Looplet::Thunk { .. } => Style::Thunk,
            Looplet::BindExtent { .. } => Style::BindExtent,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finch_ir::Expr;

    #[test]
    fn paper_priority_order_is_respected() {
        // Switch > Run > Spike > Pipeline > Jumper > Stepper > Lookup
        let order = [
            Style::Switch,
            Style::Run,
            Style::Spike,
            Style::Pipeline,
            Style::Jumper,
            Style::Stepper,
            Style::Lookup,
        ];
        for w in order.windows(2) {
            assert!(w[0].priority() > w[1].priority(), "{:?} should outrank {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn resolution_is_commutative_and_picks_the_stronger_pass() {
        assert_eq!(Style::Run.resolve(Style::Spike), Style::Run);
        assert_eq!(Style::Spike.resolve(Style::Run), Style::Run);
        assert_eq!(Style::Stepper.resolve(Style::Jumper), Style::Jumper);
        assert_eq!(Style::Lookup.resolve(Style::Leaf), Style::Lookup);
    }

    #[test]
    fn resolve_all_over_a_mixed_expression() {
        let styles = vec![Style::Lookup, Style::Stepper, Style::Spike, Style::Leaf];
        assert_eq!(Style::resolve_all(styles), Some(Style::Spike));
        assert_eq!(Style::resolve_all(Vec::<Style>::new()), None);
    }

    #[test]
    fn looplet_reports_its_outermost_style() {
        let l: Looplet<Expr> = Looplet::run(Expr::int(0));
        assert_eq!(l.style(), Style::Run);
        let l: Looplet<Expr> = Looplet::spike(Expr::int(0), Expr::int(1));
        assert_eq!(l.style(), Style::Spike);
        let l: Looplet<Expr> = Looplet::run(Expr::int(0)).shifted(Expr::int(3));
        assert_eq!(l.style(), Style::Shift);
        let l: Looplet<Expr> = Looplet::Leaf(Expr::int(1));
        assert_eq!(l.style(), Style::Leaf);
    }

    #[test]
    fn wrappers_outrank_every_structural_style() {
        for s in [Style::Switch, Style::Run, Style::Spike, Style::Pipeline, Style::Jumper] {
            assert!(Style::Thunk.priority() > s.priority());
            assert!(Style::BindExtent.priority() > s.priority());
            assert!(Style::Shift.priority() > s.priority());
        }
    }
}
