//! The leaf payload abstraction.
//!
//! A [`Looplet`](crate::Looplet) is generic over what lives at its leaves.
//! In the simplest case that is a target-IR expression (`finch_ir::Expr`) —
//! the value of the sequence in the described region.  The Finch compiler
//! instead uses a richer leaf type that can also hold an *unresolved
//! subfiber* (the next level of a fiber-tree tensor, paper §4), so the same
//! looplet machinery works at every level of a multidimensional format.

use finch_ir::{Expr, Var};

/// Types that can appear at the leaves of a looplet nest.
///
/// The single requirement is variable substitution: when a lowerer binds a
/// `Lookup` looplet's coordinate variable (or a `Thunk`'s position variable)
/// to a concrete loop index, the binding must reach into the leaves.
pub trait Leaf: Clone {
    /// Substitute `var` with `replacement` in every expression the leaf
    /// contains.
    fn substitute_var(&self, var: Var, replacement: &Expr) -> Self;
}

impl Leaf for Expr {
    fn substitute_var(&self, var: Var, replacement: &Expr) -> Self {
        self.substitute(var, replacement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finch_ir::Names;

    #[test]
    fn expr_leaves_substitute() {
        let mut names = Names::new();
        let i = names.fresh("i");
        let leaf = Expr::add(Expr::Var(i), Expr::int(1));
        let out = leaf.substitute_var(i, &Expr::int(41));
        assert_eq!(out, Expr::add(Expr::int(41), Expr::int(1)));
    }
}
