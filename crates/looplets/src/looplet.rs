//! The Looplet ADT and its construction/traversal helpers.

use finch_ir::{Expr, Stmt, Var};

use crate::leaf::Leaf;

/// One phase of a [`Looplet::Pipeline`]: a child looplet that covers the
/// target region up to (and including) `stride`.  The final phase of a
/// pipeline usually has no stride, meaning "to the end of the target
/// region".
#[derive(Debug, Clone, PartialEq)]
pub struct Phase<L> {
    /// The inclusive end of this phase, in the coordinates of the array.
    /// `None` means the phase extends to the end of the enclosing region.
    pub stride: Option<Expr>,
    /// The child looplet describing the values of the phase.
    pub body: Looplet<L>,
}

/// One case of a [`Looplet::Switch`]: the child looplet used when `cond`
/// evaluates to true at runtime.  The final case conventionally has the
/// condition `true`.
#[derive(Debug, Clone, PartialEq)]
pub struct Case<L> {
    /// The runtime condition guarding this case.
    pub cond: Expr,
    /// The child looplet used when the condition holds.
    pub body: Looplet<L>,
}

/// The `seek` fragment of a stepper or jumper: statements that position the
/// looplet's runtime state (typically via binary search) so that its current
/// child intersects a given starting index.
#[derive(Debug, Clone, PartialEq)]
pub struct Seek {
    /// The variable the starting index is bound to before `body` runs.
    pub var: Var,
    /// The statements that position the state.
    pub body: Vec<Stmt>,
}

/// The common payload of [`Looplet::Stepper`] and [`Looplet::Jumper`]:
/// a repeated child looplet together with the code that advances to the
/// next child.
#[derive(Debug, Clone, PartialEq)]
pub struct Stepped<L> {
    /// Optional `seek` used to fast-forward to a starting index.
    pub seek: Option<Seek>,
    /// The inclusive end of the *current* child, in array coordinates
    /// (e.g. `idx[p]` for a sparse list).
    pub stride: Expr,
    /// The current child looplet.
    pub body: Box<Looplet<L>>,
    /// Statements advancing the runtime state to the next child
    /// (e.g. `p += 1`).
    pub next: Vec<Stmt>,
}

/// A hierarchical description of a structured sequence (paper §3, Figure 2).
///
/// Looplets are always interpreted relative to a target region (an
/// [`Extent`](finch_ir::Extent)): a `Run` covers the whole region, a
/// `Spike`'s tail sits at the region's end, a `Pipeline`'s last phase
/// extends to the region's end, and so on.
#[derive(Debug, Clone, PartialEq)]
pub enum Looplet<L> {
    /// A terminal value covering whatever region remains.
    Leaf(L),
    /// The same value repeated across the whole target region.
    Run {
        /// The repeated value.
        body: Box<Looplet<L>>,
    },
    /// A repeated value followed by a single scalar at the region's end.
    Spike {
        /// The repeated value covering all but the last index.
        body: Box<Looplet<L>>,
        /// The value at the final index of the region.
        tail: Box<Looplet<L>>,
    },
    /// An arbitrary sequence of scalars where the element at index `i` is
    /// `body` with `var` bound to `i`.
    Lookup {
        /// The coordinate variable bound by this looplet.
        var: Var,
        /// The leaf computed from the coordinate.
        body: Box<Looplet<L>>,
    },
    /// The concatenation of a few child looplets, one after the other.
    Pipeline {
        /// The phases, in ascending coordinate order.
        phases: Vec<Phase<L>>,
    },
    /// The repeated application of the same child looplet, evaluated
    /// iteratively (the "walking" / follower protocol).
    Stepper(Stepped<L>),
    /// Like a stepper, but the child may be asked to cover a region wider
    /// than its declared stride, enabling accelerated iteration such as
    /// galloping intersections (the leader protocol).
    Jumper(Stepped<L>),
    /// A runtime choice between child looplets.
    Switch {
        /// The cases, tried in order; the first whose condition holds is
        /// used.
        cases: Vec<Case<L>>,
    },
    /// A wrapper that shifts all declared extents of `body` by `delta`:
    /// the value of `Shift { delta, body }` at coordinate `i` is the value
    /// of `body` at coordinate `i - delta`.
    Shift {
        /// The coordinate shift.
        delta: Expr,
        /// The shifted looplet.
        body: Box<Looplet<L>>,
    },
    /// Preamble statements hoisted before the body is examined (Finch.jl's
    /// `Thunk`), e.g. `p = pos[i]` in the sparse-list unfurl of Figure 3d.
    Thunk {
        /// The statements to emit before lowering `body`.
        preamble: Vec<Stmt>,
        /// The wrapped looplet.
        body: Box<Looplet<L>>,
    },
    /// Binds the bounds of the current target region to IR variables before
    /// `body` is examined.  Used by protocols whose nests refer to "the end
    /// of the region", such as the galloping protocol's `idx[p] == j` case
    /// (Figure 6a).
    BindExtent {
        /// Variable bound to the region's inclusive lower bound, if wanted.
        lo: Option<Var>,
        /// Variable bound to the region's inclusive upper bound, if wanted.
        hi: Option<Var>,
        /// The wrapped looplet.
        body: Box<Looplet<L>>,
    },
}

impl<L> Looplet<L> {
    /// A [`Looplet::Run`] of a leaf value.
    pub fn run(value: L) -> Self {
        Looplet::Run { body: Box::new(Looplet::Leaf(value)) }
    }

    /// A [`Looplet::Spike`] with leaf body and tail.
    pub fn spike(body: L, tail: L) -> Self {
        Looplet::Spike { body: Box::new(Looplet::Leaf(body)), tail: Box::new(Looplet::Leaf(tail)) }
    }

    /// A [`Looplet::Lookup`] whose leaf is computed from `var`.
    pub fn lookup(var: Var, body: L) -> Self {
        Looplet::Lookup { var, body: Box::new(Looplet::Leaf(body)) }
    }

    /// A [`Looplet::Pipeline`] over the given phases.
    pub fn pipeline(phases: Vec<Phase<L>>) -> Self {
        Looplet::Pipeline { phases }
    }

    /// A [`Looplet::Switch`] over the given cases.
    pub fn switch(cases: Vec<Case<L>>) -> Self {
        Looplet::Switch { cases }
    }

    /// Wrap in a [`Looplet::Thunk`] with the given preamble.
    pub fn with_preamble(self, preamble: Vec<Stmt>) -> Self {
        Looplet::Thunk { preamble, body: Box::new(self) }
    }

    /// Wrap in a [`Looplet::Shift`] by `delta`.
    pub fn shifted(self, delta: Expr) -> Self {
        Looplet::Shift { delta, body: Box::new(self) }
    }

    /// Transform the leaves of the nest, preserving its structure.
    pub fn map_leaves<M>(&self, f: &mut dyn FnMut(&L) -> M) -> Looplet<M> {
        match self {
            Looplet::Leaf(l) => Looplet::Leaf(f(l)),
            Looplet::Run { body } => Looplet::Run { body: Box::new(body.map_leaves(f)) },
            Looplet::Spike { body, tail } => Looplet::Spike {
                body: Box::new(body.map_leaves(f)),
                tail: Box::new(tail.map_leaves(f)),
            },
            Looplet::Lookup { var, body } => {
                Looplet::Lookup { var: *var, body: Box::new(body.map_leaves(f)) }
            }
            Looplet::Pipeline { phases } => Looplet::Pipeline {
                phases: phases
                    .iter()
                    .map(|p| Phase { stride: p.stride.clone(), body: p.body.map_leaves(f) })
                    .collect(),
            },
            Looplet::Stepper(s) => Looplet::Stepper(s.map_leaves(f)),
            Looplet::Jumper(s) => Looplet::Jumper(s.map_leaves(f)),
            Looplet::Switch { cases } => Looplet::Switch {
                cases: cases
                    .iter()
                    .map(|c| Case { cond: c.cond.clone(), body: c.body.map_leaves(f) })
                    .collect(),
            },
            Looplet::Shift { delta, body } => {
                Looplet::Shift { delta: delta.clone(), body: Box::new(body.map_leaves(f)) }
            }
            Looplet::Thunk { preamble, body } => {
                Looplet::Thunk { preamble: preamble.clone(), body: Box::new(body.map_leaves(f)) }
            }
            Looplet::BindExtent { lo, hi, body } => {
                Looplet::BindExtent { lo: *lo, hi: *hi, body: Box::new(body.map_leaves(f)) }
            }
        }
    }

    /// Count the nodes of the nest (used by tests and by compile-size
    /// diagnostics).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Looplet::Leaf(_) => 0,
            Looplet::Run { body }
            | Looplet::Lookup { body, .. }
            | Looplet::Shift { body, .. }
            | Looplet::Thunk { body, .. }
            | Looplet::BindExtent { body, .. } => body.node_count(),
            Looplet::Spike { body, tail } => body.node_count() + tail.node_count(),
            Looplet::Pipeline { phases } => phases.iter().map(|p| p.body.node_count()).sum(),
            Looplet::Stepper(s) | Looplet::Jumper(s) => s.body.node_count(),
            Looplet::Switch { cases } => cases.iter().map(|c| c.body.node_count()).sum(),
        }
    }
}

impl<L: Leaf> Looplet<L> {
    /// Substitute variable `var` with `replacement` in every expression of
    /// the nest: strides, conditions, deltas, seek/next/preamble statements,
    /// and leaves.
    ///
    /// Variables created by [`finch_ir::Names`] are globally unique, so no
    /// capture can occur even though `Lookup`/`Seek` own binder variables.
    pub fn substitute_var(&self, var: Var, replacement: &Expr) -> Looplet<L> {
        let sub_expr = |e: &Expr| e.substitute(var, replacement);
        let sub_stmts = |ss: &[Stmt]| Stmt::substitute_all(ss, var, replacement);
        match self {
            Looplet::Leaf(l) => Looplet::Leaf(l.substitute_var(var, replacement)),
            Looplet::Run { body } => {
                Looplet::Run { body: Box::new(body.substitute_var(var, replacement)) }
            }
            Looplet::Spike { body, tail } => Looplet::Spike {
                body: Box::new(body.substitute_var(var, replacement)),
                tail: Box::new(tail.substitute_var(var, replacement)),
            },
            Looplet::Lookup { var: v, body } => {
                Looplet::Lookup { var: *v, body: Box::new(body.substitute_var(var, replacement)) }
            }
            Looplet::Pipeline { phases } => Looplet::Pipeline {
                phases: phases
                    .iter()
                    .map(|p| Phase {
                        stride: p.stride.as_ref().map(&sub_expr),
                        body: p.body.substitute_var(var, replacement),
                    })
                    .collect(),
            },
            Looplet::Stepper(s) => Looplet::Stepper(s.substitute_var(var, replacement)),
            Looplet::Jumper(s) => Looplet::Jumper(s.substitute_var(var, replacement)),
            Looplet::Switch { cases } => Looplet::Switch {
                cases: cases
                    .iter()
                    .map(|c| Case {
                        cond: sub_expr(&c.cond),
                        body: c.body.substitute_var(var, replacement),
                    })
                    .collect(),
            },
            Looplet::Shift { delta, body } => Looplet::Shift {
                delta: sub_expr(delta),
                body: Box::new(body.substitute_var(var, replacement)),
            },
            Looplet::Thunk { preamble, body } => Looplet::Thunk {
                preamble: sub_stmts(preamble),
                body: Box::new(body.substitute_var(var, replacement)),
            },
            Looplet::BindExtent { lo, hi, body } => Looplet::BindExtent {
                lo: *lo,
                hi: *hi,
                body: Box::new(body.substitute_var(var, replacement)),
            },
        }
    }
}

impl<L> Stepped<L> {
    /// Transform the leaves of the child looplet.
    pub fn map_leaves<M>(&self, f: &mut dyn FnMut(&L) -> M) -> Stepped<M> {
        Stepped {
            seek: self.seek.clone(),
            stride: self.stride.clone(),
            body: Box::new(self.body.map_leaves(f)),
            next: self.next.clone(),
        }
    }
}

impl<L: Leaf> Stepped<L> {
    /// Substitute a variable throughout the stepper payload.
    pub fn substitute_var(&self, var: Var, replacement: &Expr) -> Stepped<L> {
        Stepped {
            seek: self.seek.as_ref().map(|s| Seek {
                var: s.var,
                body: Stmt::substitute_all(&s.body, var, replacement),
            }),
            stride: self.stride.substitute(var, replacement),
            body: Box::new(self.body.substitute_var(var, replacement)),
            next: Stmt::substitute_all(&self.next, var, replacement),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use finch_ir::{Names, Value};

    fn sample_nest(names: &mut Names) -> (Var, Looplet<Expr>) {
        // Pipeline(Phase(stride=5, Stepper(stride=idx-ish, Spike(0, val))), Phase(Run(0)))
        let p = names.fresh("p");
        let nest = Looplet::pipeline(vec![
            Phase {
                stride: Some(Expr::int(5)),
                body: Looplet::Stepper(Stepped {
                    seek: None,
                    stride: Expr::Var(p),
                    body: Box::new(Looplet::spike(Expr::float(0.0), Expr::Var(p))),
                    next: vec![Stmt::Assign {
                        var: p,
                        value: Expr::add(Expr::Var(p), Expr::int(1)),
                    }],
                }),
            },
            Phase { stride: None, body: Looplet::run(Expr::float(0.0)) },
        ]);
        (p, nest)
    }

    #[test]
    fn map_leaves_preserves_structure() {
        let mut names = Names::new();
        let (_, nest) = sample_nest(&mut names);
        let mapped: Looplet<i32> = nest.map_leaves(&mut |_| 7);
        assert_eq!(mapped.node_count(), nest.node_count());
    }

    #[test]
    fn substitute_var_reaches_strides_nexts_and_leaves() {
        let mut names = Names::new();
        let (p, nest) = sample_nest(&mut names);
        let replaced = nest.substitute_var(p, &Expr::int(9));
        // No remaining mention of p anywhere.
        fn mentions(l: &Looplet<Expr>, v: Var) -> bool {
            match l {
                Looplet::Leaf(e) => e.mentions(v),
                Looplet::Run { body } | Looplet::Lookup { body, .. } => mentions(body, v),
                Looplet::Spike { body, tail } => mentions(body, v) || mentions(tail, v),
                Looplet::Pipeline { phases } => phases.iter().any(|ph| {
                    ph.stride.as_ref().map(|s| s.mentions(v)).unwrap_or(false)
                        || mentions(&ph.body, v)
                }),
                Looplet::Stepper(s) | Looplet::Jumper(s) => {
                    s.stride.mentions(v)
                        || mentions(&s.body, v)
                        || s.next.iter().any(|st| {
                            let mut found = false;
                            st.visit(&mut |node| {
                                if let Stmt::Assign { value, .. } = node {
                                    if value.mentions(v) {
                                        found = true;
                                    }
                                }
                            });
                            found
                        })
                }
                Looplet::Switch { cases } => {
                    cases.iter().any(|c| c.cond.mentions(v) || mentions(&c.body, v))
                }
                Looplet::Shift { delta, body } => delta.mentions(v) || mentions(body, v),
                Looplet::Thunk { body, .. } | Looplet::BindExtent { body, .. } => mentions(body, v),
            }
        }
        assert!(mentions(&nest, p));
        assert!(!mentions(&replaced, p));
    }

    #[test]
    fn constructors_build_expected_variants() {
        let run: Looplet<Expr> = Looplet::run(Expr::Lit(Value::Float(1.5)));
        assert!(matches!(run, Looplet::Run { .. }));
        let spike: Looplet<Expr> = Looplet::spike(Expr::int(0), Expr::int(3));
        assert!(matches!(spike, Looplet::Spike { .. }));
        let mut names = Names::new();
        let j = names.fresh("j");
        let lk = Looplet::lookup(j, Expr::Var(j));
        assert!(matches!(lk, Looplet::Lookup { .. }));
        let shifted = lk.shifted(Expr::int(2));
        assert!(matches!(shifted, Looplet::Shift { .. }));
        let th = Looplet::run(Expr::int(0)).with_preamble(vec![Stmt::Comment("init".into())]);
        assert!(matches!(th, Looplet::Thunk { .. }));
    }

    #[test]
    fn node_count_counts_all_children() {
        let mut names = Names::new();
        let (_, nest) = sample_nest(&mut names);
        // Pipeline + (Stepper + Spike + 2 leaves) + (Run + leaf) = 7
        assert_eq!(nest.node_count(), 7);
    }
}
