//! Region truncation (paper §6.1).
//!
//! Several lowerers carve the current target region into subregions — a
//! spike splits off its final index, a pipeline processes one phase at a
//! time, a stepper processes one child at a time — and all *other* looplets
//! in the expression must then be reinterpreted over the smaller region.
//! That reinterpretation is truncation.
//!
//! Most looplets are self-similar and truncate to themselves.  The
//! interesting case is the spike: the truncation of a spike that might not
//! include its final element can only be decided at runtime, so it becomes a
//! [`Switch`](crate::Looplet::Switch) between "still a spike" and "just the
//! run of its body", exactly as described in the paper.  It is this rule
//! that makes the stepper lowerer reproduce TACO's two-finger merge.

use finch_ir::{Expr, Extent};

use crate::looplet::{Case, Looplet};

impl<L: Clone> Looplet<L> {
    /// Reinterpret this looplet, originally described over the region
    /// `old`, as a description of the subregion `new`.
    ///
    /// `new` is assumed to be contained in `old` and to share its lower
    /// bound's position in iteration order (lowerers only ever shrink the
    /// upper bound of the region they hand to children, or restart from a
    /// later lower bound which self-similar looplets don't care about).
    pub fn truncate(&self, old: &Extent, new: &Extent) -> Looplet<L> {
        match self {
            // Self-similar looplets: any subregion looks the same.
            Looplet::Leaf(_)
            | Looplet::Run { .. }
            | Looplet::Lookup { .. }
            | Looplet::Pipeline { .. }
            | Looplet::Stepper(_)
            | Looplet::Jumper(_) => self.clone(),

            // A spike still ends the region only if the region still ends at
            // the same place.  If that cannot be decided syntactically, defer
            // the decision to runtime with a switch.
            Looplet::Spike { body, .. } => {
                if new.hi == old.hi {
                    self.clone()
                } else {
                    Looplet::Switch {
                        cases: vec![
                            Case {
                                cond: Expr::eq(new.hi.clone(), old.hi.clone()),
                                body: self.clone(),
                            },
                            // Without its tail the spike is just its repeated
                            // body (itself usually a run).
                            Case { cond: Expr::bool(true), body: (**body).clone() },
                        ],
                    }
                }
            }

            Looplet::Switch { cases } => Looplet::Switch {
                cases: cases
                    .iter()
                    .map(|c| Case { cond: c.cond.clone(), body: c.body.truncate(old, new) })
                    .collect(),
            },

            // A shift presents its body in shifted coordinates: translate the
            // regions back into the body's frame before truncating.
            Looplet::Shift { delta, body } => {
                let neg = Expr::sub(Expr::int(0), delta.clone());
                Looplet::Shift {
                    delta: delta.clone(),
                    body: Box::new(body.truncate(&old.shifted(&neg), &new.shifted(&neg))),
                }
            }

            Looplet::Thunk { preamble, body } => Looplet::Thunk {
                preamble: preamble.clone(),
                body: Box::new(body.truncate(old, new)),
            },

            // BindExtent keeps binding whatever region it is eventually
            // examined in, so it survives truncation unchanged apart from
            // its body.
            Looplet::BindExtent { lo, hi, body } => {
                Looplet::BindExtent { lo: *lo, hi: *hi, body: Box::new(body.truncate(old, new)) }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Style;
    use finch_ir::{Names, Value};

    #[test]
    fn run_and_lookup_truncate_to_themselves() {
        let mut names = Names::new();
        let j = names.fresh("j");
        let old = Extent::literal(0, 10);
        let new = Extent::literal(0, 4);
        let run: Looplet<Expr> = Looplet::run(Expr::float(0.0));
        assert_eq!(run.truncate(&old, &new), run);
        let lk: Looplet<Expr> = Looplet::lookup(j, Expr::Var(j));
        assert_eq!(lk.truncate(&old, &new), lk);
    }

    #[test]
    fn spike_truncated_to_same_stop_stays_a_spike() {
        let old = Extent::literal(0, 10);
        let new = Extent::literal(3, 10);
        let spike: Looplet<Expr> = Looplet::spike(Expr::float(0.0), Expr::float(7.0));
        assert_eq!(spike.truncate(&old, &new).style(), Style::Spike);
    }

    #[test]
    fn spike_truncated_to_unknown_stop_becomes_a_switch() {
        let mut names = Names::new();
        let s = names.fresh("stride");
        let old = Extent::literal(0, 10);
        let new = Extent::new(Expr::int(0), Expr::Var(s));
        let spike: Looplet<Expr> = Looplet::spike(Expr::float(0.0), Expr::float(7.0));
        let t = spike.truncate(&old, &new);
        match &t {
            Looplet::Switch { cases } => {
                assert_eq!(cases.len(), 2);
                assert_eq!(cases[0].body.style(), Style::Spike);
                // Without its tail the spike is just its repeated body.
                assert_eq!(cases[1].body.style(), Style::Leaf);
                assert_eq!(cases[0].cond, Expr::eq(Expr::Var(s), Expr::int(10)));
                assert_eq!(cases[1].cond, Expr::bool(true));
            }
            other => panic!("expected switch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_recurses_into_switch_cases() {
        let mut names = Names::new();
        let s = names.fresh("stop");
        let old = Extent::literal(0, 9);
        let new = Extent::new(Expr::int(0), Expr::Var(s));
        let sw: Looplet<Expr> = Looplet::switch(vec![Case {
            cond: Expr::bool(true),
            body: Looplet::spike(Expr::float(0.0), Expr::float(1.0)),
        }]);
        let t = sw.truncate(&old, &new);
        if let Looplet::Switch { cases } = &t {
            assert_eq!(cases[0].body.style(), Style::Switch, "inner spike became a switch");
        } else {
            panic!("expected switch");
        }
    }

    #[test]
    fn shift_translates_regions_before_truncating_its_body() {
        let old = Extent::literal(5, 15);
        let new = Extent::literal(5, 12);
        let spike: Looplet<Expr> = Looplet::spike(Expr::float(0.0), Expr::float(1.0));
        let shifted = spike.shifted(Expr::int(5));
        let t = shifted.truncate(&old, &new);
        // In the body's frame the old region was 0..=10 and the new one 0..=7,
        // so the inner spike must have turned into a switch comparing 7 and 10.
        match t {
            Looplet::Shift { body, .. } => match *body {
                Looplet::Switch { cases } => {
                    assert_eq!(cases[0].cond, Expr::eq(Expr::int(7), Expr::int(10)));
                }
                other => panic!("expected inner switch, got {other:?}"),
            },
            other => panic!("expected shift, got {other:?}"),
        }
    }

    #[test]
    fn thunk_preamble_survives_truncation() {
        let old = Extent::literal(0, 9);
        let new = Extent::literal(0, 3);
        let l: Looplet<Expr> = Looplet::run(Expr::Lit(Value::Float(2.0)))
            .with_preamble(vec![finch_ir::Stmt::Comment("setup".into())]);
        match l.truncate(&old, &new) {
            Looplet::Thunk { preamble, .. } => assert_eq!(preamble.len(), 1),
            other => panic!("expected thunk, got {other:?}"),
        }
    }
}
