//! Compact textual rendering of looplet nests.
//!
//! The paper presents unfurled formats as nests like
//! `Pipeline(Phase(Stepper(Spike(...))), Phase(Run(0)))` (Figure 1a); this
//! module renders our nests the same way so examples and documentation can
//! show the structure a format exposes to the compiler.

use std::fmt;

use crate::looplet::{Looplet, Stepped};

impl<L: fmt::Debug> Looplet<L> {
    fn fmt_nest(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Looplet::Leaf(l) => write!(f, "{l:?}"),
            Looplet::Run { body } => {
                write!(f, "Run(")?;
                body.fmt_nest(f)?;
                write!(f, ")")
            }
            Looplet::Spike { body, tail } => {
                write!(f, "Spike(")?;
                body.fmt_nest(f)?;
                write!(f, ", tail=")?;
                tail.fmt_nest(f)?;
                write!(f, ")")
            }
            Looplet::Lookup { body, .. } => {
                write!(f, "Lookup(")?;
                body.fmt_nest(f)?;
                write!(f, ")")
            }
            Looplet::Pipeline { phases } => {
                write!(f, "Pipeline(")?;
                for (i, p) in phases.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "Phase(")?;
                    p.body.fmt_nest(f)?;
                    write!(f, ")")?;
                }
                write!(f, ")")
            }
            Looplet::Stepper(s) => fmt_stepped(f, "Stepper", s),
            Looplet::Jumper(s) => fmt_stepped(f, "Jumper", s),
            Looplet::Switch { cases } => {
                write!(f, "Switch(")?;
                for (i, c) in cases.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "Case(")?;
                    c.body.fmt_nest(f)?;
                    write!(f, ")")?;
                }
                write!(f, ")")
            }
            Looplet::Shift { body, .. } => {
                write!(f, "Shift(")?;
                body.fmt_nest(f)?;
                write!(f, ")")
            }
            Looplet::Thunk { body, .. } => {
                write!(f, "Thunk(")?;
                body.fmt_nest(f)?;
                write!(f, ")")
            }
            Looplet::BindExtent { body, .. } => {
                write!(f, "BindExtent(")?;
                body.fmt_nest(f)?;
                write!(f, ")")
            }
        }
    }
}

fn fmt_stepped<L: fmt::Debug>(
    f: &mut fmt::Formatter<'_>,
    name: &str,
    s: &Stepped<L>,
) -> fmt::Result {
    write!(f, "{name}(")?;
    s.body.fmt_nest(f)?;
    write!(f, ")")
}

impl<L: fmt::Debug> fmt::Display for Looplet<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_nest(f)
    }
}

#[cfg(test)]
mod tests {
    use crate::looplet::{Looplet, Phase, Stepped};
    use finch_ir::{Expr, Names};

    #[test]
    fn renders_the_paper_sparse_list_shape() {
        let mut names = Names::new();
        let p = names.fresh("p");
        let nest: Looplet<Expr> = Looplet::pipeline(vec![
            Phase {
                stride: Some(Expr::int(8)),
                body: Looplet::Stepper(Stepped {
                    seek: None,
                    stride: Expr::Var(p),
                    body: Box::new(Looplet::spike(Expr::float(0.0), Expr::Var(p))),
                    next: vec![],
                }),
            },
            Phase { stride: None, body: Looplet::run(Expr::float(0.0)) },
        ]);
        let text = format!("{nest}");
        assert!(text.starts_with("Pipeline(Phase(Stepper(Spike("));
        assert!(text.contains("Phase(Run("));
    }

    #[test]
    fn renders_switch_and_wrappers() {
        let nest: Looplet<Expr> = Looplet::switch(vec![crate::Case {
            cond: Expr::bool(true),
            body: Looplet::run(Expr::int(0)).shifted(Expr::int(1)),
        }])
        .with_preamble(vec![]);
        let text = format!("{nest}");
        assert!(text.contains("Thunk(Switch(Case(Shift(Run("));
    }
}
