//! # finch-looplets — the Looplet intermediate representation
//!
//! This crate implements the central contribution of *"Looplets: A Language
//! for Structured Coiteration"* (CGO 2023, §3): an IR of **hierarchical
//! descriptions of structured sequences**.  A looplet nest describes the
//! values of one dimension of an array — where the zero runs are, where the
//! dense regions are, how to step from one nonzero to the next — in a way a
//! compiler can merge with the nests of *other* arrays to produce an
//! efficient coiterating loop.
//!
//! The looplet kinds of the paper's Figure 2 are all here:
//!
//! | Looplet | Meaning |
//! |---|---|
//! | [`Looplet::Leaf`] | a terminal scalar value (or, in the compiler, an unresolved subfiber) |
//! | [`Looplet::Run`] | the same value repeated over the whole target region |
//! | [`Looplet::Spike`] | a repeated value followed by a single scalar at the end of the region |
//! | [`Looplet::Lookup`] | an arbitrary sequence computed from the index |
//! | [`Looplet::Pipeline`] | the concatenation of a few child looplets, each ending at a `stride` |
//! | [`Looplet::Stepper`] | an unbounded sequence of identical child looplets visited in order |
//! | [`Looplet::Jumper`] | like a stepper, but allowed to lead coiteration (galloping) |
//! | [`Looplet::Switch`] | a runtime choice between child looplets |
//! | [`Looplet::Shift`] | a wrapper shifting all declared extents of its body |
//!
//! Two implementation-level nodes used by Finch.jl are also provided, because
//! the unfurling code of the paper's Figure 3 needs them: [`Looplet::Thunk`]
//! (preamble statements such as `p = pos[i]` hoisted before a nest) and
//! [`Looplet::BindExtent`] (binds the bounds of the current target region to
//! IR variables, needed by the galloping protocol's `idx[p] == j` case).
//!
//! The crate also provides [`Style`] resolution (which looplet pass runs
//! first, paper §6.2) and region [`truncation`](Looplet::truncate) (paper
//! §6.1), both of which the `finch-core` lowering compiler is built on.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod display;
mod leaf;
mod looplet;
mod style;
mod truncate;

pub use leaf::Leaf;
pub use looplet::{Case, Looplet, Phase, Seek, Stepped};
pub use style::Style;
