//! A flat register bytecode compiled from the target IR.
//!
//! The tree-walking interpreter in [`crate::interp`] pays pointer-chasing and
//! enum-dispatch overhead for every IR node it revisits.  This module
//! compiles a lowered [`Stmt`] tree *once* into a flat instruction stream
//! with resolved jump offsets; the register VM in [`crate::vm`] then executes
//! it in a tight dispatch loop over unboxed typed registers.
//!
//! Design notes:
//!
//! * **Registers, not a stack.**  Every IR variable owns the register with
//!   its own [`Var`] index; expression temporaries are allocated above the
//!   variables with a LIFO discipline, so the compiled program knows the
//!   exact register-file size up front.
//! * **Resolved jumps.**  Structured control flow (`if`/`while`/`for`,
//!   short-circuit `&&`/`||`, `select`, `coalesce`) becomes conditional
//!   jumps whose absolute targets are patched in a single pass; there is no
//!   label table left at runtime.
//! * **Stats parity.**  The instruction stream reproduces the tree-walker's
//!   [`crate::interp::ExecStats`] exactly: a [`Instr::BumpStmt`] is emitted
//!   per source statement, loop heads count `loop_iters`, loads/stores are
//!   counted by the memory instructions, and the looplet `seek` lowers to
//!   the dedicated [`Instr::Seek`] instruction which counts one search plus
//!   one load per probe, exactly like the interpreter's binary search.
//!
//! Evaluation-order subtleties that the compiler preserves bit-for-bit:
//! `&&`/`||` only evaluate their right operand when the left is `true`
//! (resp. `false`) *or missing*; `select` and `if` treat a missing condition
//! as false; `coalesce` stops evaluating at the first non-missing argument;
//! `for` bounds are coerced to integers in evaluation order (`lo` before
//! `hi` is even evaluated); a `store`'s index is coerced before the stored
//! value is evaluated.

use std::fmt;

use crate::buffer::BufId;
use crate::expr::{BinOp, Expr, UnOp};
use crate::stmt::Stmt;
use crate::value::Value;
use crate::var::{Names, Var};

/// A register of the bytecode VM, identified by a dense index.
///
/// Registers `0..num_vars` belong to the IR variables (the register index
/// equals [`Var::index`]); higher registers are expression temporaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub(crate) u32);

impl Reg {
    /// The dense index of this register in the VM's register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Placeholder jump target used during compilation, patched before the
/// [`Program`] is returned.  [`Program::validate`] checks none survive.
const PENDING: u32 = u32::MAX;

/// One bytecode instruction.
///
/// Jump targets are absolute instruction indices.  Every instruction either
/// falls through to the next instruction or transfers control to its target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Count one executed statement and enforce the step budget.  Emitted
    /// once per source [`Stmt`], before the statement's own code.
    BumpStmt,
    /// `dst = consts[cidx]`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Index into the program's constant pool.
        cidx: u32,
    },
    /// `dst = src`.  Reading an unset register is an error (this is how an
    /// unbound variable read surfaces).
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = len(buf)` as an integer.
    BufLen {
        /// Destination register.
        dst: Reg,
        /// The buffer whose length is taken.
        buf: BufId,
    },
    /// `dst = buf[idx]`.  A missing index yields missing (the `permit`
    /// semantics); otherwise the index is coerced to an integer, bounds are
    /// checked, and one load is counted.
    Load {
        /// Destination register.
        dst: Reg,
        /// The buffer read from.
        buf: BufId,
        /// Register holding the element index.
        idx: Reg,
    },
    /// Coerce the register to an integer in place (the interpreter's
    /// `Value::as_int`): booleans widen, integral floats convert, anything
    /// else (including missing) is a type error.
    CoerceInt {
        /// The register coerced.
        reg: Reg,
    },
    /// `buf[idx] reduce= val` (plain store when `reduce` is `None`).  The
    /// index register must already hold an integer (the compiler emits
    /// [`Instr::CoerceInt`] first); bounds are checked and one store is
    /// counted.
    Store {
        /// The destination buffer.
        buf: BufId,
        /// Register holding the (already integer) element index.
        idx: Reg,
        /// Register holding the stored value.
        val: Reg,
        /// Reduction operator (`Some(Add)` means `+=`).
        reduce: Option<BinOp>,
    },
    /// `dst = op src`.
    Unary {
        /// The operator.
        op: UnOp,
        /// Destination register.
        dst: Reg,
        /// Operand register.
        src: Reg,
    },
    /// `dst = lhs op rhs`.  `&&`/`||` appearing here are the *non*
    /// short-circuit completion of the branchy lowering (both operands are
    /// already evaluated).
    Binary {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
    },
    /// Unconditional jump.
    Jump {
        /// Absolute target instruction index.
        target: u32,
    },
    /// Jump when the register is falsy.  A missing value jumps when
    /// `strict` is false (`if`/`select` semantics) and raises a type error
    /// when `strict` is true.
    JumpIfFalse {
        /// The register tested.
        src: Reg,
        /// Absolute target instruction index.
        target: u32,
        /// Whether a missing condition is a type error instead of false.
        strict: bool,
    },
    /// Jump when the register is truthy; a missing value falls through.
    /// Used by the short-circuit lowering of `||`.
    JumpIfTrue {
        /// The register tested.
        src: Reg,
        /// Absolute target instruction index.
        target: u32,
    },
    /// Jump when the register holds missing (short-circuit `&&`/`||`).
    JumpIfMissing {
        /// The register tested.
        src: Reg,
        /// Absolute target instruction index.
        target: u32,
    },
    /// Jump when the register holds a non-missing value (`coalesce`).
    JumpIfNotMissing {
        /// The register tested.
        src: Reg,
        /// Absolute target instruction index.
        target: u32,
    },
    /// `while` loop head: test the (strictly boolean-coercible) condition;
    /// when true count one loop iteration and fall through into the body,
    /// otherwise jump to `end`.
    WhileTest {
        /// Register holding the just-evaluated condition.
        cond: Reg,
        /// Absolute index of the first instruction after the loop.
        end: u32,
    },
    /// `for` loop head: when `counter <= hi` (both already integers) count
    /// one loop iteration, publish the counter into the loop variable's
    /// register, and fall through; otherwise jump to `end`.
    ForTest {
        /// Register holding the hidden loop counter.
        counter: Reg,
        /// Register holding the inclusive upper bound.
        hi: Reg,
        /// The loop variable's register, set to the counter each iteration.
        var: Reg,
        /// Absolute index of the first instruction after the loop.
        end: u32,
    },
    /// `for` loop back-edge: increment the counter and jump to `test`.
    ForStep {
        /// Register holding the hidden loop counter.
        counter: Reg,
        /// Absolute index of the loop's [`Instr::ForTest`].
        test: u32,
    },
    /// `buf.push(val)`: append one element at the end of a growable buffer
    /// (sparse output assembly).  Counts one store, like [`Instr::Store`].
    Append {
        /// The buffer appended to.
        buf: BufId,
        /// Register holding the appended value.
        val: Reg,
    },
    /// `pos.push(len(data))`: close one fiber of a sparse output level by
    /// recording the current length of its entry array.  Counts one store.
    FiberEnd {
        /// The `pos` (fiber boundary) buffer appended to.
        pos: BufId,
        /// The entry array whose current length is recorded.
        data: BufId,
    },
    /// The looplet `seek`: lower-bound binary search for `key` over
    /// `buf[lo..=hi]` (bounds and key already integers), writing the first
    /// position with `buf[p] >= key` (or `hi + 1`) into `dst`.  Counts one
    /// search plus one load per probe, exactly like the tree-walker.
    Seek {
        /// Destination register for the found position.
        dst: Reg,
        /// The sorted coordinate buffer searched.
        buf: BufId,
        /// Register holding the inclusive lower candidate position.
        lo: Reg,
        /// Register holding the inclusive upper candidate position.
        hi: Reg,
        /// Register holding the key searched for.
        key: Reg,
        /// Compare against `abs(buf[p])` (PackBits stores negated markers).
        on_abs: bool,
    },
    /// Superinstruction: `dst = lhs op consts[cidx]` — the peephole fusion
    /// of a [`Instr::Const`] feeding the right operand of a
    /// [`Instr::Binary`].  Semantics (promotion, missing propagation,
    /// errors) and [`crate::interp::ExecStats`] are exactly those of the
    /// unfused pair.
    BinaryImm {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// Constant-pool index of the right operand.
        cidx: u32,
    },
    /// Superinstruction: `dst = lhs op buf[idx]` — the peephole fusion of a
    /// [`Instr::Load`] feeding the right operand of a [`Instr::Binary`].
    /// The load half keeps its exact semantics (missing index yields a
    /// missing operand, bounds are checked, one load is counted) before the
    /// operator is applied.
    LoadBinary {
        /// The operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        lhs: Reg,
        /// The buffer the right operand is loaded from.
        buf: BufId,
        /// Register holding the element index of the load.
        idx: Reg,
    },
    /// Superinstruction: fused compare-and-branch — a comparison
    /// [`Instr::Binary`] feeding a [`Instr::JumpIfFalse`].  Jumps when the
    /// comparison is false; a missing comparison (a missing operand) jumps
    /// when `strict` is false and raises a type error when `strict` is
    /// true, exactly like the unfused pair.
    CmpBranch {
        /// The comparison operator (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
        /// Absolute target instruction index when the comparison fails.
        target: u32,
        /// Whether a missing comparison is a type error instead of false.
        strict: bool,
    },
    /// Superinstruction: fused compare-immediate-and-branch — a
    /// [`Instr::BinaryImm`] comparison feeding a [`Instr::JumpIfFalse`].
    CmpBranchImm {
        /// The comparison operator (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Left operand register.
        lhs: Reg,
        /// Constant-pool index of the right operand.
        cidx: u32,
        /// Absolute target instruction index when the comparison fails.
        target: u32,
        /// Whether a missing comparison is a type error instead of false.
        strict: bool,
    },
    /// Superinstruction: fused `while` head — a comparison
    /// [`Instr::Binary`] feeding a [`Instr::WhileTest`].  When the
    /// comparison holds, counts one loop iteration and falls through;
    /// otherwise jumps to `end`.  A missing comparison is a type error,
    /// like [`Instr::WhileTest`] on a missing condition.
    WhileCmp {
        /// The comparison operator (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
        /// Absolute index of the first instruction after the loop.
        end: u32,
    },
    /// Superinstruction: fused `while` head with an immediate right
    /// operand — a [`Instr::BinaryImm`] comparison feeding a
    /// [`Instr::WhileTest`].
    WhileCmpImm {
        /// The comparison operator (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Left operand register.
        lhs: Reg,
        /// Constant-pool index of the right operand.
        cidx: u32,
        /// Absolute index of the first instruction after the loop.
        end: u32,
    },

    // -----------------------------------------------------------------
    // Monomorphic typed instructions, produced by the register-type
    // inference pass in `crate::opt::typing`.  Each is the exact
    // semantics of its generic counterpart restricted to operands whose
    // runtime tag is statically proven, so the VM executes it directly
    // on the unboxed `ints`/`floats` lanes with no tag reads or writes.
    // They maintain `crate::interp::ExecStats` identically to their
    // generic forms, and every register written by one is listed in
    // [`Program::pretags`] so generic instructions can still read it.
    // -----------------------------------------------------------------
    /// No operation (a statically-discharged [`Instr::CoerceInt`], kept
    /// so jump targets stay stable — the typing pass rewrites 1:1).
    Nop,
    /// `ints[dst] = imm` — a typed [`Instr::Const`] with the integer
    /// inlined (no constant-pool read).
    ConstI {
        /// Destination register (statically `Int`).
        dst: Reg,
        /// The inlined integer literal.
        imm: i64,
    },
    /// `floats[dst] = imm` — a typed [`Instr::Const`] with the float
    /// inlined bit-exactly.
    ConstF {
        /// Destination register (statically `Float`).
        dst: Reg,
        /// The inlined float literal.
        imm: f64,
    },
    /// `ints[dst] = ints[src]` — a typed [`Instr::Mov`].
    IMov {
        /// Destination register (statically `Int`).
        dst: Reg,
        /// Source register (proven `Int` and assigned here).
        src: Reg,
    },
    /// `floats[dst] = floats[src]` — a typed [`Instr::Mov`].
    FMov {
        /// Destination register (statically `Float`).
        dst: Reg,
        /// Source register (proven `Float` and assigned here).
        src: Reg,
    },
    /// `ints[dst] = len(buf)` — a typed [`Instr::BufLen`].
    ILen {
        /// Destination register (statically `Int`).
        dst: Reg,
        /// The buffer whose length is taken.
        buf: BufId,
    },
    /// `ints[dst] = i64buf[ints[idx]]` — a typed [`Instr::Load`] from an
    /// I64 buffer.  Bounds are checked and one load is counted, exactly
    /// like the generic form on an integer index.
    LoadI64 {
        /// Destination register (statically `Int`).
        dst: Reg,
        /// The I64 buffer read from.
        buf: BufId,
        /// Register holding the element index (proven `Int`).
        idx: Reg,
    },
    /// `floats[dst] = f64buf[ints[idx]]` — a typed [`Instr::Load`] from
    /// an F64 buffer.
    LoadF64 {
        /// Destination register (statically `Float`).
        dst: Reg,
        /// The F64 buffer read from.
        buf: BufId,
        /// Register holding the element index (proven `Int`).
        idx: Reg,
    },
    /// `floats[dst] = u8buf[ints[idx]] as f64` — a typed [`Instr::Load`]
    /// from a U8 buffer (which loads as a float, like the generic form).
    LoadU8 {
        /// Destination register (statically `Float`).
        dst: Reg,
        /// The U8 buffer read from.
        buf: BufId,
        /// Register holding the element index (proven `Int`).
        idx: Reg,
    },
    /// `floats[dst] = floats[lhs] * f64buf[ints[idx]]` — a typed
    /// [`Instr::LoadBinary`] with a multiply (the inner-product hot
    /// path).  One load is counted.
    FMulLoad {
        /// Destination register (statically `Float`).
        dst: Reg,
        /// Left operand register (proven `Float`).
        lhs: Reg,
        /// The F64 buffer the right operand is loaded from.
        buf: BufId,
        /// Register holding the element index (proven `Int`).
        idx: Reg,
    },
    /// `f64buf[ints[idx]] reduce= floats[val]` — a typed [`Instr::Store`]
    /// into an F64 buffer under an arithmetic (infallible) reduction.
    StoreF64 {
        /// The F64 destination buffer.
        buf: BufId,
        /// Register holding the (already integer) element index.
        idx: Reg,
        /// Register holding the stored value (proven `Float`).
        val: Reg,
        /// Reduction operator (restricted to `Add`/`Sub`/`Mul`/`Div`/
        /// `Min`/`Max` or plain assignment).
        reduce: Option<BinOp>,
    },
    /// `u8buf[ints[idx]] reduce= clamp(round(x))` — a typed
    /// [`Instr::Store`] into a U8 buffer: the reduction (if any) is
    /// computed in f64 against the loaded element, then clamped to
    /// `0..=255` and rounded exactly like [`crate::buffer::Buffer::store`].
    StoreU8 {
        /// The U8 destination buffer.
        buf: BufId,
        /// Register holding the (already integer) element index.
        idx: Reg,
        /// Register holding the stored value (proven `Float`).
        val: Reg,
        /// Reduction operator (restricted to the arithmetic set).
        reduce: Option<BinOp>,
    },
    /// `i64buf.push(ints[val])` — a typed [`Instr::Append`] (sparse
    /// coordinate assembly).  Counts one store.
    IAppend {
        /// The I64 buffer appended to.
        buf: BufId,
        /// Register holding the appended value (proven `Int`).
        val: Reg,
    },
    /// `f64buf.push(floats[val])` — a typed [`Instr::Append`] (sparse
    /// value assembly).  Counts one store.
    FAppend {
        /// The F64 buffer appended to.
        buf: BufId,
        /// Register holding the appended value (proven `Float`).
        val: Reg,
    },
    /// `ints[dst] = ints[lhs] op ints[rhs]` for an infallible integer
    /// arithmetic operator (wrapping `Add`/`Sub`/`Mul`, `Min`, `Max`) —
    /// a typed [`Instr::Binary`].
    IArith {
        /// The operator (`Add`/`Sub`/`Mul`/`Min`/`Max`).
        op: BinOp,
        /// Destination register (statically `Int`).
        dst: Reg,
        /// Left operand register (proven `Int`).
        lhs: Reg,
        /// Right operand register (proven `Int`).
        rhs: Reg,
    },
    /// `floats[dst] = floats[lhs] op floats[rhs]` for a float arithmetic
    /// operator (`Add`/`Sub`/`Mul`/`Div`/`Min`/`Max`) — a typed
    /// [`Instr::Binary`].
    FArith {
        /// The operator (`Add`/`Sub`/`Mul`/`Div`/`Min`/`Max`).
        op: BinOp,
        /// Destination register (statically `Float`).
        dst: Reg,
        /// Left operand register (proven `Float`).
        lhs: Reg,
        /// Right operand register (proven `Float`).
        rhs: Reg,
    },
    /// `ints[dst] = ints[lhs] op imm` — a typed [`Instr::BinaryImm`]
    /// with the integer immediate inlined.
    IArithImm {
        /// The operator (`Add`/`Sub`/`Mul`/`Min`/`Max`).
        op: BinOp,
        /// Destination register (statically `Int`).
        dst: Reg,
        /// Left operand register (proven `Int`).
        lhs: Reg,
        /// The inlined integer immediate.
        imm: i64,
    },
    /// `floats[dst] = floats[lhs] op imm` — a typed [`Instr::BinaryImm`]
    /// with the float immediate inlined bit-exactly.
    FArithImm {
        /// The operator (`Add`/`Sub`/`Mul`/`Div`/`Min`/`Max`).
        op: BinOp,
        /// Destination register (statically `Float`).
        dst: Reg,
        /// Left operand register (proven `Float`).
        lhs: Reg,
        /// The inlined float immediate.
        imm: f64,
    },
    /// `floats[dst] = round(floats[src]).clamp(0, 255)` — a typed
    /// [`Instr::Unary`] for `round_u8` (the alpha-blend hot path).
    FRound {
        /// Destination register (statically `Float`).
        dst: Reg,
        /// Operand register (proven `Float`).
        src: Reg,
    },
    /// Typed [`Instr::CmpBranch`] on two integer registers: equality on
    /// the integers, ordering through f64 (exactly the generic int/int
    /// fast path).  The comparison cannot be missing, so there is no
    /// strictness flag.
    ICmpBranch {
        /// The comparison operator (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Left operand register (proven `Int`).
        lhs: Reg,
        /// Right operand register (proven `Int`).
        rhs: Reg,
        /// Absolute target instruction index when the comparison fails.
        target: u32,
    },
    /// Typed [`Instr::CmpBranchImm`] with an inlined integer immediate.
    ICmpBranchImm {
        /// The comparison operator (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Left operand register (proven `Int`).
        lhs: Reg,
        /// The inlined integer immediate.
        imm: i64,
        /// Absolute target instruction index when the comparison fails.
        target: u32,
    },
    /// Typed [`Instr::CmpBranch`] on two float registers.
    FCmpBranch {
        /// The comparison operator (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Left operand register (proven `Float`).
        lhs: Reg,
        /// Right operand register (proven `Float`).
        rhs: Reg,
        /// Absolute target instruction index when the comparison fails.
        target: u32,
    },
    /// Typed [`Instr::CmpBranchImm`] with an inlined float immediate.
    FCmpBranchImm {
        /// The comparison operator (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Left operand register (proven `Float`).
        lhs: Reg,
        /// The inlined float immediate.
        imm: f64,
        /// Absolute target instruction index when the comparison fails.
        target: u32,
    },
    /// Typed [`Instr::WhileCmp`] on two integer registers: when the
    /// comparison holds, count one loop iteration and fall through;
    /// otherwise jump to `end`.
    IWhileCmp {
        /// The comparison operator (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Left operand register (proven `Int`).
        lhs: Reg,
        /// Right operand register (proven `Int`).
        rhs: Reg,
        /// Absolute index of the first instruction after the loop.
        end: u32,
    },
    /// Typed [`Instr::WhileCmpImm`] with an inlined integer immediate.
    IWhileCmpImm {
        /// The comparison operator (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Left operand register (proven `Int`).
        lhs: Reg,
        /// The inlined integer immediate.
        imm: i64,
        /// Absolute index of the first instruction after the loop.
        end: u32,
    },
    /// Typed [`Instr::WhileCmp`] on two float registers.
    FWhileCmp {
        /// The comparison operator (`Eq`/`Ne`/`Lt`/`Le`/`Gt`/`Ge`).
        op: BinOp,
        /// Left operand register (proven `Float`).
        lhs: Reg,
        /// Right operand register (proven `Float`).
        rhs: Reg,
        /// Absolute index of the first instruction after the loop.
        end: u32,
    },
    /// Typed [`Instr::ForTest`]: the loop variable is statically `Int`,
    /// so publishing the counter writes only the int lane (no tag).
    IForTest {
        /// Register holding the hidden loop counter (proven `Int`).
        counter: Reg,
        /// Register holding the inclusive upper bound (proven `Int`).
        hi: Reg,
        /// The loop variable's register (statically `Int`).
        var: Reg,
        /// Absolute index of the first instruction after the loop.
        end: u32,
    },
    /// Typed [`Instr::Seek`] over an I64 coordinate buffer, writing the
    /// found position to the int lane only.  Counts one search plus one
    /// load per probe, exactly like the generic form.
    ISeek {
        /// Destination register (statically `Int`).
        dst: Reg,
        /// The sorted I64 coordinate buffer searched.
        buf: BufId,
        /// Register holding the inclusive lower candidate position.
        lo: Reg,
        /// Register holding the inclusive upper candidate position.
        hi: Reg,
        /// Register holding the key searched for.
        key: Reg,
        /// Compare against `abs(buf[p])` (PackBits stores negated markers).
        on_abs: bool,
    },

    // -----------------------------------------------------------------
    // Vectorized kernel ops, produced by the vectorize pass in
    // `crate::opt::vectorize`.  Each one sits immediately *before* a
    // typed counted loop (an [`Instr::IForTest`] head) and executes all
    // but the last of the loop's iterations over whole buffer slices —
    // unrolled, with no per-element dispatch — then advances the loop
    // counter so the untouched scalar loop runs exactly the final
    // iteration (which doubles as the remainder handler and restores
    // every temporary register bit-for-bit).  When any precondition
    // fails at runtime (rebound buffer kind, an out-of-range access
    // anywhere in the slice, aliasing between source and destination,
    // or a step budget that the bulk could overrun), the kernel op does
    // *nothing* and the scalar loop runs all iterations — the fallback
    // is the original code.  Each op bumps `ExecStats` by its
    // scalar-equivalent `cost` per bulk iteration, so work counters are
    // identical with and without vectorization.
    // -----------------------------------------------------------------
    /// Fill: `f64buf[base + v] = imm` for each bulk iteration `v` (the
    /// dense-output initialisation loop).
    VFillStoreF64 {
        /// The F64 destination buffer.
        buf: BufId,
        /// Per-iteration element index shape.
        base: VBase,
        /// The fill value, inlined bit-exactly.
        imm: f64,
        /// Register holding the loop counter (read, then set to the hi
        /// bound, leaving one iteration for the scalar loop).
        counter: Reg,
        /// Register holding the inclusive upper bound.
        hi: Reg,
        /// Scalar-equivalent work per bulk iteration.
        cost: VCost,
        /// Unroll width (4 or 8).
        lanes: u8,
    },
    /// Elementwise map: `f64dst[..] reduce= post(pre(a[..]) rhs)` for
    /// each bulk iteration (the axpy / elementwise-multiply / alpha-blend
    /// hot paths).  Evaluation order and operand orientation reproduce
    /// the scalar body bit-for-bit.
    VMapF64 {
        /// The F64 destination buffer (must not alias the sources).
        dst: BufId,
        /// Destination index shape.
        dst_base: VBase,
        /// Store reduction (`Some(Add)` is `+=`).
        reduce: Option<BinOp>,
        /// Apply `round_u8` clamping to the value before the store.
        round: bool,
        /// The first F64 source buffer.
        a: BufId,
        /// First source index shape.
        a_base: VBase,
        /// Pre-scale applied to the first loaded operand.
        a_pre: VScale,
        /// The second operand (absent, immediate, or a second load).
        rhs: VRhs,
        /// Register holding the loop counter.
        counter: Reg,
        /// Register holding the inclusive upper bound.
        hi: Reg,
        /// Scalar-equivalent work per bulk iteration.
        cost: VCost,
        /// Unroll width (4 or 8).
        lanes: u8,
    },
    /// Inner product: `f64acc[acc_idx] op= a[..] * b[..]` for each bulk
    /// iteration, folded strictly in order (FP reassociation would break
    /// bit-exactness with the scalar loop).  `a` and `b` may be the same
    /// buffer; neither may alias `acc`.
    VMulAddF64 {
        /// The F64 accumulator buffer.
        acc: BufId,
        /// The accumulator's constant element index (non-negative).
        acc_idx: i64,
        /// The first F64 source buffer.
        a: BufId,
        /// First source index shape.
        a_base: VBase,
        /// The second F64 source buffer.
        b: BufId,
        /// Second source index shape.
        b_base: VBase,
        /// The reduction operator combining into the accumulator.
        op: BinOp,
        /// Register holding the loop counter.
        counter: Reg,
        /// Register holding the inclusive upper bound.
        hi: Reg,
        /// Scalar-equivalent work per bulk iteration.
        cost: VCost,
        /// Unroll width (4 or 8).
        lanes: u8,
    },
    /// Reduction: `f64acc[acc_idx] op= pre(src[..])` for each bulk
    /// iteration, folded strictly in order.
    VReduceF64 {
        /// The F64 accumulator buffer.
        acc: BufId,
        /// The accumulator's constant element index (non-negative).
        acc_idx: i64,
        /// The F64 source buffer (must not alias `acc`).
        src: BufId,
        /// Source index shape.
        base: VBase,
        /// Pre-scale applied to the loaded operand.
        pre: VScale,
        /// The reduction operator (`Add`/`Max`/`Min`/...).
        op: BinOp,
        /// Register holding the loop counter.
        counter: Reg,
        /// Register holding the inclusive upper bound.
        hi: Reg,
        /// Scalar-equivalent work per bulk iteration.
        cost: VCost,
        /// Unroll width (4 or 8).
        lanes: u8,
    },
    /// Sparse-output assembly stream: `i64idx_out.push(v)` and
    /// `f64val_out.push(src[..v])` for each bulk iteration, optionally
    /// only where `src[..v] cmp guard_imm` holds (the threshold sieve).
    VAppendRangeF64 {
        /// The I64 coordinate output buffer.
        idx_out: BufId,
        /// The F64 value output buffer.
        val_out: BufId,
        /// The F64 source buffer.
        src: BufId,
        /// Source index shape.
        base: VBase,
        /// Optional filter: append only where `src[..] op imm`.
        guard: Option<(BinOp, f64)>,
        /// Register holding the loop counter.
        counter: Reg,
        /// Register holding the inclusive upper bound.
        hi: Reg,
        /// Scalar-equivalent work per bulk iteration (always incurred).
        cost: VCost,
        /// Additional scalar-equivalent work per *passing* iteration.
        pass_cost: VCost,
        /// Unroll width (4 or 8).
        lanes: u8,
    },
    /// Masked constant store into a U8 buffer: `u8dst[..v] = set` where
    /// `src[..v] cmp imm` holds (image binarization), with the stored
    /// value rounded and clamped to `0..=255` exactly like
    /// [`Instr::StoreU8`].
    VCmpSelectU8 {
        /// The U8 destination buffer.
        dst: BufId,
        /// Destination index shape.
        dst_base: VBase,
        /// The F64 source buffer tested.
        src: BufId,
        /// Source index shape.
        src_base: VBase,
        /// The comparison operator of the mask.
        cmp: BinOp,
        /// The comparison immediate.
        cmp_imm: f64,
        /// The value stored where the mask holds.
        set: f64,
        /// Register holding the loop counter.
        counter: Reg,
        /// Register holding the inclusive upper bound.
        hi: Reg,
        /// Scalar-equivalent work per bulk iteration (always incurred).
        cost: VCost,
        /// Additional scalar-equivalent work per *passing* iteration.
        pass_cost: VCost,
        /// Unroll width (4 or 8).
        lanes: u8,
    },
}

/// Per-iteration element index shape of a vectorized kernel op: either
/// the loop counter itself (a dense 1-D walk) or `ints[reg] * stride + v`
/// (a row-major inner loop whose row base is loop-invariant; the base
/// register must never be written inside the loop body).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VBase {
    /// The element index is the bulk iteration counter `v` itself.
    Var,
    /// The element index is `ints[reg] * stride + v` with `stride >= 1`.
    Scaled {
        /// Register holding the loop-invariant row coordinate.
        reg: Reg,
        /// The row stride (elements per row), at least 1.
        stride: i64,
    },
}

/// Pre-scale applied to a loaded operand of a vectorized kernel op,
/// preserving the scalar body's operand orientation bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VScale {
    /// The operand is used as loaded.
    None,
    /// `imm op x` — the [`Instr::FMulLoad`]-shaped `const * load`.
    Left {
        /// The operator.
        op: BinOp,
        /// The left immediate, inlined bit-exactly.
        imm: f64,
    },
    /// `x op imm` — the [`Instr::FArithImm`]-shaped `load * const`.
    Right {
        /// The operator.
        op: BinOp,
        /// The right immediate, inlined bit-exactly.
        imm: f64,
    },
}

/// The second operand of a [`Instr::VMapF64`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VRhs {
    /// No second operand: the map stores the (pre-scaled) first load.
    None,
    /// `x op imm` with an inlined immediate.
    Imm {
        /// The operator.
        op: BinOp,
        /// The immediate, inlined bit-exactly.
        imm: f64,
    },
    /// `x op pre(b[..])` — a second load, with its own index shape and
    /// pre-scale.
    Buf {
        /// The operator combining the two operands.
        op: BinOp,
        /// The second F64 source buffer.
        buf: BufId,
        /// Second source index shape.
        base: VBase,
        /// Pre-scale applied to the second loaded operand.
        pre: VScale,
    },
}

/// Scalar-equivalent [`crate::interp::ExecStats`] deltas one bulk
/// iteration of a vectorized kernel op accounts for — exactly what the
/// replaced scalar loop body would have counted, so work counters stay
/// bit-identical with vectorization on or off.  (`loop_iters` is always
/// one per bulk iteration and is not encoded.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VCost {
    /// Executed statements ([`Instr::BumpStmt`]s) per iteration.
    pub stmts: u8,
    /// Counted loads per iteration.
    pub loads: u8,
    /// Counted stores per iteration.
    pub stores: u8,
}

/// The statically-inferred lane of a register, recorded in
/// [`Program::pretags`] by the typing pass so the VM can pin the
/// register's runtime tag before dispatch (typed instructions then skip
/// the tag write entirely, and generic instructions reading the register
/// still observe a correct tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneTag {
    /// The register always holds an `i64` (int lane).
    Int,
    /// The register always holds an `f64` (float lane).
    Float,
    /// The register always holds a `bool` (bool lane).
    Bool,
}

/// Comparison operators eligible for the typed compare-branch forms.
pub(crate) fn is_cmp_op(op: BinOp) -> bool {
    matches!(op, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
}

/// Integer operators the typed [`Instr::IArith`] forms support: the
/// infallible subset (wrapping arithmetic; no `Div`, which can fault).
pub(crate) fn is_int_arith(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Min | BinOp::Max)
}

/// Float operators the typed [`Instr::FArith`] forms support (all total
/// on f64, including `Div`).
pub(crate) fn is_float_arith(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max)
}

/// Reductions the typed store forms support: plain assignment or an
/// arithmetic combine (the same set the VM's unboxed store fast path
/// accepts).
pub(crate) fn is_arith_reduce(reduce: Option<BinOp>) -> bool {
    match reduce {
        None => true,
        Some(op) => is_float_arith(op),
    }
}

impl Instr {
    /// Whether executing this instruction touches the VM's tag array at
    /// all — `true` for the monomorphic typed forms *and* for the
    /// tag-neutral control instructions (`BumpStmt`, `Jump`, `ForStep`,
    /// `FiberEnd`, `Nop`), `false` for every generic instruction that
    /// reads or writes a runtime tag.  The benchmark harness uses this to
    /// compute the executed-typed-instruction fraction.
    pub fn is_tag_free(&self) -> bool {
        match self {
            // Tag-neutral control flow: no register tags involved.
            Instr::BumpStmt
            | Instr::Jump { .. }
            | Instr::ForStep { .. }
            | Instr::FiberEnd { .. } => true,
            // The typed forms.
            Instr::Nop
            | Instr::ConstI { .. }
            | Instr::ConstF { .. }
            | Instr::IMov { .. }
            | Instr::FMov { .. }
            | Instr::ILen { .. }
            | Instr::LoadI64 { .. }
            | Instr::LoadF64 { .. }
            | Instr::LoadU8 { .. }
            | Instr::FMulLoad { .. }
            | Instr::StoreF64 { .. }
            | Instr::StoreU8 { .. }
            | Instr::IAppend { .. }
            | Instr::FAppend { .. }
            | Instr::IArith { .. }
            | Instr::FArith { .. }
            | Instr::IArithImm { .. }
            | Instr::FArithImm { .. }
            | Instr::FRound { .. }
            | Instr::ICmpBranch { .. }
            | Instr::ICmpBranchImm { .. }
            | Instr::FCmpBranch { .. }
            | Instr::FCmpBranchImm { .. }
            | Instr::IWhileCmp { .. }
            | Instr::IWhileCmpImm { .. }
            | Instr::FWhileCmp { .. }
            | Instr::IForTest { .. }
            | Instr::ISeek { .. } => true,
            // The vectorized kernel ops: whole typed loops, no tags.
            Instr::VFillStoreF64 { .. }
            | Instr::VMapF64 { .. }
            | Instr::VMulAddF64 { .. }
            | Instr::VReduceF64 { .. }
            | Instr::VAppendRangeF64 { .. }
            | Instr::VCmpSelectU8 { .. } => true,
            _ => false,
        }
    }

    /// A short stable mnemonic for this instruction's opcode, used by the
    /// benchmark harness's per-opcode execution histogram.
    pub fn opcode(&self) -> &'static str {
        match self {
            Instr::BumpStmt => "bump_stmt",
            Instr::Const { .. } => "const",
            Instr::Mov { .. } => "mov",
            Instr::BufLen { .. } => "buf_len",
            Instr::Load { .. } => "load",
            Instr::CoerceInt { .. } => "coerce_int",
            Instr::Store { .. } => "store",
            Instr::Unary { .. } => "unary",
            Instr::Binary { .. } => "binary",
            Instr::Jump { .. } => "jump",
            Instr::JumpIfFalse { .. } => "jump_if_false",
            Instr::JumpIfTrue { .. } => "jump_if_true",
            Instr::JumpIfMissing { .. } => "jump_if_missing",
            Instr::JumpIfNotMissing { .. } => "jump_if_not_missing",
            Instr::WhileTest { .. } => "while_test",
            Instr::ForTest { .. } => "for_test",
            Instr::ForStep { .. } => "for_step",
            Instr::Append { .. } => "append",
            Instr::FiberEnd { .. } => "fiber_end",
            Instr::Seek { .. } => "seek",
            Instr::BinaryImm { .. } => "binary_imm",
            Instr::LoadBinary { .. } => "load_binary",
            Instr::CmpBranch { .. } => "cmp_branch",
            Instr::CmpBranchImm { .. } => "cmp_branch_imm",
            Instr::WhileCmp { .. } => "while_cmp",
            Instr::WhileCmpImm { .. } => "while_cmp_imm",
            Instr::Nop => "nop",
            Instr::ConstI { .. } => "const_i",
            Instr::ConstF { .. } => "const_f",
            Instr::IMov { .. } => "i_mov",
            Instr::FMov { .. } => "f_mov",
            Instr::ILen { .. } => "i_len",
            Instr::LoadI64 { .. } => "load_i64",
            Instr::LoadF64 { .. } => "load_f64",
            Instr::LoadU8 { .. } => "load_u8",
            Instr::FMulLoad { .. } => "f_mul_load",
            Instr::StoreF64 { .. } => "store_f64",
            Instr::StoreU8 { .. } => "store_u8",
            Instr::IAppend { .. } => "i_append",
            Instr::FAppend { .. } => "f_append",
            Instr::IArith { .. } => "i_arith",
            Instr::FArith { .. } => "f_arith",
            Instr::IArithImm { .. } => "i_arith_imm",
            Instr::FArithImm { .. } => "f_arith_imm",
            Instr::FRound { .. } => "f_round",
            Instr::ICmpBranch { .. } => "i_cmp_branch",
            Instr::ICmpBranchImm { .. } => "i_cmp_branch_imm",
            Instr::FCmpBranch { .. } => "f_cmp_branch",
            Instr::FCmpBranchImm { .. } => "f_cmp_branch_imm",
            Instr::IWhileCmp { .. } => "i_while_cmp",
            Instr::IWhileCmpImm { .. } => "i_while_cmp_imm",
            Instr::FWhileCmp { .. } => "f_while_cmp",
            Instr::IForTest { .. } => "i_for_test",
            Instr::ISeek { .. } => "i_seek",
            Instr::VFillStoreF64 { .. } => "v_fill_store_f64",
            Instr::VMapF64 { .. } => "v_map_f64",
            Instr::VMulAddF64 { .. } => "v_mul_add_f64",
            Instr::VReduceF64 { .. } => "v_reduce_f64",
            Instr::VAppendRangeF64 { .. } => "v_append_range_f64",
            Instr::VCmpSelectU8 { .. } => "v_cmp_select_u8",
        }
    }
}

/// How a parallel shard may touch one buffer written inside a sharded
/// loop region, and how the per-shard copies are stitched back together.
///
/// Recorded by the shard-analysis pass (`crate::opt::shard`) and consumed
/// by the parallel runtime in [`crate::par`].  Every buffer the region
/// writes must carry exactly one role; buffers the region only reads are
/// shared across shards untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRole {
    /// Writes of iteration `i` stay inside the element range
    /// `[i*stride, (i+1)*stride)`, so each shard owns a contiguous slice
    /// and stitching copies each shard's own slice back in order.
    Partitioned {
        /// Elements owned per iteration.
        stride: i64,
    },
    /// An associative integer reduction (`+=` / `min=` / `max=`) into one
    /// fixed element: each shard folds its own partial from the operator's
    /// identity and stitching combines the partials in shard order.
    Reduction {
        /// The fixed accumulator element index.
        index: i64,
        /// The (associative, integer) combining operator.
        op: BinOp,
    },
    /// Append-only output array: each shard appends its own iterations'
    /// entries and stitching concatenates the per-shard suffixes in shard
    /// order, reproducing the serial append order exactly.
    Segment,
    /// A fiber-boundary (`pos`) array fed by [`Instr::FiberEnd`]: like
    /// [`ShardRole::Segment`], but each appended entry records the length
    /// of `data`, so stitching also offsets shard *k*'s entries by the
    /// total entries earlier shards appended to `data`.
    SegmentPos {
        /// The entry array whose length the `pos` entries record.
        data: BufId,
    },
    /// Iteration-local scratch at one fixed element, overwritten before it
    /// is read in every iteration: shards work on private copies and
    /// stitching adopts the last shard's copy (the value the serial run's
    /// final iteration would leave behind).
    Private,
}

/// One top-level counted loop proven shardable: its bytecode extent, the
/// loop registers the runtime repartitions, and the per-buffer stitch
/// roles.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRegion {
    /// First instruction of the region: the loop head, or the vectorized
    /// kernel op immediately before it when one was inserted.
    pub start: u32,
    /// The pc of the loop head ([`Instr::ForTest`] / [`Instr::IForTest`]).
    pub head: u32,
    /// One past the loop's back-edge ([`Instr::ForStep`]); the loop head's
    /// exit target.
    pub end: u32,
    /// The loop counter register; shards re-seed it with their range start.
    pub counter: Reg,
    /// The inclusive upper-bound register; shards re-seed it with their
    /// range end.
    pub hi: Reg,
    /// The loop variable register (written by the head on each test).
    pub var: Reg,
    /// Stitch role of every buffer the region writes.
    pub roles: Vec<(BufId, ShardRole)>,
}

/// The shard plan of a program: every top-level counted loop the shard
/// analysis proved safe to execute as contiguous per-thread row ranges,
/// in program order.  Empty when nothing shards — the runtime then runs
/// the program serially regardless of the requested thread count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardPlan {
    /// The shardable regions, sorted by `start`, non-overlapping.
    pub regions: Vec<ShardRegion>,
}

impl ShardPlan {
    /// Whether the plan contains no shardable region.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

/// A compiled bytecode program: the instruction stream, its constant pool,
/// and the register-file layout.
///
/// Obtain one with [`Program::compile`] and execute it with
/// [`crate::vm::Vm`].
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub(crate) code: Vec<Instr>,
    pub(crate) consts: Vec<Value>,
    pub(crate) var_names: Vec<String>,
    pub(crate) num_regs: usize,
    /// Registers whose runtime tag is statically known (set by the
    /// typing pass in `crate::opt::typing`; empty until it runs).  The
    /// VM pins these tags before dispatch so typed instructions never
    /// touch the tag array.
    pub(crate) pretags: Vec<(Reg, LaneTag)>,
    /// Shardable top-level loops (set by the shard-analysis pass in
    /// `crate::opt::shard`; empty until it runs).
    pub(crate) shard_plan: ShardPlan,
}

impl Program {
    /// Upper bound on the register file a valid program may demand.  Real
    /// kernels use a few dozen registers; a count beyond this is a
    /// corrupted or hostile encoding, and rejecting it keeps the VM's
    /// up-front register-file allocation bounded.
    pub const REG_LIMIT: usize = 1 << 24;

    /// Compile a lowered IR program into bytecode.
    ///
    /// `names` must be the same table the program's variables were created
    /// from (it sizes the variable portion of the register file and
    /// provides names for error messages).
    pub fn compile(stmts: &[Stmt], names: &Names) -> Program {
        let mut c = Compiler {
            code: Vec::new(),
            consts: Vec::new(),
            num_vars: names.len(),
            next_temp: 0,
            max_temps: 0,
        };
        for s in stmts {
            c.stmt(s);
        }
        debug_assert_eq!(c.next_temp, 0, "temp registers must be freed LIFO");
        Program {
            code: c.code,
            consts: c.consts,
            var_names: names.iter().map(|v| names.name(v).to_string()).collect(),
            num_regs: c.num_vars + c.max_temps as usize,
            pretags: Vec::new(),
            shard_plan: ShardPlan::default(),
        }
    }

    /// The instruction stream.
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// The constant pool.
    pub fn consts(&self) -> &[Value] {
        &self.consts
    }

    /// Total number of registers the VM must allocate.
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// Number of registers owned by IR variables (the low registers).
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Registers whose runtime tag was statically inferred by the typing
    /// pass (empty for programs the pass has not run over).
    pub fn pretags(&self) -> &[(Reg, LaneTag)] {
        &self.pretags
    }

    /// The shard plan recorded by the shard-analysis pass: the top-level
    /// counted loops proven safe for contiguous row-range parallel
    /// execution (empty for programs the pass has not run over, or when
    /// nothing shards).
    pub fn shard_plan(&self) -> &ShardPlan {
        &self.shard_plan
    }

    /// The printed name of a register: the variable's name for variable
    /// registers, a synthetic `tN` for temporaries.
    pub fn reg_name(&self, reg: Reg) -> String {
        match self.var_names.get(reg.index()) {
            Some(n) => n.clone(),
            None => format!("t{}", reg.index() - self.var_names.len()),
        }
    }

    /// Check structural invariants: every jump target is resolved and in
    /// range, every `for` back-edge lands on its loop head, every register
    /// index fits the register file (which itself fits
    /// [`Program::REG_LIMIT`]), and every constant index is in the pool.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_regs > Self::REG_LIMIT {
            return Err(format!(
                "register file of {} exceeds the limit of {}",
                self.num_regs,
                Self::REG_LIMIT
            ));
        }
        let len = self.code.len() as u32;
        let check_target = |pc: usize, t: u32| -> Result<(), String> {
            if t == PENDING {
                return Err(format!("unresolved jump at pc {pc}"));
            }
            if t > len {
                return Err(format!("jump at pc {pc} targets {t}, past the end ({len})"));
            }
            Ok(())
        };
        let check_reg = |pc: usize, r: Reg| -> Result<(), String> {
            if r.index() >= self.num_regs {
                return Err(format!(
                    "instruction at pc {pc} uses register {r} outside the file of {}",
                    self.num_regs
                ));
            }
            Ok(())
        };
        // Shared checks for the vectorized kernel ops.
        let check_vloop = |pc: usize, counter: Reg, hi: Reg, lanes: u8| -> Result<(), String> {
            check_reg(pc, counter)?;
            check_reg(pc, hi)?;
            if lanes != 4 && lanes != 8 {
                return Err(format!(
                    "vector op at pc {pc} has a misaligned lane count {lanes} (must be 4 or 8)"
                ));
            }
            Ok(())
        };
        let check_vbase = |pc: usize, base: VBase| -> Result<(), String> {
            match base {
                VBase::Var => Ok(()),
                VBase::Scaled { reg, stride } => {
                    check_reg(pc, reg)?;
                    if stride < 1 {
                        return Err(format!(
                            "vector op at pc {pc} has a bad slice range (stride {stride})"
                        ));
                    }
                    Ok(())
                }
            }
        };
        let check_vidx = |pc: usize, idx: i64| -> Result<(), String> {
            if idx < 0 {
                return Err(format!(
                    "vector op at pc {pc} has a bad slice range (accumulator index {idx})"
                ));
            }
            Ok(())
        };
        let check_vscale = |pc: usize, pre: VScale| -> Result<(), String> {
            match pre {
                VScale::None => Ok(()),
                VScale::Left { op, .. } | VScale::Right { op, .. } => {
                    if !is_float_arith(op) {
                        return Err(format!("unsupported vector pre-scale op {op:?} at pc {pc}"));
                    }
                    Ok(())
                }
            }
        };
        for (pc, instr) in self.code.iter().enumerate() {
            match *instr {
                Instr::BumpStmt => {}
                Instr::Const { dst, cidx } => {
                    check_reg(pc, dst)?;
                    if cidx as usize >= self.consts.len() {
                        return Err(format!("constant {cidx} at pc {pc} outside the pool"));
                    }
                }
                Instr::Mov { dst, src } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, src)?;
                }
                Instr::BufLen { dst, .. } => check_reg(pc, dst)?,
                Instr::Load { dst, idx, .. } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, idx)?;
                }
                Instr::CoerceInt { reg } => check_reg(pc, reg)?,
                Instr::Store { idx, val, .. } => {
                    check_reg(pc, idx)?;
                    check_reg(pc, val)?;
                }
                Instr::Unary { dst, src, .. } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, src)?;
                }
                Instr::Binary { dst, lhs, rhs, .. } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, lhs)?;
                    check_reg(pc, rhs)?;
                }
                Instr::Jump { target } => check_target(pc, target)?,
                Instr::JumpIfFalse { src, target, .. }
                | Instr::JumpIfTrue { src, target }
                | Instr::JumpIfMissing { src, target }
                | Instr::JumpIfNotMissing { src, target } => {
                    check_reg(pc, src)?;
                    check_target(pc, target)?;
                }
                Instr::WhileTest { cond, end } => {
                    check_reg(pc, cond)?;
                    check_target(pc, end)?;
                }
                Instr::ForTest { counter, hi, var, end } => {
                    check_reg(pc, counter)?;
                    check_reg(pc, hi)?;
                    check_reg(pc, var)?;
                    check_target(pc, end)?;
                }
                Instr::ForStep { counter, test } => {
                    check_reg(pc, counter)?;
                    check_target(pc, test)?;
                    // The back-edge must land on a loop head, never in the
                    // middle of nowhere (jump-target alignment).
                    match self.code.get(test as usize) {
                        Some(Instr::ForTest { .. }) | Some(Instr::IForTest { .. }) => {}
                        _ => {
                            return Err(format!(
                                "for back-edge at pc {pc} targets {test}, which is not a loop head"
                            ));
                        }
                    }
                }
                Instr::Append { val, .. } => check_reg(pc, val)?,
                Instr::FiberEnd { .. } => {}
                Instr::Seek { dst, lo, hi, key, .. } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, lo)?;
                    check_reg(pc, hi)?;
                    check_reg(pc, key)?;
                }
                Instr::BinaryImm { dst, lhs, cidx, .. } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, lhs)?;
                    if cidx as usize >= self.consts.len() {
                        return Err(format!("constant {cidx} at pc {pc} outside the pool"));
                    }
                }
                Instr::LoadBinary { dst, lhs, idx, .. } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, lhs)?;
                    check_reg(pc, idx)?;
                }
                Instr::CmpBranch { lhs, rhs, target, .. } => {
                    check_reg(pc, lhs)?;
                    check_reg(pc, rhs)?;
                    check_target(pc, target)?;
                }
                Instr::CmpBranchImm { lhs, cidx, target, .. } => {
                    check_reg(pc, lhs)?;
                    check_target(pc, target)?;
                    if cidx as usize >= self.consts.len() {
                        return Err(format!("constant {cidx} at pc {pc} outside the pool"));
                    }
                }
                Instr::WhileCmp { lhs, rhs, end, .. } => {
                    check_reg(pc, lhs)?;
                    check_reg(pc, rhs)?;
                    check_target(pc, end)?;
                }
                Instr::WhileCmpImm { lhs, cidx, end, .. } => {
                    check_reg(pc, lhs)?;
                    check_target(pc, end)?;
                    if cidx as usize >= self.consts.len() {
                        return Err(format!("constant {cidx} at pc {pc} outside the pool"));
                    }
                }
                Instr::Nop => {}
                Instr::ConstI { dst, .. } | Instr::ConstF { dst, .. } => check_reg(pc, dst)?,
                Instr::IMov { dst, src } | Instr::FMov { dst, src } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, src)?;
                }
                Instr::ILen { dst, .. } => check_reg(pc, dst)?,
                Instr::LoadI64 { dst, idx, .. }
                | Instr::LoadF64 { dst, idx, .. }
                | Instr::LoadU8 { dst, idx, .. } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, idx)?;
                }
                Instr::FMulLoad { dst, lhs, idx, .. } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, lhs)?;
                    check_reg(pc, idx)?;
                }
                Instr::StoreF64 { idx, val, reduce, .. }
                | Instr::StoreU8 { idx, val, reduce, .. } => {
                    check_reg(pc, idx)?;
                    check_reg(pc, val)?;
                    if !is_arith_reduce(reduce) {
                        return Err(format!("non-arithmetic typed store reduce at pc {pc}"));
                    }
                }
                Instr::IAppend { val, .. } | Instr::FAppend { val, .. } => check_reg(pc, val)?,
                Instr::IArith { op, dst, lhs, rhs } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, lhs)?;
                    check_reg(pc, rhs)?;
                    if !is_int_arith(op) {
                        return Err(format!("unsupported IArith op {op:?} at pc {pc}"));
                    }
                }
                Instr::FArith { op, dst, lhs, rhs } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, lhs)?;
                    check_reg(pc, rhs)?;
                    if !is_float_arith(op) {
                        return Err(format!("unsupported FArith op {op:?} at pc {pc}"));
                    }
                }
                Instr::IArithImm { op, dst, lhs, .. } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, lhs)?;
                    if !is_int_arith(op) {
                        return Err(format!("unsupported IArithImm op {op:?} at pc {pc}"));
                    }
                }
                Instr::FArithImm { op, dst, lhs, .. } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, lhs)?;
                    if !is_float_arith(op) {
                        return Err(format!("unsupported FArithImm op {op:?} at pc {pc}"));
                    }
                }
                Instr::FRound { dst, src } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, src)?;
                }
                Instr::ICmpBranch { op, lhs, rhs, target }
                | Instr::FCmpBranch { op, lhs, rhs, target } => {
                    check_reg(pc, lhs)?;
                    check_reg(pc, rhs)?;
                    check_target(pc, target)?;
                    if !is_cmp_op(op) {
                        return Err(format!("non-comparison typed branch op {op:?} at pc {pc}"));
                    }
                }
                Instr::ICmpBranchImm { op, lhs, target, .. }
                | Instr::FCmpBranchImm { op, lhs, target, .. } => {
                    check_reg(pc, lhs)?;
                    check_target(pc, target)?;
                    if !is_cmp_op(op) {
                        return Err(format!("non-comparison typed branch op {op:?} at pc {pc}"));
                    }
                }
                Instr::IWhileCmp { op, lhs, rhs, end } | Instr::FWhileCmp { op, lhs, rhs, end } => {
                    check_reg(pc, lhs)?;
                    check_reg(pc, rhs)?;
                    check_target(pc, end)?;
                    if !is_cmp_op(op) {
                        return Err(format!("non-comparison typed while op {op:?} at pc {pc}"));
                    }
                }
                Instr::IWhileCmpImm { op, lhs, end, .. } => {
                    check_reg(pc, lhs)?;
                    check_target(pc, end)?;
                    if !is_cmp_op(op) {
                        return Err(format!("non-comparison typed while op {op:?} at pc {pc}"));
                    }
                }
                Instr::IForTest { counter, hi, var, end } => {
                    check_reg(pc, counter)?;
                    check_reg(pc, hi)?;
                    check_reg(pc, var)?;
                    check_target(pc, end)?;
                }
                Instr::ISeek { dst, lo, hi, key, .. } => {
                    check_reg(pc, dst)?;
                    check_reg(pc, lo)?;
                    check_reg(pc, hi)?;
                    check_reg(pc, key)?;
                }
                Instr::VFillStoreF64 { base, counter, hi, cost, lanes, .. } => {
                    check_vloop(pc, counter, hi, lanes)?;
                    check_vbase(pc, base)?;
                    let _ = cost;
                }
                Instr::VMapF64 {
                    dst_base, reduce, a_base, a_pre, rhs, counter, hi, lanes, ..
                } => {
                    check_vloop(pc, counter, hi, lanes)?;
                    check_vbase(pc, dst_base)?;
                    check_vbase(pc, a_base)?;
                    check_vscale(pc, a_pre)?;
                    if !is_arith_reduce(reduce) {
                        return Err(format!("non-arithmetic vector store reduce at pc {pc}"));
                    }
                    match rhs {
                        VRhs::None => {}
                        VRhs::Imm { op, .. } => {
                            if !is_float_arith(op) {
                                return Err(format!("unsupported vector map op {op:?} at pc {pc}"));
                            }
                        }
                        VRhs::Buf { op, base, pre, .. } => {
                            if !is_float_arith(op) {
                                return Err(format!("unsupported vector map op {op:?} at pc {pc}"));
                            }
                            check_vbase(pc, base)?;
                            check_vscale(pc, pre)?;
                        }
                    }
                }
                Instr::VMulAddF64 { acc_idx, a_base, b_base, op, counter, hi, lanes, .. } => {
                    check_vloop(pc, counter, hi, lanes)?;
                    check_vidx(pc, acc_idx)?;
                    check_vbase(pc, a_base)?;
                    check_vbase(pc, b_base)?;
                    if !is_float_arith(op) {
                        return Err(format!("unsupported vector reduce op {op:?} at pc {pc}"));
                    }
                }
                Instr::VReduceF64 { acc_idx, base, pre, op, counter, hi, lanes, .. } => {
                    check_vloop(pc, counter, hi, lanes)?;
                    check_vidx(pc, acc_idx)?;
                    check_vbase(pc, base)?;
                    check_vscale(pc, pre)?;
                    if !is_float_arith(op) {
                        return Err(format!("unsupported vector reduce op {op:?} at pc {pc}"));
                    }
                }
                Instr::VAppendRangeF64 { base, guard, counter, hi, lanes, .. } => {
                    check_vloop(pc, counter, hi, lanes)?;
                    check_vbase(pc, base)?;
                    if let Some((op, _)) = guard {
                        if !is_cmp_op(op) {
                            return Err(format!(
                                "non-comparison vector guard op {op:?} at pc {pc}"
                            ));
                        }
                    }
                }
                Instr::VCmpSelectU8 { dst_base, src_base, cmp, counter, hi, lanes, .. } => {
                    check_vloop(pc, counter, hi, lanes)?;
                    check_vbase(pc, dst_base)?;
                    check_vbase(pc, src_base)?;
                    if !is_cmp_op(cmp) {
                        return Err(format!("non-comparison vector guard op {cmp:?} at pc {pc}"));
                    }
                }
            }
        }
        for &(r, _) in &self.pretags {
            if r.index() >= self.num_regs {
                return Err(format!(
                    "pretag for register {r} outside the file of {}",
                    self.num_regs
                ));
            }
        }
        let mut prev_end = 0u32;
        for region in &self.shard_plan.regions {
            let (start, head, end) = (region.start, region.head, region.end);
            if start < prev_end {
                return Err(format!(
                    "shard region at pc {start} overlaps the previous region (ends {prev_end})"
                ));
            }
            if !(start <= head && head < end && end <= len) {
                return Err(format!(
                    "shard region {start}..{end} (head {head}) out of order or past the end ({len})"
                ));
            }
            if head - start > 1 {
                return Err(format!(
                    "shard region at pc {start} starts more than one op before its head {head}"
                ));
            }
            match self.code[head as usize] {
                Instr::ForTest { counter, hi, var, end: exit }
                | Instr::IForTest { counter, hi, var, end: exit } => {
                    if exit != end {
                        return Err(format!(
                            "shard region head at pc {head} exits to {exit}, not the region end {end}"
                        ));
                    }
                    if counter != region.counter || hi != region.hi || var != region.var {
                        return Err(format!(
                            "shard region head at pc {head} uses different loop registers than the plan"
                        ));
                    }
                }
                _ => {
                    return Err(format!(
                        "shard region head at pc {head} is not a counted-loop head"
                    ));
                }
            }
            match self.code[end as usize - 1] {
                Instr::ForStep { test, .. } if test == head => {}
                _ => {
                    return Err(format!(
                        "shard region at pc {start} does not end with a back-edge to its head {head}"
                    ));
                }
            }
            check_reg(end as usize - 1, region.counter)?;
            check_reg(end as usize - 1, region.hi)?;
            check_reg(end as usize - 1, region.var)?;
            prev_end = end;
        }
        Ok(())
    }

    /// A one-instruction-per-line disassembly with full operand detail:
    /// registers render under their variable (or `tN` temporary) names,
    /// constant-pool operands show the resolved literal, buffers render as
    /// `bK`, and every jump shows its absolute target.
    pub fn disasm(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (pc, instr) in self.code.iter().enumerate() {
            let _ = writeln!(out, "{pc:4}: {}", self.disasm_instr(*instr));
        }
        out
    }

    fn disasm_instr(&self, instr: Instr) -> String {
        let r = |reg: Reg| self.reg_name(reg);
        let c = |cidx: u32| format!("{}", self.consts[cidx as usize]);
        let binop = |op: BinOp, a: String, b: String| {
            if op.is_call_style() {
                format!("{}({a}, {b})", op.symbol())
            } else {
                format!("{a} {} {b}", op.symbol())
            }
        };
        let reduce_op = |reduce: Option<BinOp>| match reduce {
            None => "=".to_string(),
            Some(op) => format!("{}=", op.symbol()),
        };
        let vbase = |base: VBase| match base {
            VBase::Var => "v".to_string(),
            VBase::Scaled { reg, stride } => format!("{}*{stride}+v", r(reg)),
        };
        let vscaled = |pre: VScale, x: String| match pre {
            VScale::None => x,
            VScale::Left { op, imm } => binop(op, format!("{}", Value::Float(imm)), x),
            VScale::Right { op, imm } => binop(op, x, format!("{}", Value::Float(imm))),
        };
        match instr {
            Instr::BumpStmt => "stmt".to_string(),
            Instr::Const { dst, cidx } => format!("{} = const {}", r(dst), c(cidx)),
            Instr::Mov { dst, src } => format!("{} = {}", r(dst), r(src)),
            Instr::BufLen { dst, buf } => format!("{} = len(b{})", r(dst), buf.index()),
            Instr::Load { dst, buf, idx } => {
                format!("{} = b{}[{}]", r(dst), buf.index(), r(idx))
            }
            Instr::CoerceInt { reg } => format!("coerce_int {}", r(reg)),
            Instr::Store { buf, idx, val, reduce } => {
                format!("b{}[{}] {} {}", buf.index(), r(idx), reduce_op(reduce), r(val))
            }
            Instr::Unary { op, dst, src } => {
                format!("{} = {}({})", r(dst), op.symbol(), r(src))
            }
            Instr::Binary { op, dst, lhs, rhs } => {
                format!("{} = {}", r(dst), binop(op, r(lhs), r(rhs)))
            }
            Instr::Jump { target } => format!("jump -> {target}"),
            Instr::JumpIfFalse { src, target, strict } => {
                let strictness = if strict { " (strict)" } else { "" };
                format!("if_false {} -> {target}{strictness}", r(src))
            }
            Instr::JumpIfTrue { src, target } => format!("if_true {} -> {target}", r(src)),
            Instr::JumpIfMissing { src, target } => {
                format!("if_missing {} -> {target}", r(src))
            }
            Instr::JumpIfNotMissing { src, target } => {
                format!("if_not_missing {} -> {target}", r(src))
            }
            Instr::WhileTest { cond, end } => format!("while {} else -> {end}", r(cond)),
            Instr::ForTest { counter, hi, var, end } => {
                format!("for {} = {} while <= {} else -> {end}", r(var), r(counter), r(hi))
            }
            Instr::ForStep { counter, test } => format!("step {} -> {test}", r(counter)),
            Instr::Append { buf, val } => format!("b{}.push({})", buf.index(), r(val)),
            Instr::FiberEnd { pos, data } => {
                format!("b{}.push(len(b{}))", pos.index(), data.index())
            }
            Instr::Seek { dst, buf, lo, hi, key, on_abs } => {
                let f = if on_abs { "seek_abs" } else { "seek" };
                format!("{} = {f}(b{}, {}, {}, {})", r(dst), buf.index(), r(lo), r(hi), r(key))
            }
            Instr::BinaryImm { op, dst, lhs, cidx } => {
                format!("{} = {}", r(dst), binop(op, r(lhs), format!("const {}", c(cidx))))
            }
            Instr::LoadBinary { op, dst, lhs, buf, idx } => {
                let load = format!("b{}[{}]", buf.index(), r(idx));
                format!("{} = {}", r(dst), binop(op, r(lhs), load))
            }
            Instr::CmpBranch { op, lhs, rhs, target, strict } => {
                let strictness = if strict { " (strict)" } else { "" };
                format!("if_false {} -> {target}{strictness}", binop(op, r(lhs), r(rhs)))
            }
            Instr::CmpBranchImm { op, lhs, cidx, target, strict } => {
                let strictness = if strict { " (strict)" } else { "" };
                let cmp = binop(op, r(lhs), format!("const {}", c(cidx)));
                format!("if_false {cmp} -> {target}{strictness}")
            }
            Instr::WhileCmp { op, lhs, rhs, end } => {
                format!("while {} else -> {end}", binop(op, r(lhs), r(rhs)))
            }
            Instr::WhileCmpImm { op, lhs, cidx, end } => {
                let cmp = binop(op, r(lhs), format!("const {}", c(cidx)));
                format!("while {cmp} else -> {end}")
            }
            Instr::Nop => "nop".to_string(),
            Instr::ConstI { dst, imm } => format!("{} = const.i {imm}", r(dst)),
            Instr::ConstF { dst, imm } => {
                format!("{} = const.f {}", r(dst), Value::Float(imm))
            }
            Instr::IMov { dst, src } => format!("{} = {} (i64)", r(dst), r(src)),
            Instr::FMov { dst, src } => format!("{} = {} (f64)", r(dst), r(src)),
            Instr::ILen { dst, buf } => format!("{} = len.i(b{})", r(dst), buf.index()),
            Instr::LoadI64 { dst, buf, idx } => {
                format!("{} = b{}[{}] (i64)", r(dst), buf.index(), r(idx))
            }
            Instr::LoadF64 { dst, buf, idx } => {
                format!("{} = b{}[{}] (f64)", r(dst), buf.index(), r(idx))
            }
            Instr::LoadU8 { dst, buf, idx } => {
                format!("{} = b{}[{}] (u8)", r(dst), buf.index(), r(idx))
            }
            Instr::FMulLoad { dst, lhs, buf, idx } => {
                format!("{} = {} * b{}[{}] (f64)", r(dst), r(lhs), buf.index(), r(idx))
            }
            Instr::StoreF64 { buf, idx, val, reduce } => {
                format!("b{}[{}] {} {} (f64)", buf.index(), r(idx), reduce_op(reduce), r(val))
            }
            Instr::StoreU8 { buf, idx, val, reduce } => {
                format!("b{}[{}] {} {} (u8)", buf.index(), r(idx), reduce_op(reduce), r(val))
            }
            Instr::IAppend { buf, val } => format!("b{}.push({}) (i64)", buf.index(), r(val)),
            Instr::FAppend { buf, val } => format!("b{}.push({}) (f64)", buf.index(), r(val)),
            Instr::IArith { op, dst, lhs, rhs } => {
                format!("{} = {} (i64)", r(dst), binop(op, r(lhs), r(rhs)))
            }
            Instr::FArith { op, dst, lhs, rhs } => {
                format!("{} = {} (f64)", r(dst), binop(op, r(lhs), r(rhs)))
            }
            Instr::IArithImm { op, dst, lhs, imm } => {
                format!("{} = {} (i64)", r(dst), binop(op, r(lhs), format!("{imm}")))
            }
            Instr::FArithImm { op, dst, lhs, imm } => {
                format!(
                    "{} = {} (f64)",
                    r(dst),
                    binop(op, r(lhs), format!("{}", Value::Float(imm)))
                )
            }
            Instr::FRound { dst, src } => format!("{} = round_u8({}) (f64)", r(dst), r(src)),
            Instr::ICmpBranch { op, lhs, rhs, target } => {
                format!("if_false {} (i64) -> {target}", binop(op, r(lhs), r(rhs)))
            }
            Instr::ICmpBranchImm { op, lhs, imm, target } => {
                format!("if_false {} (i64) -> {target}", binop(op, r(lhs), format!("{imm}")))
            }
            Instr::FCmpBranch { op, lhs, rhs, target } => {
                format!("if_false {} (f64) -> {target}", binop(op, r(lhs), r(rhs)))
            }
            Instr::FCmpBranchImm { op, lhs, imm, target } => {
                let cmp = binop(op, r(lhs), format!("{}", Value::Float(imm)));
                format!("if_false {cmp} (f64) -> {target}")
            }
            Instr::IWhileCmp { op, lhs, rhs, end } => {
                format!("while {} (i64) else -> {end}", binop(op, r(lhs), r(rhs)))
            }
            Instr::IWhileCmpImm { op, lhs, imm, end } => {
                format!("while {} (i64) else -> {end}", binop(op, r(lhs), format!("{imm}")))
            }
            Instr::FWhileCmp { op, lhs, rhs, end } => {
                format!("while {} (f64) else -> {end}", binop(op, r(lhs), r(rhs)))
            }
            Instr::IForTest { counter, hi, var, end } => {
                format!("for {} = {} while <= {} (i64) else -> {end}", r(var), r(counter), r(hi))
            }
            Instr::ISeek { dst, buf, lo, hi, key, on_abs } => {
                let f = if on_abs { "seek_abs.i" } else { "seek.i" };
                format!("{} = {f}(b{}, {}, {}, {})", r(dst), buf.index(), r(lo), r(hi), r(key))
            }
            Instr::VFillStoreF64 { buf, base, imm, counter, hi, lanes, .. } => {
                format!(
                    "vfill.f64 b{}[{}] = {} for v in [{}, {}) (x{lanes})",
                    buf.index(),
                    vbase(base),
                    Value::Float(imm),
                    r(counter),
                    r(hi)
                )
            }
            Instr::VMapF64 {
                dst,
                dst_base,
                reduce,
                round,
                a,
                a_base,
                a_pre,
                rhs,
                counter,
                hi,
                lanes,
                ..
            } => {
                let x = vscaled(a_pre, format!("b{}[{}]", a.index(), vbase(a_base)));
                let val = match rhs {
                    VRhs::None => x,
                    VRhs::Imm { op, imm } => binop(op, x, format!("{}", Value::Float(imm))),
                    VRhs::Buf { op, buf, base, pre } => {
                        let y = vscaled(pre, format!("b{}[{}]", buf.index(), vbase(base)));
                        binop(op, x, y)
                    }
                };
                let val = if round { format!("round_u8({val})") } else { val };
                format!(
                    "vmap.f64 b{}[{}] {} {val} for v in [{}, {}) (x{lanes})",
                    dst.index(),
                    vbase(dst_base),
                    reduce_op(reduce),
                    r(counter),
                    r(hi)
                )
            }
            Instr::VMulAddF64 {
                acc,
                acc_idx,
                a,
                a_base,
                b,
                b_base,
                op,
                counter,
                hi,
                lanes,
                ..
            } => {
                let x = format!("b{}[{}]", a.index(), vbase(a_base));
                let y = format!("b{}[{}]", b.index(), vbase(b_base));
                format!(
                    "vmuladd.f64 b{}[{acc_idx}] {} {} for v in [{}, {}) (x{lanes})",
                    acc.index(),
                    reduce_op(Some(op)),
                    binop(BinOp::Mul, x, y),
                    r(counter),
                    r(hi)
                )
            }
            Instr::VReduceF64 { acc, acc_idx, src, base, pre, op, counter, hi, lanes, .. } => {
                let x = vscaled(pre, format!("b{}[{}]", src.index(), vbase(base)));
                format!(
                    "vreduce.f64 b{}[{acc_idx}] {} {x} for v in [{}, {}) (x{lanes})",
                    acc.index(),
                    reduce_op(Some(op)),
                    r(counter),
                    r(hi)
                )
            }
            Instr::VAppendRangeF64 {
                idx_out,
                val_out,
                src,
                base,
                guard,
                counter,
                hi,
                lanes,
                ..
            } => {
                let load = format!("b{}[{}]", src.index(), vbase(base));
                let filter = match guard {
                    None => String::new(),
                    Some((op, imm)) => {
                        format!(
                            " where {}",
                            binop(op, load.clone(), format!("{}", Value::Float(imm)))
                        )
                    }
                };
                format!(
                    "vappend.f64 b{}.push(v), b{}.push({load}){filter} for v in [{}, {}) (x{lanes})",
                    idx_out.index(),
                    val_out.index(),
                    r(counter),
                    r(hi)
                )
            }
            Instr::VCmpSelectU8 {
                dst,
                dst_base,
                src,
                src_base,
                cmp,
                cmp_imm,
                set,
                counter,
                hi,
                lanes,
                ..
            } => {
                let test = binop(
                    cmp,
                    format!("b{}[{}]", src.index(), vbase(src_base)),
                    format!("{}", Value::Float(cmp_imm)),
                );
                format!(
                    "vselect.u8 b{}[{}] = {} where {test} for v in [{}, {}) (x{lanes})",
                    dst.index(),
                    vbase(dst_base),
                    Value::Float(set),
                    r(counter),
                    r(hi)
                )
            }
        }
    }
}

/// The Stmt/Expr → bytecode compiler.
struct Compiler {
    code: Vec<Instr>,
    consts: Vec<Value>,
    num_vars: usize,
    next_temp: u32,
    max_temps: u32,
}

impl Compiler {
    fn emit(&mut self, instr: Instr) -> usize {
        self.code.push(instr);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Resolve the pending jump target of the instruction at `at`.
    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jump { target: t }
            | Instr::JumpIfFalse { target: t, .. }
            | Instr::JumpIfTrue { target: t, .. }
            | Instr::JumpIfMissing { target: t, .. }
            | Instr::JumpIfNotMissing { target: t, .. } => *t = target,
            Instr::WhileTest { end, .. } | Instr::ForTest { end, .. } => *end = target,
            other => unreachable!("patching non-jump instruction {other:?}"),
        }
    }

    fn var_reg(&self, var: Var) -> Reg {
        Reg(var.index() as u32)
    }

    fn alloc(&mut self) -> Reg {
        let r = Reg((self.num_vars as u32) + self.next_temp);
        self.next_temp += 1;
        self.max_temps = self.max_temps.max(self.next_temp);
        r
    }

    fn free(&mut self, n: u32) {
        debug_assert!(self.next_temp >= n);
        self.next_temp -= n;
    }

    fn const_idx(&mut self, v: Value) -> u32 {
        // Dedupe bit-exactly: `Value`'s derived `PartialEq` conflates -0.0
        // with 0.0 (and never matches NaN), but the pool must reproduce the
        // literal the tree-walker evaluates, bit for bit.
        let same = |a: &Value, b: &Value| match (a, b) {
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            _ => a == b,
        };
        match self.consts.iter().position(|c| same(c, &v)) {
            Some(k) => k as u32,
            None => {
                self.consts.push(v);
                (self.consts.len() - 1) as u32
            }
        }
    }

    fn emit_const(&mut self, dst: Reg, v: Value) {
        let cidx = self.const_idx(v);
        self.emit(Instr::Const { dst, cidx });
    }

    fn stmt(&mut self, s: &Stmt) {
        self.emit(Instr::BumpStmt);
        match s {
            Stmt::Comment(_) => {}
            Stmt::Let { var, init } | Stmt::Assign { var, value: init } => {
                let dst = self.var_reg(*var);
                if init.mentions(*var) {
                    // A self-referential initialiser (e.g. `p = p + 1` with a
                    // multi-write expression) must not clobber the variable
                    // before the expression finishes reading it.
                    let t = self.alloc();
                    self.expr(init, t);
                    self.emit(Instr::Mov { dst, src: t });
                    self.free(1);
                } else {
                    self.expr(init, dst);
                }
            }
            Stmt::Store { buf, index, value, reduce } => {
                let ti = self.alloc();
                self.expr(index, ti);
                // The tree-walker coerces the index before evaluating the
                // stored value; keep that order for error parity.
                self.emit(Instr::CoerceInt { reg: ti });
                let tv = self.alloc();
                self.expr(value, tv);
                self.emit(Instr::Store { buf: *buf, idx: ti, val: tv, reduce: *reduce });
                self.free(2);
            }
            Stmt::If { cond, then_branch, else_branch } => {
                let tc = self.alloc();
                self.expr(cond, tc);
                let jf = self.emit(Instr::JumpIfFalse { src: tc, target: PENDING, strict: false });
                self.free(1);
                for s in then_branch {
                    self.stmt(s);
                }
                if else_branch.is_empty() {
                    let here = self.here();
                    self.patch(jf, here);
                } else {
                    let jend = self.emit(Instr::Jump { target: PENDING });
                    let here = self.here();
                    self.patch(jf, here);
                    for s in else_branch {
                        self.stmt(s);
                    }
                    let here = self.here();
                    self.patch(jend, here);
                }
            }
            Stmt::While { cond, body } => {
                let test = self.here();
                let tc = self.alloc();
                self.expr(cond, tc);
                let wt = self.emit(Instr::WhileTest { cond: tc, end: PENDING });
                self.free(1);
                for s in body {
                    self.stmt(s);
                }
                self.emit(Instr::Jump { target: test });
                let here = self.here();
                self.patch(wt, here);
            }
            Stmt::For { var, lo, hi, body } => {
                // A hidden counter register drives the loop so that body
                // assignments to the loop variable cannot derail iteration,
                // matching the tree-walker's private `i`.
                let counter = self.alloc();
                self.expr(lo, counter);
                self.emit(Instr::CoerceInt { reg: counter });
                let thi = self.alloc();
                self.expr(hi, thi);
                self.emit(Instr::CoerceInt { reg: thi });
                let test = self.here();
                let ft = self.emit(Instr::ForTest {
                    counter,
                    hi: thi,
                    var: self.var_reg(*var),
                    end: PENDING,
                });
                for s in body {
                    self.stmt(s);
                }
                self.emit(Instr::ForStep { counter, test });
                let here = self.here();
                self.patch(ft, here);
                self.free(2);
            }
            Stmt::Append { buf, value } => {
                let tv = self.alloc();
                self.expr(value, tv);
                self.emit(Instr::Append { buf: *buf, val: tv });
                self.free(1);
            }
            Stmt::FiberEnd { pos, data } => {
                self.emit(Instr::FiberEnd { pos: *pos, data: *data });
            }
            Stmt::Block(body) => {
                for s in body {
                    self.stmt(s);
                }
            }
        }
    }

    /// Compile an expression, leaving its value in `dst`.
    ///
    /// Operand sub-expressions always evaluate into fresh temporaries, so
    /// `dst` is only ever written by this node itself (`select`, `coalesce`
    /// and the short-circuit operators write it once per control-flow path).
    fn expr(&mut self, e: &Expr, dst: Reg) {
        match e {
            Expr::Lit(v) => self.emit_const(dst, *v),
            Expr::Var(v) => {
                let src = self.var_reg(*v);
                self.emit(Instr::Mov { dst, src });
            }
            Expr::BufLen(b) => {
                self.emit(Instr::BufLen { dst, buf: *b });
            }
            Expr::Load { buf, index } => {
                let t = self.alloc();
                self.expr(index, t);
                self.emit(Instr::Load { dst, buf: *buf, idx: t });
                self.free(1);
            }
            Expr::Unary { op, arg } => {
                let t = self.alloc();
                self.expr(arg, t);
                self.emit(Instr::Unary { op: *op, dst, src: t });
                self.free(1);
            }
            Expr::Binary { op: BinOp::And, lhs, rhs } => {
                // a && b: a non-missing false short-circuits to false; a
                // missing still evaluates b (missing && b == missing).
                let ta = self.alloc();
                self.expr(lhs, ta);
                let jm = self.emit(Instr::JumpIfMissing { src: ta, target: PENDING });
                let jf = self.emit(Instr::JumpIfFalse { src: ta, target: PENDING, strict: false });
                let rhs_at = self.here();
                self.patch(jm, rhs_at);
                let tb = self.alloc();
                self.expr(rhs, tb);
                self.emit(Instr::Binary { op: BinOp::And, dst, lhs: ta, rhs: tb });
                self.free(1);
                let jend = self.emit(Instr::Jump { target: PENDING });
                let false_at = self.here();
                self.patch(jf, false_at);
                self.emit_const(dst, Value::Bool(false));
                let end = self.here();
                self.patch(jend, end);
                self.free(1);
            }
            Expr::Binary { op: BinOp::Or, lhs, rhs } => {
                // a || b: a non-missing true short-circuits to true; a
                // missing still evaluates b (missing || b == missing).
                let ta = self.alloc();
                self.expr(lhs, ta);
                let jm = self.emit(Instr::JumpIfMissing { src: ta, target: PENDING });
                let jt = self.emit(Instr::JumpIfTrue { src: ta, target: PENDING });
                let rhs_at = self.here();
                self.patch(jm, rhs_at);
                let tb = self.alloc();
                self.expr(rhs, tb);
                self.emit(Instr::Binary { op: BinOp::Or, dst, lhs: ta, rhs: tb });
                self.free(1);
                let jend = self.emit(Instr::Jump { target: PENDING });
                let true_at = self.here();
                self.patch(jt, true_at);
                self.emit_const(dst, Value::Bool(true));
                let end = self.here();
                self.patch(jend, end);
                self.free(1);
            }
            Expr::Binary { op, lhs, rhs } => {
                let ta = self.alloc();
                self.expr(lhs, ta);
                let tb = self.alloc();
                self.expr(rhs, tb);
                self.emit(Instr::Binary { op: *op, dst, lhs: ta, rhs: tb });
                self.free(2);
            }
            Expr::Select { cond, then, otherwise } => {
                let tc = self.alloc();
                self.expr(cond, tc);
                let jf = self.emit(Instr::JumpIfFalse { src: tc, target: PENDING, strict: false });
                self.free(1);
                self.expr(then, dst);
                let jend = self.emit(Instr::Jump { target: PENDING });
                let else_at = self.here();
                self.patch(jf, else_at);
                self.expr(otherwise, dst);
                let end = self.here();
                self.patch(jend, end);
            }
            Expr::Coalesce(args) => {
                if args.is_empty() {
                    self.emit_const(dst, Value::Missing);
                    return;
                }
                let mut exits = Vec::new();
                for (k, a) in args.iter().enumerate() {
                    self.expr(a, dst);
                    if k + 1 < args.len() {
                        exits
                            .push(self.emit(Instr::JumpIfNotMissing { src: dst, target: PENDING }));
                    }
                }
                let end = self.here();
                for j in exits {
                    self.patch(j, end);
                }
            }
            Expr::Search { buf, lo, hi, key, on_abs } => {
                let tlo = self.alloc();
                self.expr(lo, tlo);
                self.emit(Instr::CoerceInt { reg: tlo });
                let thi = self.alloc();
                self.expr(hi, thi);
                self.emit(Instr::CoerceInt { reg: thi });
                let tkey = self.alloc();
                self.expr(key, tkey);
                self.emit(Instr::CoerceInt { reg: tkey });
                self.emit(Instr::Seek {
                    dst,
                    buf: *buf,
                    lo: tlo,
                    hi: thi,
                    key: tkey,
                    on_abs: *on_abs,
                });
                self.free(3);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, BufferSet};

    fn compile(stmts: &[Stmt], names: &Names) -> Program {
        let p = Program::compile(stmts, names);
        p.validate().expect("compiled program validates");
        p
    }

    /// Nested `for` inside `if` inside `while`: every jump offset must be
    /// resolved, in range, and land where the structure demands.
    #[test]
    fn jump_resolution_on_nested_if_while_for() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let p = names.fresh("p");
        let i = names.fresh("i");
        let prog = vec![
            Stmt::Let { var: p, init: Expr::int(0) },
            Stmt::While {
                cond: Expr::lt(Expr::Var(p), Expr::int(3)),
                body: vec![
                    Stmt::If {
                        cond: Expr::eq(Expr::Var(p), Expr::int(1)),
                        then_branch: vec![Stmt::For {
                            var: i,
                            lo: Expr::int(0),
                            hi: Expr::int(4),
                            body: vec![Stmt::Store {
                                buf: out,
                                index: Expr::int(0),
                                value: Expr::Var(i),
                                reduce: Some(BinOp::Add),
                            }],
                        }],
                        else_branch: vec![Stmt::Comment("skip".into())],
                    },
                    Stmt::Assign { var: p, value: Expr::add(Expr::Var(p), Expr::int(1)) },
                ],
            },
        ];
        let program = compile(&prog, &names);
        // Structure probes beyond validate(): the while's back-edge jumps to
        // the first instruction of its condition, and the for's ForStep
        // jumps to its ForTest.
        let code = program.code();
        let (mut saw_while, mut saw_for) = (false, false);
        for (pc, instr) in code.iter().enumerate() {
            match *instr {
                Instr::WhileTest { end, .. } => {
                    saw_while = true;
                    assert!((end as usize) > pc, "while end must be forward");
                    assert_eq!(end as usize, code.len(), "while is the outermost loop");
                }
                Instr::ForStep { test, .. } => {
                    saw_for = true;
                    assert!(matches!(code[test as usize], Instr::ForTest { .. }));
                }
                _ => {}
            }
        }
        assert!(saw_while && saw_for);
    }

    #[test]
    fn if_without_else_falls_through() {
        let mut names = Names::new();
        let a = names.fresh("a");
        let prog = vec![
            Stmt::Let { var: a, init: Expr::int(0) },
            Stmt::if_then(Expr::bool(true), vec![Stmt::Assign { var: a, value: Expr::int(1) }]),
            Stmt::Assign { var: a, value: Expr::add(Expr::Var(a), Expr::int(10)) },
        ];
        let program = compile(&prog, &names);
        let jf = program
            .code()
            .iter()
            .find_map(|i| match i {
                Instr::JumpIfFalse { target, .. } => Some(*target),
                _ => None,
            })
            .expect("if compiles to a conditional jump");
        // The else-less if jumps past the then-branch, into the trailing
        // statement (which begins with its BumpStmt).
        assert!(matches!(program.code()[jf as usize], Instr::BumpStmt));
    }

    #[test]
    fn short_circuit_and_or_compile_to_branches() {
        let mut names = Names::new();
        let a = names.fresh("a");
        let prog = vec![Stmt::Let {
            var: a,
            init: Expr::binary(
                BinOp::Or,
                Expr::binary(BinOp::And, Expr::bool(true), Expr::bool(false)),
                Expr::bool(true),
            ),
        }];
        let program = compile(&prog, &names);
        let jumps = program
            .code()
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::JumpIfMissing { .. }
                        | Instr::JumpIfFalse { .. }
                        | Instr::JumpIfTrue { .. }
                )
            })
            .count();
        assert!(jumps >= 4, "and/or should branch:\n{}", program.disasm());
    }

    #[test]
    fn search_compiles_to_seek_with_coerced_operands() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let idx = bufs.add("idx", Buffer::I64(vec![1, 3, 5].into()));
        let a = names.fresh("a");
        let prog = vec![Stmt::Let {
            var: a,
            init: Expr::Search {
                buf: idx,
                lo: Box::new(Expr::int(0)),
                hi: Box::new(Expr::int(2)),
                key: Box::new(Expr::int(4)),
                on_abs: false,
            },
        }];
        let program = compile(&prog, &names);
        let seeks = program.code().iter().filter(|i| matches!(i, Instr::Seek { .. })).count();
        let coercions =
            program.code().iter().filter(|i| matches!(i, Instr::CoerceInt { .. })).count();
        assert_eq!(seeks, 1);
        assert_eq!(coercions, 3, "lo, hi and key are all coerced");
    }

    #[test]
    fn constant_pool_deduplicates() {
        let mut names = Names::new();
        let a = names.fresh("a");
        let b = names.fresh("b");
        let prog = vec![
            Stmt::Let { var: a, init: Expr::int(7) },
            Stmt::Let { var: b, init: Expr::add(Expr::int(7), Expr::int(7)) },
        ];
        let program = compile(&prog, &names);
        assert_eq!(program.consts().len(), 1);
    }

    #[test]
    fn constant_pool_keeps_negative_zero_distinct() {
        let mut names = Names::new();
        let a = names.fresh("a");
        let b = names.fresh("b");
        let prog = vec![
            Stmt::Let { var: a, init: Expr::float(0.0) },
            Stmt::Let { var: b, init: Expr::float(-0.0) },
        ];
        let program = compile(&prog, &names);
        assert_eq!(program.consts().len(), 2, "-0.0 must not be interned as 0.0");
        let bits: Vec<u64> = program
            .consts()
            .iter()
            .map(|c| match c {
                Value::Float(x) => x.to_bits(),
                _ => panic!("expected float constants"),
            })
            .collect();
        assert!(bits.contains(&0.0f64.to_bits()) && bits.contains(&(-0.0f64).to_bits()));
    }

    #[test]
    fn register_file_is_sized_for_vars_plus_temps() {
        let mut names = Names::new();
        let a = names.fresh("a");
        let deep = Expr::add(
            Expr::add(Expr::int(1), Expr::int(2)),
            Expr::add(Expr::int(3), Expr::add(Expr::int(4), Expr::int(5))),
        );
        let prog = vec![Stmt::Let { var: a, init: deep }];
        let program = compile(&prog, &names);
        assert_eq!(program.num_vars(), 1);
        assert!(program.num_regs() > program.num_vars());
        assert!(program.num_regs() <= 1 + 6, "LIFO reuse keeps the file small");
    }

    #[test]
    fn reg_names_cover_vars_and_temps() {
        let mut names = Names::new();
        let a = names.fresh("acc");
        let prog = vec![Stmt::Let { var: a, init: Expr::add(Expr::int(1), Expr::int(2)) }];
        let program = compile(&prog, &names);
        assert_eq!(program.reg_name(Reg(0)), "acc");
        assert!(program.reg_name(Reg(1)).starts_with('t'));
    }

    /// Golden disassembly of the sparse-assembly statements: any change to
    /// the instruction encoding of `Append`/`FiberEnd` (operand order,
    /// emitted coercions, temp allocation) shows up as a diff here.
    #[test]
    fn golden_disasm_of_append_and_fiber_end() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let pos = bufs.add("C_pos", Buffer::I64(vec![0].into()));
        let idx = bufs.add("C_idx", Buffer::I64(vec![].into()));
        let i = names.fresh("i");
        let prog = vec![
            Stmt::Let { var: i, init: Expr::int(3) },
            Stmt::Append { buf: idx, value: Expr::Var(i) },
            Stmt::FiberEnd { pos, data: idx },
        ];
        let program = compile(&prog, &names);
        let expected = "   0: stmt
   1: i = const 3
   2: stmt
   3: t0 = i
   4: b1.push(t0)
   5: stmt
   6: b0.push(len(b1))
";
        assert_eq!(program.disasm(), expected);
    }

    /// Golden disassembly of a representative existing kernel shape (a
    /// reducing `for` loop over a buffer), guarding the encoding of the
    /// loop, load and store instructions.
    #[test]
    fn golden_disasm_of_a_reducing_for_loop() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let x = bufs.add("x", Buffer::F64(vec![1.0; 3].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(2),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::load(x, Expr::Var(i)),
                reduce: Some(BinOp::Add),
            }],
        }];
        let program = compile(&prog, &names);
        let expected = "   0: stmt
   1: t0 = const 0
   2: coerce_int t0
   3: t1 = const 2
   4: coerce_int t1
   5: for i = t0 while <= t1 else -> 13
   6: stmt
   7: t2 = const 0
   8: coerce_int t2
   9: t4 = i
  10: t3 = b0[t4]
  11: b1[t2] += t3
  12: step t0 -> 5
";
        assert_eq!(program.disasm(), expected);
    }

    #[test]
    fn append_operand_registers_are_validated() {
        let mut names = Names::new();
        let mut bufs = BufferSet::new();
        let idx = bufs.add("idx", Buffer::I64(vec![].into()));
        let pos = bufs.add("pos", Buffer::I64(vec![0].into()));
        let v = names.fresh("v");
        let prog = vec![
            Stmt::Let { var: v, init: Expr::int(1) },
            Stmt::Append { buf: idx, value: Expr::Var(v) },
            Stmt::FiberEnd { pos, data: idx },
        ];
        let program = compile(&prog, &names);
        let appends = program.code().iter().filter(|i| matches!(i, Instr::Append { .. })).count();
        let ends = program.code().iter().filter(|i| matches!(i, Instr::FiberEnd { .. })).count();
        assert_eq!((appends, ends), (1, 1));
    }

    #[test]
    fn disasm_lists_every_instruction() {
        let names = Names::new();
        let prog = vec![Stmt::Comment("hi".into())];
        let program = compile(&prog, &names);
        assert_eq!(program.disasm().lines().count(), program.code().len());
    }

    /// Hand-build a program out of typed instructions and golden-check
    /// the disassembly of every typed encoding (operand order, lane
    /// suffixes, inlined immediates, jump targets).
    #[test]
    fn golden_disasm_of_typed_instruction_forms() {
        let mut names = Names::new();
        let p = names.fresh("p");
        let x = names.fresh("x");
        let program = Program {
            code: vec![
                Instr::Nop,
                Instr::ConstI { dst: Reg(0), imm: 7 },
                Instr::ConstF { dst: Reg(1), imm: 1.5 },
                Instr::IMov { dst: Reg(0), src: Reg(0) },
                Instr::FMov { dst: Reg(1), src: Reg(1) },
                Instr::ILen { dst: Reg(0), buf: crate::buffer::BufId(0) },
                Instr::LoadI64 { dst: Reg(0), buf: crate::buffer::BufId(0), idx: Reg(0) },
                Instr::LoadF64 { dst: Reg(1), buf: crate::buffer::BufId(1), idx: Reg(0) },
                Instr::LoadU8 { dst: Reg(1), buf: crate::buffer::BufId(2), idx: Reg(0) },
                Instr::FMulLoad {
                    dst: Reg(1),
                    lhs: Reg(1),
                    buf: crate::buffer::BufId(1),
                    idx: Reg(0),
                },
                Instr::StoreF64 {
                    buf: crate::buffer::BufId(1),
                    idx: Reg(0),
                    val: Reg(1),
                    reduce: Some(BinOp::Add),
                },
                Instr::StoreU8 {
                    buf: crate::buffer::BufId(2),
                    idx: Reg(0),
                    val: Reg(1),
                    reduce: None,
                },
                Instr::IAppend { buf: crate::buffer::BufId(0), val: Reg(0) },
                Instr::FAppend { buf: crate::buffer::BufId(1), val: Reg(1) },
                Instr::IArith { op: BinOp::Add, dst: Reg(0), lhs: Reg(0), rhs: Reg(0) },
                Instr::FArith { op: BinOp::Mul, dst: Reg(1), lhs: Reg(1), rhs: Reg(1) },
                Instr::IArithImm { op: BinOp::Add, dst: Reg(0), lhs: Reg(0), imm: 1 },
                Instr::FArithImm { op: BinOp::Mul, dst: Reg(1), lhs: Reg(1), imm: 0.5 },
                Instr::FRound { dst: Reg(1), src: Reg(1) },
                Instr::ICmpBranch { op: BinOp::Lt, lhs: Reg(0), rhs: Reg(0), target: 24 },
                Instr::ICmpBranchImm { op: BinOp::Eq, lhs: Reg(0), imm: 3, target: 24 },
                Instr::FCmpBranch { op: BinOp::Ne, lhs: Reg(1), rhs: Reg(1), target: 24 },
                Instr::FCmpBranchImm { op: BinOp::Ne, lhs: Reg(1), imm: 0.0, target: 24 },
                Instr::IWhileCmp { op: BinOp::Lt, lhs: Reg(0), rhs: Reg(0), end: 24 },
                Instr::IWhileCmpImm { op: BinOp::Le, lhs: Reg(0), imm: 9, end: 25 },
                Instr::FWhileCmp { op: BinOp::Lt, lhs: Reg(1), rhs: Reg(1), end: 26 },
                Instr::IForTest { counter: Reg(0), hi: Reg(0), var: Reg(0), end: 27 },
                Instr::ISeek {
                    dst: Reg(0),
                    buf: crate::buffer::BufId(0),
                    lo: Reg(0),
                    hi: Reg(0),
                    key: Reg(0),
                    on_abs: true,
                },
            ],
            consts: Vec::new(),
            var_names: names.iter().map(|v| names.name(v).to_string()).collect(),
            num_regs: 2,
            pretags: vec![(Reg(0), LaneTag::Int), (Reg(1), LaneTag::Float)],
            shard_plan: ShardPlan::default(),
        };
        let _ = (p, x);
        program.validate().expect("typed forms validate");
        let expected = "   0: nop
   1: p = const.i 7
   2: x = const.f 1.5
   3: p = p (i64)
   4: x = x (f64)
   5: p = len.i(b0)
   6: p = b0[p] (i64)
   7: x = b1[p] (f64)
   8: x = b2[p] (u8)
   9: x = x * b1[p] (f64)
  10: b1[p] += x (f64)
  11: b2[p] = x (u8)
  12: b0.push(p) (i64)
  13: b1.push(x) (f64)
  14: p = p + p (i64)
  15: x = x * x (f64)
  16: p = p + 1 (i64)
  17: x = x * 0.5 (f64)
  18: x = round_u8(x) (f64)
  19: if_false p < p (i64) -> 24
  20: if_false p == 3 (i64) -> 24
  21: if_false x != x (f64) -> 24
  22: if_false x != 0.0 (f64) -> 24
  23: while p < p (i64) else -> 24
  24: while p <= 9 (i64) else -> 25
  25: while x < x (f64) else -> 26
  26: for p = p while <= p (i64) else -> 27
  27: p = seek_abs.i(b0, p, p, p)
";
        assert_eq!(program.disasm(), expected);
    }

    #[test]
    fn typed_validate_rejects_bad_ops_and_pretags() {
        let base = |code: Vec<Instr>, pretags: Vec<(Reg, LaneTag)>| Program {
            code,
            consts: Vec::new(),
            var_names: vec!["a".into()],
            num_regs: 1,
            pretags,
            shard_plan: ShardPlan::default(),
        };
        // A non-comparison op in a typed branch is rejected.
        let p = base(
            vec![Instr::ICmpBranch { op: BinOp::Add, lhs: Reg(0), rhs: Reg(0), target: 1 }],
            Vec::new(),
        );
        assert!(p.validate().is_err());
        // Div is not an infallible integer arithmetic op.
        let p = base(
            vec![Instr::IArith { op: BinOp::Div, dst: Reg(0), lhs: Reg(0), rhs: Reg(0) }],
            Vec::new(),
        );
        assert!(p.validate().is_err());
        // A logical reduce cannot ride a typed store.
        let p = base(
            vec![Instr::StoreF64 {
                buf: crate::buffer::BufId(0),
                idx: Reg(0),
                val: Reg(0),
                reduce: Some(BinOp::And),
            }],
            Vec::new(),
        );
        assert!(p.validate().is_err());
        // Pretags outside the register file are rejected.
        let p = base(vec![Instr::Nop], vec![(Reg(9), LaneTag::Int)]);
        assert!(p.validate().is_err());
    }

    /// Hand-build one malformed program per structural invariant and check
    /// that [`Program::validate`] names the violation: jumps past the end,
    /// unresolved (PENDING) jumps, `for` back-edges that miss their loop
    /// head, out-of-range registers and constant-pool indices, and a
    /// register file past [`Program::REG_LIMIT`].
    #[test]
    fn validate_rejects_each_malformed_encoding() {
        let base = |code: Vec<Instr>| Program {
            code,
            consts: vec![Value::Int(1)],
            var_names: vec!["a".into()],
            num_regs: 1,
            pretags: Vec::new(),
            shard_plan: ShardPlan::default(),
        };

        // Jump past the end of the code (len is 1, so 2 is out of range;
        // exactly len is the legal halt target).
        let p = base(vec![Instr::Jump { target: 2 }]);
        assert!(p.validate().unwrap_err().contains("past the end"));
        let p = base(vec![Instr::Jump { target: 1 }]);
        assert_eq!(p.validate(), Ok(()), "target == len is the halt address");

        // An unresolved jump left over from compilation.
        let p = base(vec![Instr::Jump { target: PENDING }]);
        assert!(p.validate().unwrap_err().contains("unresolved jump"));

        // A `for` back-edge that lands on something other than a loop head.
        let p = base(vec![Instr::Nop, Instr::ForStep { counter: Reg(0), test: 0 }]);
        assert!(p.validate().unwrap_err().contains("not a loop head"));

        // Out-of-range registers, on an untyped and a typed encoding.
        let p = base(vec![Instr::Mov { dst: Reg(3), src: Reg(0) }]);
        assert!(p.validate().unwrap_err().contains("outside the file"));
        let p = base(vec![Instr::IArith { op: BinOp::Add, dst: Reg(0), lhs: Reg(0), rhs: Reg(7) }]);
        assert!(p.validate().unwrap_err().contains("outside the file"));

        // Out-of-range constant-pool indices on every encoding that carries
        // one (typed opcodes inline their immediates instead).
        let oob = [
            Instr::Const { dst: Reg(0), cidx: 5 },
            Instr::BinaryImm { op: BinOp::Add, dst: Reg(0), lhs: Reg(0), cidx: 5 },
            Instr::CmpBranchImm { op: BinOp::Lt, lhs: Reg(0), cidx: 5, target: 1, strict: false },
            Instr::WhileCmpImm { op: BinOp::Lt, lhs: Reg(0), cidx: 5, end: 1 },
        ];
        for instr in oob {
            let p = base(vec![instr]);
            assert!(
                p.validate().unwrap_err().contains("outside the pool"),
                "{instr:?} must be rejected"
            );
        }

        // A register file past the limit is rejected before any decode.
        let mut p = base(vec![Instr::Nop]);
        p.num_regs = Program::REG_LIMIT + 1;
        assert!(p.validate().unwrap_err().contains("exceeds the limit"));
    }

    /// One hand-built instance of every vectorized kernel-op encoding,
    /// pinned against its exact disassembly.
    #[test]
    fn golden_disasm_of_vector_kernel_ops() {
        let mut names = Names::new();
        let i = names.fresh("i");
        let n = names.fresh("n");
        let k = names.fresh("k");
        let _ = (i, n, k);
        let b = crate::buffer::BufId;
        let cost = VCost { stmts: 1, loads: 1, stores: 1 };
        let program = Program {
            code: vec![
                Instr::VFillStoreF64 {
                    buf: b(0),
                    base: VBase::Var,
                    imm: 0.0,
                    counter: Reg(0),
                    hi: Reg(1),
                    cost,
                    lanes: 8,
                },
                Instr::VMapF64 {
                    dst: b(2),
                    dst_base: VBase::Var,
                    reduce: Some(BinOp::Add),
                    round: false,
                    a: b(0),
                    a_base: VBase::Var,
                    a_pre: VScale::Right { op: BinOp::Mul, imm: 0.75 },
                    rhs: VRhs::None,
                    counter: Reg(0),
                    hi: Reg(1),
                    cost,
                    lanes: 8,
                },
                Instr::VMapF64 {
                    dst: b(2),
                    dst_base: VBase::Scaled { reg: Reg(2), stride: 4 },
                    reduce: None,
                    round: true,
                    a: b(0),
                    a_base: VBase::Scaled { reg: Reg(2), stride: 4 },
                    a_pre: VScale::Left { op: BinOp::Mul, imm: 0.6 },
                    rhs: VRhs::Buf {
                        op: BinOp::Add,
                        buf: b(1),
                        base: VBase::Scaled { reg: Reg(2), stride: 4 },
                        pre: VScale::Left { op: BinOp::Mul, imm: 0.4 },
                    },
                    counter: Reg(0),
                    hi: Reg(1),
                    cost,
                    lanes: 8,
                },
                Instr::VMulAddF64 {
                    acc: b(2),
                    acc_idx: 0,
                    a: b(0),
                    a_base: VBase::Var,
                    b: b(1),
                    b_base: VBase::Var,
                    op: BinOp::Add,
                    counter: Reg(0),
                    hi: Reg(1),
                    cost,
                    lanes: 8,
                },
                Instr::VReduceF64 {
                    acc: b(2),
                    acc_idx: 0,
                    src: b(0),
                    base: VBase::Var,
                    pre: VScale::None,
                    op: BinOp::Max,
                    counter: Reg(0),
                    hi: Reg(1),
                    cost,
                    lanes: 8,
                },
                Instr::VAppendRangeF64 {
                    idx_out: b(3),
                    val_out: b(4),
                    src: b(0),
                    base: VBase::Var,
                    guard: Some((BinOp::Gt, 0.3)),
                    counter: Reg(0),
                    hi: Reg(1),
                    cost,
                    pass_cost: VCost { stmts: 2, loads: 1, stores: 2 },
                    lanes: 4,
                },
                Instr::VCmpSelectU8 {
                    dst: b(5),
                    dst_base: VBase::Var,
                    src: b(0),
                    src_base: VBase::Var,
                    cmp: BinOp::Gt,
                    cmp_imm: 0.5,
                    set: 255.0,
                    counter: Reg(0),
                    hi: Reg(1),
                    cost,
                    pass_cost: VCost { stmts: 1, loads: 0, stores: 1 },
                    lanes: 4,
                },
            ],
            consts: Vec::new(),
            var_names: names.iter().map(|v| names.name(v).to_string()).collect(),
            num_regs: 3,
            pretags: vec![(Reg(0), LaneTag::Int), (Reg(1), LaneTag::Int), (Reg(2), LaneTag::Int)],
            shard_plan: ShardPlan::default(),
        };
        program.validate().expect("vector kernel ops validate");
        let expected = "   0: vfill.f64 b0[v] = 0.0 for v in [i, n) (x8)
   1: vmap.f64 b2[v] += b0[v] * 0.75 for v in [i, n) (x8)
   2: vmap.f64 b2[k*4+v] = round_u8(0.6 * b0[k*4+v] + 0.4 * b1[k*4+v]) for v in [i, n) (x8)
   3: vmuladd.f64 b2[0] += b0[v] * b1[v] for v in [i, n) (x8)
   4: vreduce.f64 b2[0] max= b0[v] for v in [i, n) (x8)
   5: vappend.f64 b3.push(v), b4.push(b0[v]) where b0[v] > 0.3 for v in [i, n) (x4)
   6: vselect.u8 b5[v] = 255.0 where b0[v] > 0.5 for v in [i, n) (x4)
";
        assert_eq!(program.disasm(), expected);
    }

    /// Every vectorized kernel op rejects a bad slice range, a misaligned
    /// lane count, and an out-of-range register through [`Program::validate`].
    #[test]
    fn vector_validate_rejects_each_malformed_encoding() {
        let base = |code: Vec<Instr>| Program {
            code,
            consts: Vec::new(),
            var_names: vec!["a".into()],
            num_regs: 1,
            pretags: Vec::new(),
            shard_plan: ShardPlan::default(),
        };
        let b = crate::buffer::BufId;
        let cost = VCost { stmts: 1, loads: 1, stores: 1 };
        // A well-formed instance of each op, parameterised over the loop
        // registers, index shape, and lane width so each malformation can
        // be injected per op.
        type Mk = Box<dyn Fn(Reg, VBase, u8) -> Instr>;
        let mk_ops: Vec<Mk> = vec![
            Box::new(move |r, base, lanes| Instr::VFillStoreF64 {
                buf: b(0),
                base,
                imm: 0.0,
                counter: r,
                hi: r,
                cost,
                lanes,
            }),
            Box::new(move |r, base, lanes| Instr::VMapF64 {
                dst: b(1),
                dst_base: base,
                reduce: None,
                round: false,
                a: b(0),
                a_base: base,
                a_pre: VScale::None,
                rhs: VRhs::None,
                counter: r,
                hi: r,
                cost,
                lanes,
            }),
            Box::new(move |r, base, lanes| Instr::VMulAddF64 {
                acc: b(2),
                acc_idx: 0,
                a: b(0),
                a_base: base,
                b: b(1),
                b_base: base,
                op: BinOp::Add,
                counter: r,
                hi: r,
                cost,
                lanes,
            }),
            Box::new(move |r, base, lanes| Instr::VReduceF64 {
                acc: b(1),
                acc_idx: 0,
                src: b(0),
                base,
                pre: VScale::None,
                op: BinOp::Add,
                counter: r,
                hi: r,
                cost,
                lanes,
            }),
            Box::new(move |r, base, lanes| Instr::VAppendRangeF64 {
                idx_out: b(1),
                val_out: b(2),
                src: b(0),
                base,
                guard: None,
                counter: r,
                hi: r,
                cost,
                pass_cost: cost,
                lanes,
            }),
            Box::new(move |r, base, lanes| Instr::VCmpSelectU8 {
                dst: b(1),
                dst_base: base,
                src: b(0),
                src_base: base,
                cmp: BinOp::Gt,
                cmp_imm: 0.5,
                set: 255.0,
                counter: r,
                hi: r,
                cost,
                pass_cost: cost,
                lanes,
            }),
        ];
        for mk in &mk_ops {
            // The well-formed baseline passes.
            let p = base(vec![mk(Reg(0), VBase::Var, 8)]);
            assert_eq!(p.validate(), Ok(()));
            // Bad slice range: a scaled index shape with stride < 1.
            let p = base(vec![mk(Reg(0), VBase::Scaled { reg: Reg(0), stride: 0 }, 8)]);
            assert!(p.validate().unwrap_err().contains("bad slice range"));
            // Misaligned lane count (must be 4 or 8).
            for lanes in [0, 3, 5, 16] {
                let p = base(vec![mk(Reg(0), VBase::Var, lanes)]);
                assert!(p.validate().unwrap_err().contains("misaligned lane count"));
            }
            // Out-of-range loop registers and index-shape base register.
            let p = base(vec![mk(Reg(9), VBase::Var, 8)]);
            assert!(p.validate().unwrap_err().contains("outside the file"));
            let p = base(vec![mk(Reg(0), VBase::Scaled { reg: Reg(9), stride: 1 }, 8)]);
            assert!(p.validate().unwrap_err().contains("outside the file"));
        }

        // A negative accumulator element index is a bad slice range.
        let p = base(vec![Instr::VMulAddF64 {
            acc: b(0),
            acc_idx: -1,
            a: b(1),
            a_base: VBase::Var,
            b: b(2),
            b_base: VBase::Var,
            op: BinOp::Add,
            counter: Reg(0),
            hi: Reg(0),
            cost,
            lanes: 8,
        }]);
        assert!(p.validate().unwrap_err().contains("bad slice range"));

        // Operator whitelists: a logical map reduce, a comparison where
        // arithmetic is required, and arithmetic where a comparison is
        // required are all rejected.
        let p = base(vec![Instr::VMapF64 {
            dst: b(0),
            dst_base: VBase::Var,
            reduce: Some(BinOp::And),
            round: false,
            a: b(1),
            a_base: VBase::Var,
            a_pre: VScale::None,
            rhs: VRhs::None,
            counter: Reg(0),
            hi: Reg(0),
            cost,
            lanes: 8,
        }]);
        assert!(p.validate().unwrap_err().contains("non-arithmetic vector store reduce"));
        let p = base(vec![Instr::VReduceF64 {
            acc: b(0),
            acc_idx: 0,
            src: b(1),
            base: VBase::Var,
            pre: VScale::None,
            op: BinOp::Lt,
            counter: Reg(0),
            hi: Reg(0),
            cost,
            lanes: 8,
        }]);
        assert!(p.validate().unwrap_err().contains("unsupported vector reduce op"));
        let p = base(vec![Instr::VAppendRangeF64 {
            idx_out: b(0),
            val_out: b(1),
            src: b(2),
            base: VBase::Var,
            guard: Some((BinOp::Add, 0.0)),
            counter: Reg(0),
            hi: Reg(0),
            cost,
            pass_cost: cost,
            lanes: 4,
        }]);
        assert!(p.validate().unwrap_err().contains("non-comparison vector guard op"));
    }
}
