//! The shared lower-bound `seek` used by both execution engines.
//!
//! The looplet `seek` finds the first position `p` in a sorted coordinate
//! buffer with `buf[p] >= key` (or `hi + 1` when every candidate is
//! smaller).  Coiteration issues many *short* seeks — the next coordinate
//! is usually a handful of positions ahead of the current one — so instead
//! of bisecting the whole window immediately, the search first **gallops**
//! from `lo` (probing `lo`, `lo+1`, `lo+3`, `lo+7`, ...) until a probe
//! meets the key, then finishes with a plain binary search inside the
//! bracketed window.  Near misses cost O(log distance) cache-local probes
//! instead of O(log window) scattered ones.
//!
//! Both the tree-walking interpreter and the bytecode VM call this one
//! function, so the two engines perform the *same probe sequence* — each
//! probe is bounds-checked and counted as one load, keeping `ExecStats`
//! bit-identical across engines (and across typed/generic dispatch).  The
//! `searches` counter semantics are unchanged: callers count one search
//! per seek, as before.

use crate::buffer::{BufId, VmBufs};
use crate::error::RuntimeError;

/// Lower-bound search over `buf[lo..=hi]` for `key`: the first position
/// `p` with `buf[p] >= key` (comparing `abs(buf[p])` when `on_abs` is
/// set), or `hi + 1` when every element is smaller.  Returns the found
/// position together with the number of probes performed (each probe is
/// one bounds-checked, counted load).
///
/// # Errors
///
/// Returns [`RuntimeError::OutOfBounds`] when a probe position lies
/// outside the buffer, and a type error when a probed element is not an
/// integer — the same faults, in the same order, as the historical plain
/// binary search probing the same positions.
pub(crate) fn lower_bound<B: VmBufs>(
    bufs: &B,
    buf: BufId,
    lo: i64,
    hi: i64,
    key: i64,
    on_abs: bool,
) -> Result<(i64, u64), RuntimeError> {
    let mut probes = 0u64;
    let mut probe = |p: i64| -> Result<i64, RuntimeError> {
        let len = bufs.get(buf).len();
        if p < 0 || p as usize >= len {
            return Err(RuntimeError::OutOfBounds {
                buffer: bufs.name(buf).to_string(),
                index: p,
                len,
            });
        }
        probes += 1;
        let mut v = bufs.get(buf).load(p as usize).as_int()?;
        if on_abs {
            v = v.abs();
        }
        Ok(v)
    };

    let start = lo;
    let mut lo = lo;
    let mut hi = hi + 1; // exclusive
                         // Gallop: probe start, start+1, start+3, start+7, ... (clamped to the
                         // window) until one meets the key or the window is exhausted.
    let mut step = 1i64;
    while lo < hi {
        let p = start.checked_add(step - 1).map_or(hi - 1, |x| x.min(hi - 1));
        if probe(p)? < key {
            lo = p + 1;
            if p == hi - 1 {
                break;
            }
            step = step.saturating_mul(2);
        } else {
            hi = p;
            break;
        }
    }
    // Plain binary search inside the bracketed window.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(mid)? < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok((lo, probes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, BufferSet};

    /// The pre-gallop implementation, kept as the oracle: plain
    /// lower-bound bisection over the whole window.
    fn plain_binary_search(data: &[i64], lo: i64, hi: i64, key: i64, on_abs: bool) -> i64 {
        let mut lo = lo;
        let mut hi = hi + 1;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mut v = data[mid as usize];
            if on_abs {
                v = v.abs();
            }
            if v < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// A tiny deterministic LCG so the test needs no external crates.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn gallop_matches_plain_binary_search_on_random_inputs() {
        let mut rng = Lcg(0x5eed);
        for case in 0..200 {
            let n = 1 + (rng.next() % 64) as usize;
            let mut data: Vec<i64> = (0..n).map(|_| (rng.next() % 100) as i64).collect();
            data.sort_unstable();
            let mut bufs = BufferSet::new();
            let id = bufs.add("idx", Buffer::I64(data.clone().into()));
            for _ in 0..16 {
                let lo = (rng.next() % n as u64) as i64;
                let hi = lo + (rng.next() % (n as u64 - lo as u64)) as i64;
                let key = (rng.next() % 110) as i64;
                let expect = plain_binary_search(&data, lo, hi, key, false);
                let (got, probes) = lower_bound(&bufs, id, lo, hi, key, false).unwrap();
                assert_eq!(got, expect, "case {case}: seek({lo}, {hi}, {key}) over {data:?}");
                assert!(probes <= (hi - lo + 2) as u64 * 2, "probe count stays bounded");
            }
        }
    }

    #[test]
    fn gallop_matches_plain_binary_search_on_abs_markers() {
        let mut rng = Lcg(0xabcd);
        for _ in 0..100 {
            let n = 1 + (rng.next() % 32) as usize;
            let mut mags: Vec<i64> = (0..n).map(|_| (rng.next() % 50) as i64).collect();
            mags.sort_unstable();
            // Negate a scatter of entries: PackBits-style markers whose
            // magnitude stays sorted.
            let data: Vec<i64> =
                mags.iter().map(|&v| if rng.next().is_multiple_of(3) { -v } else { v }).collect();
            let mut bufs = BufferSet::new();
            let id = bufs.add("idx", Buffer::I64(data.clone().into()));
            let key = (rng.next() % 55) as i64;
            let expect = plain_binary_search(&data, 0, n as i64 - 1, key, true);
            let (got, _) = lower_bound(&bufs, id, 0, n as i64 - 1, key, true).unwrap();
            assert_eq!(got, expect, "seek_abs({key}) over {data:?}");
        }
    }

    #[test]
    fn empty_window_returns_lo_with_zero_probes() {
        let mut bufs = BufferSet::new();
        let id = bufs.add("idx", Buffer::I64(vec![1, 2, 3].into()));
        let (pos, probes) = lower_bound(&bufs, id, 2, 1, 5, false).unwrap();
        assert_eq!((pos, probes), (2, 0));
    }

    #[test]
    fn short_seeks_probe_locally() {
        // The answer sits 2 positions ahead of lo in a 1000-element
        // window: galloping must find it in a handful of probes where the
        // plain bisection would pay ~log2(1000).
        let data: Vec<i64> = (0..1000).collect();
        let mut bufs = BufferSet::new();
        let id = bufs.add("idx", Buffer::I64(data.into()));
        let (pos, probes) = lower_bound(&bufs, id, 100, 999, 102, false).unwrap();
        assert_eq!(pos, 102);
        assert!(probes <= 4, "short seek probed {probes} times");
    }

    #[test]
    fn out_of_bounds_probe_reports_the_buffer_name() {
        let mut bufs = BufferSet::new();
        let id = bufs.add("coords", Buffer::I64(vec![1, 2].into()));
        let err = lower_bound(&bufs, id, 0, 7, 9, false).unwrap_err();
        match err {
            RuntimeError::OutOfBounds { buffer, .. } => assert_eq!(buffer, "coords"),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
