//! Runtime errors produced by the interpreter.

use std::error::Error;
use std::fmt;

use crate::value::ValueKind;

/// Errors raised while executing target IR.
///
/// These indicate either malformed input data (e.g. an index buffer pointing
/// outside its values buffer) or a compiler bug (ill-typed generated code);
/// they are never expected during normal operation on well-formed tensors.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A value had the wrong runtime type for the operation.
    TypeMismatch {
        /// What the operation expected.
        expected: &'static str,
        /// The kind that was actually found.
        found: ValueKind,
    },
    /// A buffer access was out of bounds.
    OutOfBounds {
        /// Name of the buffer.
        buffer: String,
        /// The offending index.
        index: i64,
        /// The buffer length.
        len: usize,
    },
    /// Integer division by zero.
    DivisionByZero,
    /// A variable was read before being assigned.
    UnboundVariable {
        /// The printed name of the variable.
        name: String,
    },
    /// A `Missing` value escaped into a context that cannot represent it
    /// (e.g. a store into an integer buffer).
    UnexpectedMissing {
        /// Description of the context.
        context: String,
    },
    /// The interpreter exceeded its configured step budget (used by tests to
    /// guard against non-terminating generated code).
    StepBudgetExceeded {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// The execution exceeded its per-request deadline (or its cooperative
    /// cancellation flag was raised), detected on the same statement path
    /// that checks the step budget.  Buffers are left reusable: the next
    /// run resets them in place exactly as after a step-budget abort.
    Deadline {
        /// The configured deadline in milliseconds (0 when cancellation was
        /// requested without a wall-clock deadline).
        ms: u64,
    },
    /// The execution appended more output elements than its configured
    /// allocation budget allows (admission control for growable sparse
    /// outputs, alongside the step budget).
    AllocBudgetExceeded {
        /// The element budget that was exceeded.
        budget: u64,
    },
    /// A kernel output was queried under a name or kind that does not match
    /// its binding (an unknown name, a vector read through `output_scalar`,
    /// a sparse output read before any run assembled it, ...).
    BadOutputQuery {
        /// The queried output name.
        name: String,
        /// What went wrong.
        detail: String,
    },
    /// An input rebind did not match the structure the kernel was compiled
    /// against (unknown tensor name, different level kinds or sizes, or a
    /// different fill value — all of which are baked into the generated
    /// code).
    BadInputRebind {
        /// The tensor name the rebind was attempted under.
        name: String,
        /// What did not match.
        detail: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            RuntimeError::OutOfBounds { buffer, index, len } => {
                write!(f, "index {index} out of bounds for buffer `{buffer}` of length {len}")
            }
            RuntimeError::DivisionByZero => write!(f, "integer division by zero"),
            RuntimeError::UnboundVariable { name } => {
                write!(f, "variable `{name}` read before assignment")
            }
            RuntimeError::UnexpectedMissing { context } => {
                write!(f, "missing value reached {context}")
            }
            RuntimeError::StepBudgetExceeded { budget } => {
                write!(f, "interpreter exceeded step budget of {budget}")
            }
            RuntimeError::Deadline { ms } => {
                write!(f, "execution cancelled: deadline of {ms}ms expired")
            }
            RuntimeError::AllocBudgetExceeded { budget } => {
                write!(f, "execution exceeded output allocation budget of {budget} elements")
            }
            RuntimeError::BadOutputQuery { name, detail } => {
                write!(f, "output `{name}` cannot be read: {detail}")
            }
            RuntimeError::BadInputRebind { name, detail } => {
                write!(f, "input `{name}` cannot be rebound: {detail}")
            }
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty_lowercase_messages() {
        let errs: Vec<RuntimeError> = vec![
            RuntimeError::TypeMismatch { expected: "int", found: ValueKind::Missing },
            RuntimeError::OutOfBounds { buffer: "idx".into(), index: 9, len: 3 },
            RuntimeError::DivisionByZero,
            RuntimeError::UnboundVariable { name: "p".into() },
            RuntimeError::UnexpectedMissing { context: "a store".into() },
            RuntimeError::StepBudgetExceeded { budget: 10 },
            RuntimeError::Deadline { ms: 25 },
            RuntimeError::AllocBudgetExceeded { budget: 64 },
            RuntimeError::BadOutputQuery { name: "C".into(), detail: "not a scalar".into() },
            RuntimeError::BadInputRebind { name: "A".into(), detail: "level 0 differs".into() },
        ];
        for e in errs {
            let msg = format!("{e}");
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RuntimeError>();
    }
}
