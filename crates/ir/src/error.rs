//! Runtime errors produced by the interpreter.

use std::error::Error;
use std::fmt;

use crate::value::ValueKind;

/// Errors raised while executing target IR.
///
/// These indicate either malformed input data (e.g. an index buffer pointing
/// outside its values buffer) or a compiler bug (ill-typed generated code);
/// they are never expected during normal operation on well-formed tensors.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A value had the wrong runtime type for the operation.
    TypeMismatch {
        /// What the operation expected.
        expected: &'static str,
        /// The kind that was actually found.
        found: ValueKind,
    },
    /// A buffer access was out of bounds.
    OutOfBounds {
        /// Name of the buffer.
        buffer: String,
        /// The offending index.
        index: i64,
        /// The buffer length.
        len: usize,
    },
    /// Integer division by zero.
    DivisionByZero,
    /// A variable was read before being assigned.
    UnboundVariable {
        /// The printed name of the variable.
        name: String,
    },
    /// A `Missing` value escaped into a context that cannot represent it
    /// (e.g. a store into an integer buffer).
    UnexpectedMissing {
        /// Description of the context.
        context: String,
    },
    /// The interpreter exceeded its configured step budget (used by tests to
    /// guard against non-terminating generated code).
    StepBudgetExceeded {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// A kernel output was queried under a name or kind that does not match
    /// its binding (an unknown name, a vector read through `output_scalar`,
    /// a sparse output read before any run assembled it, ...).
    BadOutputQuery {
        /// The queried output name.
        name: String,
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            RuntimeError::OutOfBounds { buffer, index, len } => {
                write!(f, "index {index} out of bounds for buffer `{buffer}` of length {len}")
            }
            RuntimeError::DivisionByZero => write!(f, "integer division by zero"),
            RuntimeError::UnboundVariable { name } => {
                write!(f, "variable `{name}` read before assignment")
            }
            RuntimeError::UnexpectedMissing { context } => {
                write!(f, "missing value reached {context}")
            }
            RuntimeError::StepBudgetExceeded { budget } => {
                write!(f, "interpreter exceeded step budget of {budget}")
            }
            RuntimeError::BadOutputQuery { name, detail } => {
                write!(f, "output `{name}` cannot be read: {detail}")
            }
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty_lowercase_messages() {
        let errs: Vec<RuntimeError> = vec![
            RuntimeError::TypeMismatch { expected: "int", found: ValueKind::Missing },
            RuntimeError::OutOfBounds { buffer: "idx".into(), index: 9, len: 3 },
            RuntimeError::DivisionByZero,
            RuntimeError::UnboundVariable { name: "p".into() },
            RuntimeError::UnexpectedMissing { context: "a store".into() },
            RuntimeError::StepBudgetExceeded { budget: 10 },
            RuntimeError::BadOutputQuery { name: "C".into(), detail: "not a scalar".into() },
        ];
        for e in errs {
            let msg = format!("{e}");
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<RuntimeError>();
    }
}
