//! Scalar runtime values.
//!
//! The target IR is dynamically typed over a small universe of scalars:
//! 64-bit integers (also used for indices and positions), 64-bit floats,
//! booleans, and the special `Missing` value introduced by the paper's
//! `permit` index modifier (§8).  `Missing` propagates through every
//! arithmetic operation and is only eliminated by `coalesce`.

use std::fmt;

use crate::error::RuntimeError;
use crate::expr::{BinOp, UnOp};

/// A scalar runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A 64-bit signed integer (also used for indices and positions).
    Int(i64),
    /// A 64-bit IEEE float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// The out-of-bounds marker produced by the `permit` index modifier.
    ///
    /// `Missing` propagates: `f(x, Missing) == Missing` for every operator
    /// except `coalesce`, which returns its first non-missing argument.
    Missing,
}

/// The "kind" (runtime type) of a [`Value`], used for buffer allocation and
/// error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// The missing marker.
    Missing,
}

impl Value {
    /// The kind of this value.
    pub fn kind(self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Bool(_) => ValueKind::Bool,
            Value::Missing => ValueKind::Missing,
        }
    }

    /// Is this the `Missing` marker?
    pub fn is_missing(self) -> bool {
        matches!(self, Value::Missing)
    }

    /// Is this value a numeric (or boolean) zero?
    ///
    /// This is the annihilator test used by the zero-annihilation rewrite
    /// rules: `Int(0)`, `Float(0.0)` and `Bool(false)` all count as zero.
    pub fn is_zero(self) -> bool {
        match self {
            Value::Int(x) => x == 0,
            Value::Float(x) => x == 0.0,
            Value::Bool(b) => !b,
            Value::Missing => false,
        }
    }

    /// Is this value a multiplicative identity (`1`, `1.0`, or `true`)?
    pub fn is_one(self) -> bool {
        match self {
            Value::Int(x) => x == 1,
            Value::Float(x) => x == 1.0,
            Value::Bool(b) => b,
            Value::Missing => false,
        }
    }

    /// Interpret the value as an integer, used for indices and positions.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::TypeMismatch`] when the value is `Missing` or
    /// a non-integral float.
    pub fn as_int(self) -> Result<i64, RuntimeError> {
        match self {
            Value::Int(x) => Ok(x),
            Value::Bool(b) => Ok(b as i64),
            Value::Float(x) if x.fract() == 0.0 => Ok(x as i64),
            other => Err(RuntimeError::TypeMismatch { expected: "integer", found: other.kind() }),
        }
    }

    /// Interpret the value as a float.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::TypeMismatch`] when the value is `Missing`.
    pub fn as_float(self) -> Result<f64, RuntimeError> {
        match self {
            Value::Int(x) => Ok(x as f64),
            Value::Float(x) => Ok(x),
            Value::Bool(b) => Ok(if b { 1.0 } else { 0.0 }),
            Value::Missing => {
                Err(RuntimeError::TypeMismatch { expected: "float", found: ValueKind::Missing })
            }
        }
    }

    /// Interpret the value as a boolean.
    ///
    /// Numbers are truthy when nonzero, mirroring the paper's use of `&&`
    /// over pattern matrices in the triangle-counting kernel.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::TypeMismatch`] when the value is `Missing`.
    pub fn as_bool(self) -> Result<bool, RuntimeError> {
        match self {
            Value::Bool(b) => Ok(b),
            Value::Int(x) => Ok(x != 0),
            Value::Float(x) => Ok(x != 0.0),
            Value::Missing => {
                Err(RuntimeError::TypeMismatch { expected: "bool", found: ValueKind::Missing })
            }
        }
    }

    /// The identity element of a reduction operator, used when initialising
    /// `where`-bound result tensors.
    pub fn identity_of(op: BinOp) -> Value {
        match op {
            BinOp::Add | BinOp::Sub => Value::Float(0.0),
            BinOp::Mul | BinOp::Div => Value::Float(1.0),
            BinOp::Min => Value::Float(f64::INFINITY),
            BinOp::Max => Value::Float(f64::NEG_INFINITY),
            BinOp::Or => Value::Bool(false),
            BinOp::And => Value::Bool(true),
            _ => Value::Float(0.0),
        }
    }

    /// Apply a binary operator to two values, promoting `Int` to `Float`
    /// where needed and propagating `Missing`.
    ///
    /// # Errors
    ///
    /// Returns an error when operand kinds are incompatible (e.g. dividing
    /// by a boolean buffer handle) — in practice only when the compiler has
    /// emitted ill-typed code, which the test suite treats as a bug.
    pub fn binop(op: BinOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
        use BinOp::*;
        if a.is_missing() || b.is_missing() {
            return Ok(Value::Missing);
        }
        // Comparison and logical operators produce booleans.
        match op {
            Eq => return Ok(Value::Bool(Self::loose_eq(a, b))),
            Ne => return Ok(Value::Bool(!Self::loose_eq(a, b))),
            Lt | Le | Gt | Ge => {
                let (x, y) = (a.as_float()?, b.as_float()?);
                let r = match op {
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                };
                return Ok(Value::Bool(r));
            }
            And => return Ok(Value::Bool(a.as_bool()? && b.as_bool()?)),
            Or => return Ok(Value::Bool(a.as_bool()? || b.as_bool()?)),
            _ => {}
        }
        // Arithmetic: stay integral when both operands are integral.
        if let (Value::Int(x), Value::Int(y)) = (a, b) {
            let r = match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(RuntimeError::DivisionByZero);
                    }
                    x / y
                }
                Min => x.min(y),
                Max => x.max(y),
                _ => unreachable!("comparison handled above"),
            };
            return Ok(Value::Int(r));
        }
        let (x, y) = (a.as_float()?, b.as_float()?);
        let r = match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            Min => x.min(y),
            Max => x.max(y),
            _ => unreachable!("comparison handled above"),
        };
        Ok(Value::Float(r))
    }

    /// Apply a unary operator to a value, propagating `Missing`.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::TypeMismatch`] for ill-typed operands.
    pub fn unop(op: UnOp, a: Value) -> Result<Value, RuntimeError> {
        if a.is_missing() {
            return Ok(Value::Missing);
        }
        Ok(match op {
            UnOp::Neg => match a {
                Value::Int(x) => Value::Int(-x),
                other => Value::Float(-other.as_float()?),
            },
            UnOp::Not => Value::Bool(!a.as_bool()?),
            UnOp::Abs => match a {
                Value::Int(x) => Value::Int(x.abs()),
                other => Value::Float(other.as_float()?.abs()),
            },
            UnOp::Sqrt => Value::Float(a.as_float()?.sqrt()),
            UnOp::Round => Value::Float(a.as_float()?.round().clamp(0.0, 255.0)),
            UnOp::Sign => match a {
                Value::Int(x) => Value::Int(x.signum()),
                other => Value::Float(other.as_float()?.signum()),
            },
        })
    }

    fn loose_eq(a: Value, b: Value) -> bool {
        match (a, b) {
            (Value::Int(x), Value::Int(y)) => x == y,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            _ => match (a.as_float(), b.as_float()) {
                (Ok(x), Ok(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Float(0.0)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(x) => write!(f, "{x}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Bool(b) => write!(f, "{b}"),
            Value::Missing => write!(f, "missing"),
        }
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Int(x)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(x: bool) -> Self {
        Value::Bool(x)
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Bool => "bool",
            ValueKind::Missing => "missing",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_propagates_through_binops() {
        for op in [BinOp::Add, BinOp::Mul, BinOp::Lt, BinOp::And, BinOp::Max] {
            let r = Value::binop(op, Value::Missing, Value::Float(3.0)).unwrap();
            assert!(r.is_missing(), "{op:?} should propagate missing");
            let r = Value::binop(op, Value::Int(1), Value::Missing).unwrap();
            assert!(r.is_missing(), "{op:?} should propagate missing (rhs)");
        }
    }

    #[test]
    fn missing_propagates_through_unops() {
        for op in [UnOp::Neg, UnOp::Abs, UnOp::Sqrt, UnOp::Round] {
            assert!(Value::unop(op, Value::Missing).unwrap().is_missing());
        }
    }

    #[test]
    fn integer_arithmetic_stays_integral() {
        let r = Value::binop(BinOp::Add, Value::Int(2), Value::Int(3)).unwrap();
        assert_eq!(r, Value::Int(5));
        let r = Value::binop(BinOp::Min, Value::Int(2), Value::Int(3)).unwrap();
        assert_eq!(r, Value::Int(2));
        let r = Value::binop(BinOp::Max, Value::Int(2), Value::Int(3)).unwrap();
        assert_eq!(r, Value::Int(3));
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        let r = Value::binop(BinOp::Mul, Value::Int(2), Value::Float(1.5)).unwrap();
        assert_eq!(r, Value::Float(3.0));
    }

    #[test]
    fn comparisons_produce_booleans() {
        assert_eq!(
            Value::binop(BinOp::Lt, Value::Int(1), Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::binop(BinOp::Eq, Value::Float(2.0), Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Value::binop(BinOp::Ge, Value::Int(1), Value::Int(2)).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn zero_and_one_tests() {
        assert!(Value::Int(0).is_zero());
        assert!(Value::Float(0.0).is_zero());
        assert!(Value::Bool(false).is_zero());
        assert!(!Value::Missing.is_zero());
        assert!(Value::Int(1).is_one());
        assert!(Value::Float(1.0).is_one());
        assert!(Value::Bool(true).is_one());
    }

    #[test]
    fn division_by_integer_zero_errors() {
        let err = Value::binop(BinOp::Div, Value::Int(1), Value::Int(0)).unwrap_err();
        assert!(matches!(err, RuntimeError::DivisionByZero));
    }

    #[test]
    fn identities_match_reduction_ops() {
        assert!(Value::identity_of(BinOp::Add).is_zero());
        assert!(Value::identity_of(BinOp::Mul).is_one());
        assert_eq!(Value::identity_of(BinOp::Min), Value::Float(f64::INFINITY));
        assert_eq!(Value::identity_of(BinOp::Or), Value::Bool(false));
    }

    #[test]
    fn round_clamps_to_u8_range_like_the_alpha_blend_kernel() {
        assert_eq!(Value::unop(UnOp::Round, Value::Float(300.2)).unwrap(), Value::Float(255.0));
        assert_eq!(Value::unop(UnOp::Round, Value::Float(-3.0)).unwrap(), Value::Float(0.0));
        assert_eq!(Value::unop(UnOp::Round, Value::Float(7.6)).unwrap(), Value::Float(8.0));
    }

    #[test]
    fn display_is_nonempty() {
        for v in [Value::Int(3), Value::Float(2.5), Value::Bool(true), Value::Missing] {
            assert!(!format!("{v}").is_empty());
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Bool(true).as_int().unwrap(), 1);
        assert_eq!(Value::Float(4.0).as_int().unwrap(), 4);
        assert!(Value::Float(4.5).as_int().is_err());
    }
}
