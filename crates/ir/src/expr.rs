//! Expressions of the target IR.
//!
//! Expressions are pure (they never mutate buffers or variables) and are
//! built from literals, variables, buffer loads, unary/binary operators, a
//! ternary select, an n-ary `coalesce` (the paper's `missing`-eliminating
//! operator, §8), and a sorted-search intrinsic used by stepper/jumper
//! `seek` functions to implement skipping and galloping.

use std::fmt;

use crate::buffer::BufId;
use crate::value::Value;
use crate::var::Var;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Logical and (operands coerced to booleans).
    And,
    /// Logical or.
    Or,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

impl BinOp {
    /// The source-level symbol of the operator (used by the pretty-printer).
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }

    /// Whether the operator is printed as a function call (`min(a, b)`)
    /// rather than infix.
    pub fn is_call_style(self) -> bool {
        matches!(self, BinOp::Min | BinOp::Max)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
    /// Absolute value (used by the PackBits format's signed run lengths).
    Abs,
    /// Square root (used by the all-pairs image similarity kernel).
    Sqrt,
    /// Round-and-clamp to `0..=255` (the alpha blending kernel's
    /// `round(UInt8, ...)`).
    Round,
    /// Sign.
    Sign,
}

impl UnOp {
    /// The source-level name of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
            UnOp::Round => "round_u8",
            UnOp::Sign => "sign",
        }
    }
}

/// A pure expression of the target IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A variable read.
    Var(Var),
    /// `buf[index]`.
    Load {
        /// The buffer read from.
        buf: BufId,
        /// Element index (0-based).
        index: Box<Expr>,
    },
    /// The length of a buffer, as an integer.
    BufLen(
        /// The buffer whose length is taken.
        BufId,
    ),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        arg: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `if cond { then } else { otherwise }` as an expression.
    Select {
        /// Condition.
        cond: Box<Expr>,
        /// Value when the condition holds.
        then: Box<Expr>,
        /// Value otherwise.
        otherwise: Box<Expr>,
    },
    /// The first non-`missing` argument (all-`missing` yields `missing`).
    Coalesce(
        /// Candidate expressions, in priority order.
        Vec<Expr>,
    ),
    /// Lower-bound binary search: the first position `p` in `lo..=hi` such
    /// that `buf[p] >= key`, or `hi + 1` when no such position exists.
    ///
    /// When `on_abs` is set the comparison uses `abs(buf[p])`, which the
    /// PackBits format needs because it stores literal-region boundaries as
    /// negated coordinates.
    Search {
        /// The sorted coordinate buffer searched.
        buf: BufId,
        /// Lowest candidate position (inclusive).
        lo: Box<Expr>,
        /// Highest candidate position (inclusive).
        hi: Box<Expr>,
        /// The key searched for.
        key: Box<Expr>,
        /// Compare against `abs(buf[p])` instead of `buf[p]`.
        on_abs: bool,
    },
}

impl Expr {
    /// Integer literal.
    pub fn int(x: i64) -> Expr {
        Expr::Lit(Value::Int(x))
    }

    /// Float literal.
    pub fn float(x: f64) -> Expr {
        Expr::Lit(Value::Float(x))
    }

    /// Boolean literal.
    pub fn bool(x: bool) -> Expr {
        Expr::Lit(Value::Bool(x))
    }

    /// The `missing` literal.
    pub fn missing() -> Expr {
        Expr::Lit(Value::Missing)
    }

    /// `buf[index]`.
    pub fn load(buf: BufId, index: Expr) -> Expr {
        Expr::Load { buf, index: Box::new(index) }
    }

    /// Build a binary operation.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Build a unary operation.
    pub fn unary(op: UnOp, arg: Expr) -> Expr {
        Expr::Unary { op, arg: Box::new(arg) }
    }

    /// `lhs + rhs`.
    #[allow(clippy::should_implement_trait)] // associated constructor, takes no `self`
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Mul, lhs, rhs)
    }

    /// `min(lhs, rhs)`.
    pub fn min(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Min, lhs, rhs)
    }

    /// `max(lhs, rhs)`.
    pub fn max(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Max, lhs, rhs)
    }

    /// `lhs == rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Eq, lhs, rhs)
    }

    /// `lhs <= rhs`.
    pub fn le(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Le, lhs, rhs)
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Lt, lhs, rhs)
    }

    /// `lhs >= rhs`.
    pub fn ge(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Ge, lhs, rhs)
    }

    /// `if cond { then } else { otherwise }`.
    pub fn select(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::Select { cond: Box::new(cond), then: Box::new(then), otherwise: Box::new(otherwise) }
    }

    /// Is this expression the literal value `v`?
    pub fn is_lit(&self, v: Value) -> bool {
        matches!(self, Expr::Lit(x) if *x == v)
    }

    /// If the expression is a literal, return it.
    pub fn as_lit(&self) -> Option<Value> {
        match self {
            Expr::Lit(v) => Some(*v),
            _ => None,
        }
    }

    /// Substitute every occurrence of variable `var` with `replacement`,
    /// returning the rewritten expression.
    ///
    /// Variables are globally unique (see [`crate::Names`]) so no capture can
    /// occur.
    pub fn substitute(&self, var: Var, replacement: &Expr) -> Expr {
        self.map(&mut |e| match e {
            Expr::Var(v) if *v == var => Some(replacement.clone()),
            _ => None,
        })
    }

    /// Rewrite the expression bottom-up: `f` is applied to every node after
    /// its children have been rewritten; returning `Some` replaces the node.
    pub fn map(&self, f: &mut dyn FnMut(&Expr) -> Option<Expr>) -> Expr {
        let rebuilt = match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::BufLen(_) => self.clone(),
            Expr::Load { buf, index } => Expr::Load { buf: *buf, index: Box::new(index.map(f)) },
            Expr::Unary { op, arg } => Expr::Unary { op: *op, arg: Box::new(arg.map(f)) },
            Expr::Binary { op, lhs, rhs } => {
                Expr::Binary { op: *op, lhs: Box::new(lhs.map(f)), rhs: Box::new(rhs.map(f)) }
            }
            Expr::Select { cond, then, otherwise } => Expr::Select {
                cond: Box::new(cond.map(f)),
                then: Box::new(then.map(f)),
                otherwise: Box::new(otherwise.map(f)),
            },
            Expr::Coalesce(args) => Expr::Coalesce(args.iter().map(|a| a.map(f)).collect()),
            Expr::Search { buf, lo, hi, key, on_abs } => Expr::Search {
                buf: *buf,
                lo: Box::new(lo.map(f)),
                hi: Box::new(hi.map(f)),
                key: Box::new(key.map(f)),
                on_abs: *on_abs,
            },
        };
        f(&rebuilt).unwrap_or(rebuilt)
    }

    /// Collect the free variables of the expression into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        self.visit(&mut |e| {
            if let Expr::Var(v) = e {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        });
    }

    /// Does the expression mention variable `var`?
    pub fn mentions(&self, var: Var) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if let Expr::Var(v) = e {
                if *v == var {
                    found = true;
                }
            }
        });
        found
    }

    /// Visit every node of the expression tree (pre-order).
    pub fn visit(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::BufLen(_) => {}
            Expr::Load { index, .. } => index.visit(f),
            Expr::Unary { arg, .. } => arg.visit(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Select { cond, then, otherwise } => {
                cond.visit(f);
                then.visit(f);
                otherwise.visit(f);
            }
            Expr::Coalesce(args) => args.iter().for_each(|a| a.visit(f)),
            Expr::Search { lo, hi, key, .. } => {
                lo.visit(f);
                hi.visit(f);
                key.visit(f);
            }
        }
    }

    /// Perform a handful of purely syntactic simplifications that keep
    /// generated code readable: constant folding of integer arithmetic and
    /// `x + 0` / `x - 0` / `min(x, x)` style identities.
    ///
    /// This is *not* the structural rewrite engine of the paper (that lives
    /// in `finch-rewrite`); it only tidies index arithmetic.
    pub fn simplified(&self) -> Expr {
        self.map(&mut |e| match e {
            Expr::Binary { op, lhs, rhs } => {
                if let (Some(Value::Int(a)), Some(Value::Int(b))) = (lhs.as_lit(), rhs.as_lit()) {
                    if let Ok(v) = Value::binop(*op, Value::Int(a), Value::Int(b)) {
                        return Some(Expr::Lit(v));
                    }
                }
                match op {
                    BinOp::Add => {
                        if rhs.is_lit(Value::Int(0)) {
                            return Some((**lhs).clone());
                        }
                        if lhs.is_lit(Value::Int(0)) {
                            return Some((**rhs).clone());
                        }
                        None
                    }
                    BinOp::Sub if rhs.is_lit(Value::Int(0)) => Some((**lhs).clone()),
                    BinOp::Min | BinOp::Max if lhs == rhs => Some((**lhs).clone()),
                    _ => None,
                }
            }
            _ => None,
        })
    }
}

impl From<Value> for Expr {
    fn from(v: Value) -> Self {
        Expr::Lit(v)
    }
}

impl From<Var> for Expr {
    fn from(v: Var) -> Self {
        Expr::Var(v)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Names;

    #[test]
    fn substitution_replaces_all_occurrences() {
        let mut names = Names::new();
        let i = names.fresh("i");
        let e = Expr::add(Expr::Var(i), Expr::mul(Expr::Var(i), Expr::int(2)));
        let s = e.substitute(i, &Expr::int(5));
        assert!(!s.mentions(i));
        let mut vars = Vec::new();
        s.collect_vars(&mut vars);
        assert!(vars.is_empty());
    }

    #[test]
    fn substitution_does_not_touch_other_vars() {
        let mut names = Names::new();
        let i = names.fresh("i");
        let j = names.fresh("j");
        let e = Expr::add(Expr::Var(i), Expr::Var(j));
        let s = e.substitute(i, &Expr::int(1));
        assert!(s.mentions(j));
    }

    #[test]
    fn simplify_folds_integer_arithmetic() {
        let e = Expr::add(Expr::int(2), Expr::int(3)).simplified();
        assert_eq!(e, Expr::int(5));
        let e = Expr::sub(Expr::mul(Expr::int(4), Expr::int(2)), Expr::int(0)).simplified();
        assert_eq!(e, Expr::int(8));
    }

    #[test]
    fn simplify_removes_additive_identity() {
        let mut names = Names::new();
        let x = names.fresh("x");
        let e = Expr::add(Expr::Var(x), Expr::int(0)).simplified();
        assert_eq!(e, Expr::Var(x));
        let e = Expr::add(Expr::int(0), Expr::Var(x)).simplified();
        assert_eq!(e, Expr::Var(x));
    }

    #[test]
    fn simplify_collapses_min_of_equal_operands() {
        let mut names = Names::new();
        let x = names.fresh("x");
        let e = Expr::min(Expr::Var(x), Expr::Var(x)).simplified();
        assert_eq!(e, Expr::Var(x));
    }

    #[test]
    fn collect_vars_deduplicates() {
        let mut names = Names::new();
        let i = names.fresh("i");
        let j = names.fresh("j");
        let e = Expr::add(Expr::Var(i), Expr::add(Expr::Var(j), Expr::Var(i)));
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn literal_predicates() {
        assert!(Expr::int(0).is_lit(Value::Int(0)));
        assert!(!Expr::int(1).is_lit(Value::Int(0)));
        assert_eq!(Expr::float(2.0).as_lit(), Some(Value::Float(2.0)));
        assert_eq!(Expr::missing().as_lit(), Some(Value::Missing));
    }

    #[test]
    fn builders_produce_expected_shapes() {
        let e = Expr::select(Expr::bool(true), Expr::int(1), Expr::int(2));
        assert!(matches!(e, Expr::Select { .. }));
        let e = Expr::Coalesce(vec![Expr::missing(), Expr::int(3)]);
        assert!(matches!(e, Expr::Coalesce(args) if args.len() == 2));
    }

    #[test]
    fn operator_symbols_are_distinct() {
        use std::collections::HashSet;
        let ops = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Min,
            BinOp::Max,
            BinOp::And,
            BinOp::Or,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
        ];
        let set: HashSet<_> = ops.iter().map(|o| o.symbol()).collect();
        assert_eq!(set.len(), ops.len());
    }
}
