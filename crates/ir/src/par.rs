//! Parallel sharded execution of a compiled bytecode program.
//!
//! [`run_sharded`] drives a program whose [`ShardPlan`]
//! (attached by the `shard` optimization pass) marks top-level counted
//! loops safe to split across worker threads.  Execution walks the
//! instruction stream serially between planned regions; at each region
//! it splits the loop's iteration space `[lo, hi]` into contiguous
//! per-thread row ranges, runs every range on a clone of the VM state
//! against copy-on-role shard buffers, and deterministically stitches
//! the per-shard results back into the master state:
//!
//! - **Partitioned** buffers copy each shard's own element range back —
//!   each element is owned by exactly one shard, so the result is the
//!   serial buffer bit for bit.
//! - **Segment** buffers concatenate per-shard appended suffixes in
//!   shard order, reproducing the serial append order.
//! - **SegmentPos** (fiber-boundary) buffers do the same, shifting each
//!   shard's recorded lengths by the entries earlier shards appended to
//!   the data array.
//! - **Reduction** buffers combine per-shard partial accumulators with
//!   the loop's own associative integer operator, in shard order.
//! - **Private** (iteration-scratch) buffers adopt the last shard's
//!   copy: the analysis proved every iteration fully re-defines them,
//!   so the last shard's final state *is* the serial final state.
//!
//! [`crate::interp::ExecStats`] are summed exactly — every kernel op
//! accounts scalar-equivalent per-iteration work, so regrouping
//! iterations into shards cannot change the totals — and the master VM
//! adopts the last shard's register file (the analysis proved every
//! live register is re-defined by the final iteration, which the last
//! shard ran).  The master's outputs, stats, and registers are
//! therefore bit-identical to a serial [`crate::vm::Vm::run`].
//!
//! **The parallel path is never allowed to be wrong.**  Anything
//! unexpected at runtime — a shard faulting, panicking, or writing a
//! buffer outside its planned roles — discards every shard-local state
//! and re-runs the region serially on the untouched master, faithfully
//! reproducing serial behaviour (including the fault, if any).
//!
//! Worker threads come from a lazily-grown process-wide pool, so
//! repeated kernel runs do not pay thread spawn latency.  Shard `0`
//! always runs on the calling thread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex, OnceLock};

use crate::buffer::{BufId, Buffer, BufferSet, VmBufs};
use crate::bytecode::{Program, ShardRegion, ShardRole};
use crate::error::RuntimeError;
use crate::expr::BinOp;
use crate::vm::{Tag, Vm};

// Test hook: corrupt the shard partition so two shards' row ranges
// overlap.  Used by the mutation-coverage tests to prove the sharded
// witness validation catches a broken plan.
#[cfg(test)]
thread_local! {
    pub(crate) static CORRUPT_PARTITION: std::cell::Cell<bool> =
        const { std::cell::Cell::new(false) };
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    tx: mpsc::Sender<Job>,
    rx: Arc<Mutex<mpsc::Receiver<Job>>>,
    workers: usize,
}

static POOL: OnceLock<Mutex<Pool>> = OnceLock::new();

/// Submit jobs to the process-wide worker pool, growing it to at least
/// `want` workers first.  Worker threads live for the process lifetime.
fn pool_submit(want: usize, jobs: Vec<Job>) {
    let pool = POOL.get_or_init(|| {
        let (tx, rx) = mpsc::channel::<Job>();
        Mutex::new(Pool { tx, rx: Arc::new(Mutex::new(rx)), workers: 0 })
    });
    let tx = {
        let mut p = pool.lock().unwrap_or_else(|e| e.into_inner());
        while p.workers < want {
            let rx = Arc::clone(&p.rx);
            std::thread::Builder::new()
                .name(format!("finch-shard-{}", p.workers))
                .spawn(move || loop {
                    let job = match rx.lock() {
                        Ok(guard) => guard.recv(),
                        Err(_) => break,
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break,
                    }
                })
                .expect("failed to spawn shard worker thread");
            p.workers += 1;
        }
        p.tx.clone()
    };
    for job in jobs {
        tx.send(job).expect("shard worker pool hung up");
    }
}

/// Run `jobs` on the process-wide worker pool, blocking until every job
/// has completed (panicking jobs count as completed; the panic is
/// contained so it cannot take a pool worker down).  The pool is grown
/// to at least `workers` threads first.  This is the same pool the
/// sharded execution tier uses — long-lived services (and the `serve`
/// bench driver) replay concurrent request streams over it without
/// paying per-request thread spawns.
///
/// Callers whose jobs themselves run sharded kernels should use
/// dedicated threads instead: a job blocking on shard results while
/// every pool worker is occupied by other jobs can deadlock the pool.
pub fn pool_run(workers: usize, jobs: Vec<Box<dyn FnOnce() + Send + 'static>>) {
    let n = jobs.len();
    if n == 0 {
        return;
    }
    let (tx, rx) = mpsc::channel::<()>();
    let wrapped: Vec<Job> = jobs
        .into_iter()
        .map(|job| {
            let tx = tx.clone();
            let wrapped: Job = Box::new(move || {
                let _ = catch_unwind(AssertUnwindSafe(job));
                let _ = tx.send(());
            });
            wrapped
        })
        .collect();
    pool_submit(workers.max(1), wrapped);
    for _ in 0..n {
        let _ = rx.recv();
    }
}

/// A `Send`-able raw pointer to data the master thread keeps alive (and
/// unmodified) while it blocks on the per-region done channel.  The
/// channel receive provides the happens-before edge back to the master.
struct SharedPtr<T>(*const T);

unsafe impl<T: Sync> Send for SharedPtr<T> {}

impl<T> SharedPtr<T> {
    /// # Safety
    /// The master thread must keep the pointee alive and unmodified
    /// until every worker holding this pointer has finished.
    unsafe fn get(&self) -> &T {
        unsafe { &*self.0 }
    }
}

// ---------------------------------------------------------------------
// Shard buffer views
// ---------------------------------------------------------------------

/// The buffer view one shard executes against: buffers with a planned
/// role are private per-shard copies; everything else reads through to
/// the shared master set.  A write to a buffer *without* a role is
/// unexpected (the plan proved there are none) — it is contained by
/// promoting the buffer to a private copy and flagged, and the master
/// then discards the whole parallel attempt.
struct ShardBufs<'a> {
    shared: &'a BufferSet,
    private: Vec<Option<Buffer>>,
    unexpected_write: bool,
}

impl VmBufs for ShardBufs<'_> {
    #[inline]
    fn get(&self, id: BufId) -> &Buffer {
        match &self.private[id.index()] {
            Some(b) => b,
            None => self.shared.get(id),
        }
    }
    #[inline]
    fn get_mut(&mut self, id: BufId) -> &mut Buffer {
        let slot = &mut self.private[id.index()];
        if slot.is_none() {
            *slot = Some(self.shared.get(id).clone());
            self.unexpected_write = true;
        }
        slot.as_mut().expect("just filled")
    }
    #[inline]
    fn name(&self, id: BufId) -> &str {
        self.shared.name(id)
    }
}

/// The reduction identity of an associative integer operator.
fn reduction_identity(op: BinOp) -> Option<i64> {
    match op {
        BinOp::Add => Some(0),
        BinOp::Min => Some(i64::MAX),
        BinOp::Max => Some(i64::MIN),
        _ => None,
    }
}

/// The element range of a partitioned buffer owned by rows `[a, b]`,
/// clamped to the buffer length.
fn owned_range(len: usize, stride: i64, a: i64, b: i64) -> (usize, usize) {
    let from = (a as i128) * (stride as i128);
    let to = ((b as i128) + 1) * (stride as i128);
    let clamp = |x: i128| -> usize {
        if x <= 0 {
            0
        } else if x >= len as i128 {
            len
        } else {
            x as usize
        }
    };
    (clamp(from), clamp(to))
}

/// Copy elements `[from, to)` of `src` over the same range of `dst`.
/// Both buffers have the same kind and length by construction.
fn copy_range(dst: &mut Buffer, src: &Buffer, from: usize, to: usize) {
    if from >= to {
        return;
    }
    match (dst, src) {
        (Buffer::I64(d), Buffer::I64(s)) => d[from..to].copy_from_slice(&s[from..to]),
        (Buffer::F64(d), Buffer::F64(s)) => d[from..to].copy_from_slice(&s[from..to]),
        (Buffer::U8(d), Buffer::U8(s)) => d[from..to].copy_from_slice(&s[from..to]),
        (Buffer::Bool(d), Buffer::Bool(s)) => d[from..to].copy_from_slice(&s[from..to]),
        _ => debug_assert!(false, "shard buffer kind changed under partitioned copy"),
    }
}

/// A zero-filled buffer of the same kind and length as `like`.
fn zeroed_like(like: &Buffer) -> Buffer {
    match like {
        Buffer::I64(v) => Buffer::I64(vec![0i64; v.len()].into()),
        Buffer::F64(v) => Buffer::F64(vec![0f64; v.len()].into()),
        Buffer::U8(v) => Buffer::U8(vec![0u8; v.len()]),
        Buffer::Bool(v) => Buffer::Bool(vec![false; v.len()]),
    }
}

/// Build one shard's private buffers for the region, or `None` when a
/// role's precondition does not hold at runtime (wrong buffer kind, an
/// out-of-range accumulator index) — the caller then runs serially.
fn build_private(
    shared: &BufferSet,
    region: &ShardRegion,
    a: i64,
    b: i64,
    first: bool,
) -> Option<Vec<Option<Buffer>>> {
    let mut private: Vec<Option<Buffer>> = (0..shared.len()).map(|_| None).collect();
    for (buf, role) in &region.roles {
        if buf.index() >= private.len() {
            return None;
        }
        let master = shared.get(*buf);
        let copy = match *role {
            ShardRole::Partitioned { stride } => {
                if stride < 1 {
                    return None;
                }
                let (from, to) = owned_range(master.len(), stride, a, b);
                let mut fresh = zeroed_like(master);
                copy_range(&mut fresh, master, from, to);
                fresh
            }
            ShardRole::Reduction { index, op } => {
                let identity = reduction_identity(op)?;
                let mut clone = master.clone();
                match &mut clone {
                    Buffer::I64(v) => {
                        let i = usize::try_from(index).ok()?;
                        if i >= v.len() {
                            return None;
                        }
                        if !first {
                            v[i] = identity;
                        }
                    }
                    _ => return None,
                }
                clone
            }
            ShardRole::Segment | ShardRole::SegmentPos { .. } | ShardRole::Private => {
                master.clone()
            }
        };
        private[buf.index()] = Some(copy);
    }
    Some(private)
}

// ---------------------------------------------------------------------
// Region execution
// ---------------------------------------------------------------------

/// What one shard hands back to the master.
struct ShardOut {
    vm: Vm,
    private: Vec<Option<Buffer>>,
    unexpected: bool,
    pc: usize,
}

/// Run one shard: clone the VM, reseed the loop registers to the
/// shard's row range, and execute the region against shard buffers.
fn shard_exec(
    program: &Program,
    shared: &BufferSet,
    region: &ShardRegion,
    base_vm: &Vm,
    a: i64,
    b: i64,
    first: bool,
) -> Result<ShardOut, RuntimeError> {
    let private = match build_private(shared, region, a, b, first) {
        Some(p) => p,
        // Signal "run serially" through the unexpected-write flag.
        None => {
            return Ok(ShardOut {
                vm: base_vm.clone(),
                private: Vec::new(),
                unexpected: true,
                pc: region.start as usize,
            })
        }
    };
    let mut vm = base_vm.clone();
    vm.ints[region.counter.index()] = a;
    vm.ints[region.hi.index()] = b;
    let mut bufs = ShardBufs { shared, private, unexpected_write: false };
    let pc = vm.run_span(program, &mut bufs, region.start as usize, region.end as usize)?;
    Ok(ShardOut { vm, private: bufs.private, unexpected: bufs.unexpected_write, pc })
}

/// Split the inclusive iteration range `[lo, hi]` into `shards`
/// contiguous sub-ranges covering it exactly.
fn partition(lo: i64, hi: i64, shards: usize) -> Vec<(i64, i64)> {
    let trip = (hi as i128) - (lo as i128) + 1;
    debug_assert!(trip >= shards as i128 && shards >= 1);
    let base = trip / shards as i128;
    let rem = (trip % shards as i128) as usize;
    let mut ranges = Vec::with_capacity(shards);
    let mut next = lo as i128;
    for k in 0..shards {
        let size = base + i128::from(k < rem);
        let a = next;
        let b = next + size - 1;
        next = b + 1;
        ranges.push((a as i64, b as i64));
    }
    #[cfg(test)]
    CORRUPT_PARTITION.with(|c| {
        if c.get() && ranges.len() >= 2 {
            // Overlap shard 0 into shard 1's first row: that row runs
            // twice, which the sharded witness validation must catch
            // (duplicated appends / double-counted reductions, and an
            // inflated iteration count in the stats).
            ranges[0].1 = (ranges[0].1 + 1).min(hi);
        }
    });
    ranges
}

/// Run `program` to completion, executing planned shard regions across
/// up to `threads` threads and everything else serially on the calling
/// thread.  With `threads <= 1`, or for a program with an empty
/// [`ShardPlan`], this is exactly [`Vm::run`].
///
/// Outputs, registers, and [`crate::interp::ExecStats`] are
/// bit-identical to the serial run; any runtime surprise inside a shard
/// falls back to serial re-execution of that region.
///
/// # Errors
///
/// Exactly the serial program's own [`RuntimeError`]s: a faulting
/// region is re-run serially so the fault surfaces at the same point
/// with the same master state as `Vm::run`.
pub fn run_sharded(
    vm: &mut Vm,
    program: &Program,
    bufs: &mut BufferSet,
    threads: usize,
) -> Result<(), RuntimeError> {
    let plan = program.shard_plan();
    let code_len = program.code().len();
    if threads <= 1 || plan.is_empty() {
        return vm.run(program, bufs);
    }
    let mut pc = 0usize;
    for region in &plan.regions {
        let start = region.start as usize;
        if pc > start {
            continue; // control already jumped past this region
        }
        if pc < start {
            pc = vm.run_span(program, bufs, pc, start)?;
        }
        if pc != start {
            continue; // control left the straight-line path before the region
        }
        pc = run_region(vm, program, bufs, region, threads)?;
    }
    vm.run_span(program, bufs, pc, code_len)?;
    Ok(())
}

/// Execute one planned region, in parallel when profitable, and leave
/// the master state exactly as a serial execution of the region would.
/// Returns the pc after the region.
fn run_region(
    vm: &mut Vm,
    program: &Program,
    bufs: &mut BufferSet,
    region: &ShardRegion,
    threads: usize,
) -> Result<usize, RuntimeError> {
    let start = region.start as usize;
    let end = region.end as usize;
    let serial = |vm: &mut Vm, bufs: &mut BufferSet| vm.run_span(program, bufs, start, end);

    // The loop bounds live in the counter/hi int lanes; anything else
    // (possible only on hand-built untyped programs) runs serially.
    let cidx = region.counter.index();
    let hidx = region.hi.index();
    if vm.tags[cidx] != Tag::Int || vm.tags[hidx] != Tag::Int {
        return serial(vm, bufs);
    }
    let lo = vm.ints[cidx];
    let hi = vm.ints[hidx];
    let trip = (hi as i128) - (lo as i128) + 1;
    if trip < 2 {
        return serial(vm, bufs);
    }
    let shards = threads.min(trip.min(i128::from(u16::MAX)) as usize);
    let ranges = partition(lo, hi, shards);

    // Fan out shards 1.. to the pool; shard 0 runs here.  The workers
    // only *read* the program, master buffers, and master VM snapshot;
    // the channel receive of every result is the happens-before edge
    // that makes their shard-local state visible to the master.
    let base_vm = vm.clone();
    let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<Result<ShardOut, RuntimeError>>)>();
    let (outs, failed) = {
        let shared: &BufferSet = &*bufs;
        let jobs: Vec<Job> = ranges
            .iter()
            .enumerate()
            .skip(1)
            .map(|(k, &(a, b))| {
                let program = SharedPtr(program as *const Program);
                let shared = SharedPtr(shared as *const BufferSet);
                let base = SharedPtr(&base_vm as *const Vm);
                let region = SharedPtr(region as *const ShardRegion);
                let tx = tx.clone();
                let job: Job = Box::new(move || {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        // Safety: the master blocks on `rx` for this shard's
                        // result before touching or dropping any pointee.
                        let (program, shared, base, region) =
                            unsafe { (program.get(), shared.get(), base.get(), region.get()) };
                        shard_exec(program, shared, region, base, a, b, false)
                    }));
                    let _ = tx.send((k, out));
                });
                job
            })
            .collect();
        let spawned = jobs.len();
        pool_submit(threads.saturating_sub(1), jobs);

        let first = shard_exec(program, shared, region, &base_vm, ranges[0].0, ranges[0].1, true);

        let mut outs: Vec<Option<ShardOut>> = (0..shards).map(|_| None).collect();
        let mut failed = false;
        match first {
            Ok(out) => outs[0] = Some(out),
            Err(_) => failed = true,
        }
        for _ in 0..spawned {
            match rx.recv() {
                Ok((k, Ok(Ok(out)))) => outs[k] = Some(out),
                Ok((_, Ok(Err(_)))) | Ok((_, Err(_))) => failed = true,
                Err(_) => failed = true,
            }
        }
        (outs, failed)
    };
    drop(rx);

    let ok =
        !failed && outs.iter().all(|o| o.as_ref().is_some_and(|o| !o.unexpected && o.pc == end));
    if !ok {
        // Discard every shard-local state and reproduce serial
        // behaviour (including any fault) on the untouched master.
        return serial(vm, bufs);
    }
    let outs: Vec<ShardOut> = outs.into_iter().map(|o| o.expect("checked above")).collect();
    stitch(vm, bufs, region, &ranges, outs);

    // The serial run checks the step and allocation budgets as it
    // counts; the stitched totals are bit-identical, so re-check them
    // once here.
    if let Some(budget) = vm.step_budget {
        if vm.stats.stmts > budget {
            return Err(RuntimeError::StepBudgetExceeded { budget });
        }
    }
    vm.alloc.check()?;
    Ok(end)
}

/// Deterministically merge per-shard results into the master state.
fn stitch(
    vm: &mut Vm,
    bufs: &mut BufferSet,
    region: &ShardRegion,
    ranges: &[(i64, i64)],
    mut outs: Vec<ShardOut>,
) {
    // Stats: each shard started from the master's counters, so its
    // delta is its own work; regrouping iterations cannot change the
    // per-iteration accounting, so the sum is the serial total.
    let s0 = vm.stats;
    let a0 = vm.alloc.used();
    for out in &outs {
        vm.stats.stmts += out.vm.stats.stmts - s0.stmts;
        vm.stats.loop_iters += out.vm.stats.loop_iters - s0.loop_iters;
        vm.stats.loads += out.vm.stats.loads - s0.loads;
        vm.stats.stores += out.vm.stats.stores - s0.stores;
        vm.stats.searches += out.vm.stats.searches - s0.searches;
        vm.alloc.add_used(out.vm.alloc.used() - a0);
    }

    // Buffers, role by role.
    for (buf, role) in &region.roles {
        match *role {
            ShardRole::Partitioned { stride } => {
                let master = bufs.get_mut(*buf);
                for (out, &(a, b)) in outs.iter().zip(ranges) {
                    let src = out.private[buf.index()].as_ref().expect("role buffer is private");
                    let (from, to) = owned_range(master.len(), stride, a, b);
                    copy_range(master, src, from, to);
                }
            }
            ShardRole::Reduction { index, op } => {
                let i = index as usize;
                let mut acc: Option<i64> = None;
                for out in &outs {
                    let Some(Buffer::I64(v)) = &out.private[buf.index()] else { continue };
                    let x = v[i];
                    acc = Some(match acc {
                        None => x,
                        Some(a) => Vm::int_arith(op, a, x),
                    });
                }
                if let (Some(total), Buffer::I64(v)) = (acc, bufs.get_mut(*buf)) {
                    v[i] = total;
                }
            }
            ShardRole::Segment => {
                let prologue = bufs.get(*buf).len();
                for out in &outs {
                    let src = out.private[buf.index()].as_ref().expect("role buffer is private");
                    append_suffix(bufs.get_mut(*buf), src, prologue, 0);
                }
            }
            ShardRole::SegmentPos { data } => {
                let prologue = bufs.get(*buf).len();
                // Each shard recorded lengths of its *own* data array;
                // shift by everything earlier shards appended to it.
                let data_prologue = bufs.get(data).len();
                let mut offset = 0i64;
                for out in &outs {
                    let src = out.private[buf.index()].as_ref().expect("role buffer is private");
                    append_suffix(bufs.get_mut(*buf), src, prologue, offset);
                    let appended = match &out.private[data.index()] {
                        Some(d) => d.len().saturating_sub(data_prologue) as i64,
                        None => 0,
                    };
                    offset += appended;
                }
            }
            ShardRole::Private => {
                // Every iteration fully re-defines the scratch, so the
                // last shard's copy is the serial final state.
                if let Some(last) = outs.last_mut() {
                    if let Some(b) = last.private[buf.index()].take() {
                        *bufs.get_mut(*buf) = b;
                    }
                }
            }
        }
    }

    // Registers: the last shard ran the final iterations, and the
    // analysis proved every downstream-read register is re-defined by
    // them, so its register file is the serial one.
    let last = outs.pop().expect("at least two shards");
    vm.tags = last.vm.tags;
    vm.ints = last.vm.ints;
    vm.floats = last.vm.floats;
    vm.bools = last.vm.bools;
}

/// Append `src[prologue..]` to `dst`, adding `offset` to integer
/// entries (the fiber-boundary shift; zero for plain segments).
fn append_suffix(dst: &mut Buffer, src: &Buffer, prologue: usize, offset: i64) {
    match (dst, src) {
        (Buffer::I64(d), Buffer::I64(s)) => {
            if offset == 0 {
                d.extend_from_slice(&s[prologue.min(s.len())..]);
            } else {
                for &e in &s[prologue.min(s.len())..] {
                    d.push(e.wrapping_add(offset));
                }
            }
        }
        (Buffer::F64(d), Buffer::F64(s)) => d.extend_from_slice(&s[prologue.min(s.len())..]),
        (Buffer::U8(d), Buffer::U8(s)) => d.extend_from_slice(&s[prologue.min(s.len())..]),
        (Buffer::Bool(d), Buffer::Bool(s)) => d.extend_from_slice(&s[prologue.min(s.len())..]),
        _ => debug_assert!(false, "shard buffer kind changed under segment stitch"),
    }
}
