//! # finch-ir — the target imperative IR of the Looplets/Finch reproduction
//!
//! The Finch compiler described in *"Looplets: A Language for Structured
//! Coiteration"* (CGO 2023) progressively lowers concrete index notation into
//! imperative loop code.  The original implementation emits Julia source and
//! relies on Julia's `eval`; this reproduction instead emits the small typed
//! imperative IR defined in this crate, which can be
//!
//! * pretty-printed as readable pseudo-Rust (see [`pretty`]), reproducing the
//!   code listings of the paper's Figures 1 and 6,
//! * executed directly by the interpreter in [`interp`], which also counts
//!   the work performed (loop iterations, loads, stores, binary searches) so
//!   that the paper's *asymptotic* claims can be checked in tests, and
//! * compiled once to a flat register [`bytecode`] and executed by the
//!   register VM in [`vm`] — the default execution engine, which maintains
//!   the same work counters in a tight dispatch loop over unboxed typed
//!   registers.  The tree-walker is retained as the semantics oracle the
//!   bytecode engine is differential-tested against.
//!
//! The IR is deliberately tiny: scalar [`Value`]s, named [`Var`]iables,
//! expressions ([`Expr`]) over typed flat [`Buffer`]s, and structured
//! statements ([`Stmt`]) — `let`, assignment, buffer stores with an optional
//! reduction operator, `if`/`while`/`for`, and blocks.  Everything a looplet
//! lowerer needs and nothing more.
//!
//! ```
//! use finch_ir::{Names, BufferSet, Buffer, Expr, Stmt, BinOp, Value, Interpreter};
//!
//! # fn main() -> Result<(), finch_ir::RuntimeError> {
//! let mut names = Names::new();
//! let mut bufs = BufferSet::new();
//! let x = bufs.add("x", Buffer::F64(vec![1.0, 2.0, 3.0].into()));
//! let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
//! let i = names.fresh("i");
//!
//! // for i in 0..=2 { out[0] += x[i] }
//! let prog = vec![Stmt::For {
//!     var: i,
//!     lo: Expr::int(0),
//!     hi: Expr::int(2),
//!     body: vec![Stmt::Store {
//!         buf: out,
//!         index: Expr::int(0),
//!         value: Expr::load(x, Expr::Var(i)),
//!         reduce: Some(BinOp::Add),
//!     }],
//! }];
//!
//! let mut interp = Interpreter::new(&names);
//! interp.run(&prog, &mut bufs)?;
//! assert_eq!(bufs.get(out).load(0), Value::Float(6.0));
//! # Ok(()) }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod bytecode;
pub mod error;
pub mod expr;
pub mod interp;
pub mod opt;
pub mod par;
pub mod pretty;
pub mod seek;
pub mod stmt;
pub mod value;
pub mod var;
pub mod vm;

pub use buffer::{AllocMeter, BufId, Buffer, BufferSet};
pub use bytecode::{Instr, LaneTag, Program, Reg, ShardPlan, ShardRegion, ShardRole};
pub use error::RuntimeError;
pub use expr::{BinOp, Expr, UnOp};
pub use interp::{ExecStats, Interpreter};
pub use opt::{OptLevel, OptStats};
pub use par::{pool_run, run_sharded};
pub use stmt::{Extent, Stmt};
pub use value::{Value, ValueKind};
pub use var::{Names, Var};
pub use vm::{Vm, Watch};
