//! Variables and the name generator.
//!
//! Every variable in the target IR is identified by a dense integer id that
//! indexes directly into the interpreter's environment.  Human-readable
//! names (with a gensym suffix when needed) are kept in a side table,
//! [`Names`], which the pretty-printer consults.  Because the compiler only
//! ever creates fresh variables, there is no shadowing and scope handling in
//! the interpreter is trivial.

use std::fmt;

/// A variable of the target IR, identified by a dense id.
///
/// Obtain fresh variables from [`Names::fresh`]; ids are only meaningful
/// relative to the [`Names`] table that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The dense index of this variable (used by the interpreter's
    /// environment and the pretty-printer's name table).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// The variable name table and gensym counter.
///
/// ```
/// use finch_ir::Names;
/// let mut names = Names::new();
/// let i = names.fresh("i");
/// let i2 = names.fresh("i");
/// assert_ne!(i, i2);
/// assert_eq!(names.name(i), "i");
/// assert_eq!(names.name(i2), "i_2");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Names {
    names: Vec<String>,
}

impl Names {
    /// Create an empty name table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a fresh variable whose printed name starts with `prefix`.
    ///
    /// The first variable with a given prefix is printed as the prefix
    /// itself; later ones get a `_k` suffix so that generated code remains
    /// readable (matching the paper's `i_1`, `phase_stop`, ... style).
    pub fn fresh(&mut self, prefix: &str) -> Var {
        let count = self
            .names
            .iter()
            .filter(|n| n.as_str() == prefix || n.starts_with(&format!("{prefix}_")))
            .count();
        let name = if count == 0 { prefix.to_string() } else { format!("{prefix}_{}", count + 1) };
        let id = self.names.len() as u32;
        self.names.push(name);
        Var(id)
    }

    /// The printed name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` was created by a different [`Names`] table.
    pub fn name(&self, var: Var) -> &str {
        &self.names[var.index()]
    }

    /// Number of variables created so far (the size the interpreter's
    /// environment must have).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variables have been created yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over all variables created so far.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len() as u32).map(Var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_are_unique() {
        let mut names = Names::new();
        let a = names.fresh("p");
        let b = names.fresh("p");
        let c = names.fresh("q");
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn names_get_gensym_suffixes() {
        let mut names = Names::new();
        let a = names.fresh("i");
        let b = names.fresh("i");
        let c = names.fresh("i");
        assert_eq!(names.name(a), "i");
        assert_eq!(names.name(b), "i_2");
        assert_eq!(names.name(c), "i_3");
    }

    #[test]
    fn iter_covers_all_vars() {
        let mut names = Names::new();
        let vars: Vec<_> = (0..5).map(|_| names.fresh("x")).collect();
        let listed: Vec<_> = names.iter().collect();
        assert_eq!(vars, listed);
    }

    #[test]
    fn display_uses_index() {
        let mut names = Names::new();
        let v = names.fresh("x");
        assert_eq!(format!("{v}"), "%0");
        assert!(!names.is_empty());
    }
}
