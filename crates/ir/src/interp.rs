//! The interpreter (virtual machine) that executes lowered target IR.
//!
//! The original Finch implementation splices generated Julia code into the
//! host program and relies on Julia's JIT.  This reproduction executes the
//! generated IR with a straightforward tree-walking interpreter.  The
//! interpreter additionally maintains [`ExecStats`], machine-independent work
//! counters, so the asymptotic claims of the paper (e.g. "the looplet code
//! skips to the start of the block") can be verified exactly in unit tests
//! instead of only being inferred from wall-clock time.

use crate::buffer::{AllocMeter, BufId, BufferSet};
use crate::error::RuntimeError;
use crate::expr::Expr;
use crate::stmt::Stmt;
use crate::value::Value;
use crate::var::{Names, Var};
use crate::vm::Watch;

/// Machine-independent work counters accumulated during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of statements executed.
    pub stmts: u64,
    /// Number of loop-body iterations executed (`for` and `while` bodies).
    pub loop_iters: u64,
    /// Number of buffer loads.
    pub loads: u64,
    /// Number of buffer stores.
    pub stores: u64,
    /// Number of binary searches performed by `seek` functions.
    pub searches: u64,
}

impl ExecStats {
    /// Total of all counters; a coarse proxy for "work performed".
    pub fn total_work(&self) -> u64 {
        self.stmts + self.loads + self.stores + self.searches
    }
}

/// A tree-walking interpreter for the target IR.
///
/// The interpreter owns the variable environment; buffers are passed in at
/// [`Interpreter::run`] so the same program can be executed repeatedly
/// against different data.
#[derive(Debug, Clone)]
pub struct Interpreter {
    env: Vec<Option<Value>>,
    var_names: Vec<String>,
    stats: ExecStats,
    step_budget: Option<u64>,
    watch: Option<Watch>,
    alloc: AllocMeter,
}

impl Interpreter {
    /// Create an interpreter sized for the variables in `names`.
    pub fn new(names: &Names) -> Self {
        Interpreter {
            env: vec![None; names.len()],
            var_names: names.iter().map(|v| names.name(v).to_string()).collect(),
            stats: ExecStats::default(),
            step_budget: None,
            watch: None,
            alloc: AllocMeter::default(),
        }
    }

    /// Limit the number of executed statements; exceeding the budget aborts
    /// execution with [`RuntimeError::StepBudgetExceeded`].  Used by tests
    /// to guard against non-terminating generated code.
    pub fn with_step_budget(mut self, budget: u64) -> Self {
        self.step_budget = Some(budget);
        self
    }

    /// Set or clear the cooperative [`Watch`] (deadline / cancellation),
    /// checked on the same statement path as the step budget — mirroring
    /// [`crate::vm::Vm::set_watch`] so both engines fault identically.
    pub fn set_watch(&mut self, watch: Option<Watch>) {
        self.watch = watch;
    }

    /// Set or clear the output-allocation element budget, charged one unit
    /// per appended element exactly like the VM.
    pub fn set_alloc_budget(&mut self, budget: Option<u64>) {
        self.alloc.set_budget(budget);
    }

    /// Elements appended to growable outputs since the last reset.
    pub fn allocs(&self) -> u64 {
        self.alloc.used()
    }

    /// The work counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Reset the work counters, the allocation meter, and the variable
    /// environment.
    pub fn reset(&mut self) {
        self.stats = ExecStats::default();
        self.alloc.reset();
        self.env.iter_mut().for_each(|v| *v = None);
    }

    /// Execute a program against the given buffers.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on out-of-bounds accesses, type errors, or
    /// when the step budget is exceeded.
    pub fn run(&mut self, stmts: &[Stmt], bufs: &mut BufferSet) -> Result<(), RuntimeError> {
        for s in stmts {
            self.exec(s, bufs)?;
        }
        Ok(())
    }

    fn bump(&mut self) -> Result<(), RuntimeError> {
        self.stats.stmts += 1;
        if let Some(budget) = self.step_budget {
            if self.stats.stmts > budget {
                return Err(RuntimeError::StepBudgetExceeded { budget });
            }
        }
        if let Some(watch) = &self.watch {
            watch.check(self.stats.stmts)?;
        }
        Ok(())
    }

    fn exec(&mut self, stmt: &Stmt, bufs: &mut BufferSet) -> Result<(), RuntimeError> {
        self.bump()?;
        match stmt {
            Stmt::Comment(_) => Ok(()),
            Stmt::Let { var, init } | Stmt::Assign { var, value: init } => {
                let v = self.eval(init, bufs)?;
                self.env[var.index()] = Some(v);
                Ok(())
            }
            Stmt::Store { buf, index, value, reduce } => {
                let idx = self.eval(index, bufs)?.as_int()?;
                let val = self.eval(value, bufs)?;
                self.check_bounds(*buf, idx, bufs)?;
                self.stats.stores += 1;
                bufs.get_mut(*buf).store(idx as usize, val, *reduce)
            }
            Stmt::Append { buf, value } => {
                let val = self.eval(value, bufs)?;
                self.stats.stores += 1;
                self.alloc.charge(1)?;
                bufs.get_mut(*buf).push(val)
            }
            Stmt::FiberEnd { pos, data } => {
                let end = bufs.get(*data).len() as i64;
                self.stats.stores += 1;
                self.alloc.charge(1)?;
                bufs.get_mut(*pos).push(Value::Int(end))
            }
            Stmt::If { cond, then_branch, else_branch } => {
                let c = self.eval(cond, bufs)?;
                // A missing condition (possible under `permit`) selects the
                // else branch, matching `coalesce`-style defaulting.
                let taken = if c.is_missing() { false } else { c.as_bool()? };
                let branch = if taken { then_branch } else { else_branch };
                for s in branch {
                    self.exec(s, bufs)?;
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                loop {
                    let c = self.eval(cond, bufs)?.as_bool()?;
                    if !c {
                        break;
                    }
                    self.stats.loop_iters += 1;
                    for s in body {
                        self.exec(s, bufs)?;
                    }
                }
                Ok(())
            }
            Stmt::For { var, lo, hi, body } => {
                let lo = self.eval(lo, bufs)?.as_int()?;
                let hi = self.eval(hi, bufs)?.as_int()?;
                let mut i = lo;
                while i <= hi {
                    self.stats.loop_iters += 1;
                    self.env[var.index()] = Some(Value::Int(i));
                    for s in body {
                        self.exec(s, bufs)?;
                    }
                    i += 1;
                }
                Ok(())
            }
            Stmt::Block(body) => {
                for s in body {
                    self.exec(s, bufs)?;
                }
                Ok(())
            }
        }
    }

    fn check_bounds(&self, buf: BufId, idx: i64, bufs: &BufferSet) -> Result<(), RuntimeError> {
        let len = bufs.get(buf).len();
        if idx < 0 || idx as usize >= len {
            return Err(RuntimeError::OutOfBounds {
                buffer: bufs.name(buf).to_string(),
                index: idx,
                len,
            });
        }
        Ok(())
    }

    /// Evaluate a pure expression in the current environment.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] on unbound variables, out-of-bounds loads,
    /// or type errors.
    pub fn eval(&mut self, expr: &Expr, bufs: &BufferSet) -> Result<Value, RuntimeError> {
        match expr {
            Expr::Lit(v) => Ok(*v),
            Expr::Var(v) => self.read_var(*v),
            Expr::BufLen(b) => Ok(Value::Int(bufs.get(*b).len() as i64)),
            Expr::Load { buf, index } => {
                let idx = self.eval(index, bufs)?;
                if idx.is_missing() {
                    // Accessing an array at a missing index yields missing
                    // (paper §8: `A[missing] = missing`).
                    return Ok(Value::Missing);
                }
                let idx = idx.as_int()?;
                self.check_bounds(*buf, idx, bufs)?;
                self.stats.loads += 1;
                Ok(bufs.get(*buf).load(idx as usize))
            }
            Expr::Unary { op, arg } => {
                let a = self.eval(arg, bufs)?;
                Value::unop(*op, a)
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs, bufs)?;
                // `&&` and `||` short-circuit, matching the semantics of the
                // source languages the generated code is modelled on (and
                // protecting guarded loads like `q < end && idx[q] == j`).
                if !a.is_missing() {
                    match op {
                        crate::expr::BinOp::And if !a.as_bool()? => return Ok(Value::Bool(false)),
                        crate::expr::BinOp::Or if a.as_bool()? => return Ok(Value::Bool(true)),
                        _ => {}
                    }
                }
                let b = self.eval(rhs, bufs)?;
                Value::binop(*op, a, b)
            }
            Expr::Select { cond, then, otherwise } => {
                let c = self.eval(cond, bufs)?;
                let taken = if c.is_missing() { false } else { c.as_bool()? };
                if taken {
                    self.eval(then, bufs)
                } else {
                    self.eval(otherwise, bufs)
                }
            }
            Expr::Coalesce(args) => {
                for a in args {
                    let v = self.eval(a, bufs)?;
                    if !v.is_missing() {
                        return Ok(v);
                    }
                }
                Ok(Value::Missing)
            }
            Expr::Search { buf, lo, hi, key, on_abs } => {
                let lo = self.eval(lo, bufs)?.as_int()?;
                let hi = self.eval(hi, bufs)?.as_int()?;
                let key = self.eval(key, bufs)?.as_int()?;
                self.stats.searches += 1;
                self.binary_search(*buf, lo, hi, key, *on_abs, bufs)
            }
        }
    }

    fn read_var(&self, var: Var) -> Result<Value, RuntimeError> {
        self.env[var.index()].ok_or_else(|| RuntimeError::UnboundVariable {
            name: self.var_names.get(var.index()).cloned().unwrap_or_else(|| format!("{var}")),
        })
    }

    /// Lower-bound search over `buf[lo..=hi]`: the first position `p`
    /// with `buf[p] >= key`, or `hi + 1` when every element is smaller.
    /// Delegates to the shared galloping search ([`crate::seek`]) so both
    /// engines perform the identical (counted) probe sequence.
    fn binary_search(
        &mut self,
        buf: BufId,
        lo: i64,
        hi: i64,
        key: i64,
        on_abs: bool,
        bufs: &BufferSet,
    ) -> Result<Value, RuntimeError> {
        let (pos, probes) = crate::seek::lower_bound(bufs, buf, lo, hi, key, on_abs)?;
        self.stats.loads += probes;
        Ok(Value::Int(pos))
    }

    /// Read the current value of a variable after execution (useful in
    /// tests and for debugging generated code).
    pub fn var_value(&self, var: Var) -> Option<Value> {
        self.env.get(var.index()).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::Buffer;
    use crate::expr::BinOp;

    fn setup() -> (Names, BufferSet) {
        (Names::new(), BufferSet::new())
    }

    #[test]
    fn for_loop_sums_a_buffer() {
        let (mut names, mut bufs) = setup();
        let x = bufs.add("x", Buffer::F64(vec![1.0, 2.0, 3.0, 4.0].into()));
        let out = bufs.add("out", Buffer::F64(vec![0.0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(3),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::load(x, Expr::Var(i)),
                reduce: Some(BinOp::Add),
            }],
        }];
        let mut interp = Interpreter::new(&names);
        interp.run(&prog, &mut bufs).unwrap();
        assert_eq!(bufs.get(out).load(0), Value::Float(10.0));
        assert_eq!(interp.stats().loop_iters, 4);
        assert_eq!(interp.stats().stores, 4);
    }

    #[test]
    fn while_loop_with_variable_updates() {
        let (mut names, mut bufs) = setup();
        let p = names.fresh("p");
        let acc = names.fresh("acc");
        let prog = vec![
            Stmt::Let { var: p, init: Expr::int(0) },
            Stmt::Let { var: acc, init: Expr::int(0) },
            Stmt::While {
                cond: Expr::lt(Expr::Var(p), Expr::int(5)),
                body: vec![
                    Stmt::Assign { var: acc, value: Expr::add(Expr::Var(acc), Expr::Var(p)) },
                    Stmt::Assign { var: p, value: Expr::add(Expr::Var(p), Expr::int(1)) },
                ],
            },
        ];
        let mut interp = Interpreter::new(&names);
        interp.run(&prog, &mut bufs).unwrap();
        assert_eq!(interp.var_value(acc), Some(Value::Int(10)));
    }

    #[test]
    fn empty_for_loop_does_not_execute() {
        let (mut names, mut bufs) = setup();
        let out = bufs.add("out", Buffer::I64(vec![0].into()));
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(5),
            hi: Expr::int(2),
            body: vec![Stmt::Store {
                buf: out,
                index: Expr::int(0),
                value: Expr::int(1),
                reduce: None,
            }],
        }];
        let mut interp = Interpreter::new(&names);
        interp.run(&prog, &mut bufs).unwrap();
        assert_eq!(bufs.get(out).load(0), Value::Int(0));
        assert_eq!(interp.stats().loop_iters, 0);
    }

    #[test]
    fn append_and_fiber_end_assemble_a_sparse_fiber() {
        // for i in 0..=3 { if x[i] != 0 { idx.push(i); val.push(x[i]) } }
        // pos.push(idx.len())
        let (mut names, mut bufs) = setup();
        let x = bufs.add("x", Buffer::F64(vec![0.0, 1.5, 0.0, 2.0].into()));
        let pos = bufs.add("C_pos", Buffer::I64(vec![0].into()));
        let idx = bufs.add("C_idx", Buffer::I64(vec![].into()));
        let val = bufs.add("C_val", Buffer::F64(vec![].into()));
        let i = names.fresh("i");
        let prog = vec![
            Stmt::For {
                var: i,
                lo: Expr::int(0),
                hi: Expr::int(3),
                body: vec![Stmt::if_then(
                    Expr::binary(BinOp::Ne, Expr::load(x, Expr::Var(i)), Expr::float(0.0)),
                    vec![
                        Stmt::Append { buf: idx, value: Expr::Var(i) },
                        Stmt::Append { buf: val, value: Expr::load(x, Expr::Var(i)) },
                    ],
                )],
            },
            Stmt::FiberEnd { pos, data: idx },
        ];
        let mut interp = Interpreter::new(&names);
        interp.run(&prog, &mut bufs).unwrap();
        assert_eq!(bufs.get(pos).as_i64(), Some(&[0, 2][..]));
        assert_eq!(bufs.get(idx).as_i64(), Some(&[1, 3][..]));
        assert_eq!(bufs.get(val).as_f64(), Some(&[1.5, 2.0][..]));
        // 2 idx appends + 2 val appends + 1 fiber end, each counted a store.
        assert_eq!(interp.stats().stores, 5);
    }

    #[test]
    fn appending_missing_is_an_error() {
        let (names, mut bufs) = setup();
        let idx = bufs.add("idx", Buffer::I64(vec![].into()));
        let prog = vec![Stmt::Append { buf: idx, value: Expr::missing() }];
        let mut interp = Interpreter::new(&names);
        let err = interp.run(&prog, &mut bufs).unwrap_err();
        assert!(matches!(err, RuntimeError::UnexpectedMissing { .. }));
    }

    #[test]
    fn out_of_bounds_load_is_reported_with_buffer_name() {
        let (mut names, mut bufs) = setup();
        let x = bufs.add("vals", Buffer::F64(vec![1.0].into()));
        let v = names.fresh("v");
        let prog = vec![Stmt::Let { var: v, init: Expr::load(x, Expr::int(7)) }];
        let mut interp = Interpreter::new(&names);
        let err = interp.run(&prog, &mut bufs).unwrap_err();
        match err {
            RuntimeError::OutOfBounds { buffer, index, len } => {
                assert_eq!(buffer, "vals");
                assert_eq!(index, 7);
                assert_eq!(len, 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let (mut names, mut bufs) = setup();
        let a = names.fresh("a");
        let b = names.fresh("b");
        let prog = vec![Stmt::Let { var: a, init: Expr::Var(b) }];
        let mut interp = Interpreter::new(&names);
        let err = interp.run(&prog, &mut bufs).unwrap_err();
        assert!(matches!(err, RuntimeError::UnboundVariable { .. }));
    }

    #[test]
    fn step_budget_catches_infinite_loops() {
        let (names, mut bufs) = setup();
        let prog =
            vec![Stmt::While { cond: Expr::bool(true), body: vec![Stmt::Comment("spin".into())] }];
        let mut interp = Interpreter::new(&names).with_step_budget(1000);
        let err = interp.run(&prog, &mut bufs).unwrap_err();
        assert!(matches!(err, RuntimeError::StepBudgetExceeded { .. }));
    }

    #[test]
    fn binary_search_finds_lower_bound() {
        let (names, mut bufs) = setup();
        let idx = bufs.add("idx", Buffer::I64(vec![1, 4, 4, 9, 12].into()));
        let mut interp = Interpreter::new(&names);
        let search = |interp: &mut Interpreter, bufs: &BufferSet, key: i64| {
            interp
                .eval(
                    &Expr::Search {
                        buf: idx,
                        lo: Box::new(Expr::int(0)),
                        hi: Box::new(Expr::int(4)),
                        key: Box::new(Expr::int(key)),
                        on_abs: false,
                    },
                    bufs,
                )
                .unwrap()
                .as_int()
                .unwrap()
        };
        assert_eq!(search(&mut interp, &bufs, 0), 0);
        assert_eq!(search(&mut interp, &bufs, 1), 0);
        assert_eq!(search(&mut interp, &bufs, 2), 1);
        assert_eq!(search(&mut interp, &bufs, 4), 1);
        assert_eq!(search(&mut interp, &bufs, 10), 4);
        assert_eq!(search(&mut interp, &bufs, 13), 5);
        assert!(interp.stats().searches >= 6);
    }

    #[test]
    fn binary_search_on_abs_handles_negative_markers() {
        // PackBits stores literal-region boundaries as negative coordinates.
        let (names, mut bufs) = setup();
        let idx = bufs.add("idx", Buffer::I64(vec![3, -6, 8, -11].into()));
        let mut interp = Interpreter::new(&names);
        let v = interp
            .eval(
                &Expr::Search {
                    buf: idx,
                    lo: Box::new(Expr::int(0)),
                    hi: Box::new(Expr::int(3)),
                    key: Box::new(Expr::int(7)),
                    on_abs: true,
                },
                &bufs,
            )
            .unwrap();
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn coalesce_returns_first_non_missing() {
        let (names, bufs) = setup();
        let mut interp = Interpreter::new(&names);
        let e = Expr::Coalesce(vec![Expr::missing(), Expr::float(5.0), Expr::float(7.0)]);
        assert_eq!(interp.eval(&e, &bufs).unwrap(), Value::Float(5.0));
        let e = Expr::Coalesce(vec![Expr::missing(), Expr::missing()]);
        assert!(interp.eval(&e, &bufs).unwrap().is_missing());
    }

    #[test]
    fn load_at_missing_index_is_missing() {
        let (names, mut bufs) = setup();
        let x = bufs.add("x", Buffer::F64(vec![1.0].into()));
        let mut interp = Interpreter::new(&names);
        let e = Expr::load(x, Expr::missing());
        assert!(interp.eval(&e, &bufs).unwrap().is_missing());
    }

    #[test]
    fn select_with_missing_condition_takes_else_branch() {
        let (names, bufs) = setup();
        let mut interp = Interpreter::new(&names);
        let e = Expr::select(Expr::missing(), Expr::int(1), Expr::int(2));
        assert_eq!(interp.eval(&e, &bufs).unwrap(), Value::Int(2));
    }

    #[test]
    fn reset_clears_stats_and_env() {
        let (mut names, mut bufs) = setup();
        let a = names.fresh("a");
        let prog = vec![Stmt::Let { var: a, init: Expr::int(1) }];
        let mut interp = Interpreter::new(&names);
        interp.run(&prog, &mut bufs).unwrap();
        assert!(interp.stats().stmts > 0);
        interp.reset();
        assert_eq!(interp.stats(), ExecStats::default());
        assert_eq!(interp.var_value(a), None);
    }
}
