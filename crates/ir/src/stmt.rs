//! Statements of the target IR, and the [`Extent`] type describing loop
//! regions.

use crate::buffer::BufId;
use crate::expr::{BinOp, Expr};
use crate::var::Var;

/// A loop region with inclusive bounds.
///
/// Looplets are "defined with respect to the extent of the target region"
/// (paper §3); the compiler threads an `Extent` through every lowering pass.
/// Bounds are arbitrary expressions because subregion boundaries (phase
/// strides, stepper positions) are usually only known at runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct Extent {
    /// Inclusive lower bound.
    pub lo: Expr,
    /// Inclusive upper bound.
    pub hi: Expr,
}

impl Extent {
    /// Create an extent from inclusive bounds.
    pub fn new(lo: Expr, hi: Expr) -> Self {
        Extent { lo, hi }
    }

    /// The extent `lo..=hi` with constant integer bounds.
    pub fn literal(lo: i64, hi: i64) -> Self {
        Extent { lo: Expr::int(lo), hi: Expr::int(hi) }
    }

    /// A single-point extent `at..=at`.
    pub fn point(at: Expr) -> Self {
        Extent { lo: at.clone(), hi: at }
    }

    /// Whether the bounds are syntactically identical, i.e. the extent is
    /// statically known to contain exactly one index.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// The number of indices in the extent (`hi - lo + 1`), clamped at zero,
    /// as an expression.
    pub fn length(&self) -> Expr {
        Expr::max(
            Expr::add(Expr::sub(self.hi.clone(), self.lo.clone()), Expr::int(1)),
            Expr::int(0),
        )
        .simplified()
    }

    /// The condition `lo <= hi`, i.e. the extent is nonempty.
    pub fn nonempty(&self) -> Expr {
        Expr::le(self.lo.clone(), self.hi.clone()).simplified()
    }

    /// Intersect with another extent: `max(lo, other.lo) ..= min(hi, other.hi)`.
    pub fn intersect(&self, other: &Extent) -> Extent {
        Extent {
            lo: Expr::max(self.lo.clone(), other.lo.clone()).simplified(),
            hi: Expr::min(self.hi.clone(), other.hi.clone()).simplified(),
        }
    }

    /// The extent with both bounds shifted by `delta`.
    pub fn shifted(&self, delta: &Expr) -> Extent {
        Extent {
            lo: Expr::add(self.lo.clone(), delta.clone()).simplified(),
            hi: Expr::add(self.hi.clone(), delta.clone()).simplified(),
        }
    }
}

/// A statement of the target IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Declare a variable and initialise it.
    Let {
        /// The variable declared.
        var: Var,
        /// Its initial value.
        init: Expr,
    },
    /// Assign a new value to an existing variable.
    Assign {
        /// The variable assigned.
        var: Var,
        /// The new value.
        value: Expr,
    },
    /// `buf[index] op= value` (or plain assignment when `reduce` is `None`).
    Store {
        /// The destination buffer.
        buf: BufId,
        /// Destination element index.
        index: Expr,
        /// The value stored or combined.
        value: Expr,
        /// Reduction operator (`Some(Add)` means `+=`).
        reduce: Option<BinOp>,
    },
    /// Conditional execution.
    If {
        /// The branch condition.
        cond: Expr,
        /// Statements executed when the condition holds.
        then_branch: Vec<Stmt>,
        /// Statements executed otherwise.
        else_branch: Vec<Stmt>,
    },
    /// A `while` loop.
    While {
        /// Loop condition, evaluated before each iteration.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A counted `for` loop over `lo..=hi` (inclusive, may be empty).
    For {
        /// Loop variable.
        var: Var,
        /// Inclusive lower bound.
        lo: Expr,
        /// Inclusive upper bound.
        hi: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A sequence of statements (no new scope semantics; variables are
    /// globally unique).
    Block(
        /// The statements executed in order.
        Vec<Stmt>,
    ),
    /// `buf.push(value)`: append one element at the end of a growable
    /// buffer.  Sparse output assembly stores each computed entry by
    /// appending its coordinate to the output's `idx` array and its value
    /// to the `val` array; counts as one store.
    Append {
        /// The buffer appended to.
        buf: BufId,
        /// The appended value.
        value: Expr,
    },
    /// `pos.push(len(data))`: close one fiber of a sparse output level by
    /// recording how many entries the `data` array holds so far.  Emitted
    /// once after the loop that drives the sparse output dimension; counts
    /// as one store.
    FiberEnd {
        /// The `pos` (fiber boundary) buffer appended to.
        pos: BufId,
        /// The entry array (`idx`) whose current length is recorded.
        data: BufId,
    },
    /// A comment carried through to the pretty-printer, used to annotate
    /// generated code with the looplet pass that produced each region.
    Comment(
        /// Comment text.
        String,
    ),
}

impl Stmt {
    /// An `if` with no else branch.
    pub fn if_then(cond: Expr, then_branch: Vec<Stmt>) -> Stmt {
        Stmt::If { cond, then_branch, else_branch: Vec::new() }
    }

    /// Visit every statement node (pre-order), including nested bodies.
    pub fn visit(&self, f: &mut dyn FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::If { then_branch, else_branch, .. } => {
                then_branch.iter().for_each(|s| s.visit(f));
                else_branch.iter().for_each(|s| s.visit(f));
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } | Stmt::Block(body) => {
                body.iter().for_each(|s| s.visit(f));
            }
            _ => {}
        }
    }

    /// Count statements of the program matching a predicate (used by tests
    /// that assert on the *structure* of generated code, e.g. "the galloping
    /// kernel contains a binary search").
    pub fn count_matching(stmts: &[Stmt], pred: &dyn Fn(&Stmt) -> bool) -> usize {
        let mut n = 0;
        for s in stmts {
            s.visit(&mut |node| {
                if pred(node) {
                    n += 1;
                }
            });
        }
        n
    }

    /// Rewrite every expression contained in the statement (recursively in
    /// nested bodies) with `f`.
    pub fn map_exprs(&self, f: &mut dyn FnMut(&Expr) -> Expr) -> Stmt {
        match self {
            Stmt::Comment(_) | Stmt::FiberEnd { .. } => self.clone(),
            Stmt::Append { buf, value } => Stmt::Append { buf: *buf, value: f(value) },
            Stmt::Let { var, init } => Stmt::Let { var: *var, init: f(init) },
            Stmt::Assign { var, value } => Stmt::Assign { var: *var, value: f(value) },
            Stmt::Store { buf, index, value, reduce } => {
                Stmt::Store { buf: *buf, index: f(index), value: f(value), reduce: *reduce }
            }
            Stmt::If { cond, then_branch, else_branch } => Stmt::If {
                cond: f(cond),
                then_branch: then_branch.iter().map(|s| s.map_exprs(f)).collect(),
                else_branch: else_branch.iter().map(|s| s.map_exprs(f)).collect(),
            },
            Stmt::While { cond, body } => {
                Stmt::While { cond: f(cond), body: body.iter().map(|s| s.map_exprs(f)).collect() }
            }
            Stmt::For { var, lo, hi, body } => Stmt::For {
                var: *var,
                lo: f(lo),
                hi: f(hi),
                body: body.iter().map(|s| s.map_exprs(f)).collect(),
            },
            Stmt::Block(body) => Stmt::Block(body.iter().map(|s| s.map_exprs(f)).collect()),
        }
    }

    /// Substitute variable `var` with `replacement` in every expression of
    /// the statement.  Binder positions (loop variables, `let` targets) are
    /// left untouched; the compiler only ever creates globally-fresh
    /// variables so capture cannot occur.
    pub fn substitute(&self, var: Var, replacement: &Expr) -> Stmt {
        self.map_exprs(&mut |e| e.substitute(var, replacement))
    }

    /// Substitute a variable in a sequence of statements.
    pub fn substitute_all(stmts: &[Stmt], var: Var, replacement: &Expr) -> Vec<Stmt> {
        stmts.iter().map(|s| s.substitute(var, replacement)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use crate::var::Names;

    #[test]
    fn extent_length_of_literals_folds() {
        let ext = Extent::literal(3, 7);
        assert_eq!(ext.length(), Expr::Lit(Value::Int(5)));
        let empty = Extent::literal(5, 3);
        // max(3 - 5 + 1, 0) = 0
        assert_eq!(empty.length(), Expr::Lit(Value::Int(0)));
    }

    #[test]
    fn point_extents_are_detected_syntactically() {
        let mut names = Names::new();
        let v = names.fresh("s");
        assert!(Extent::point(Expr::Var(v)).is_point());
        assert!(!Extent::literal(0, 1).is_point());
    }

    #[test]
    fn intersect_takes_max_lo_and_min_hi() {
        let a = Extent::literal(0, 10);
        let b = Extent::literal(3, 20);
        let c = a.intersect(&b);
        assert_eq!(c.lo, Expr::int(3));
        assert_eq!(c.hi, Expr::int(10));
    }

    #[test]
    fn shifted_moves_both_bounds() {
        let a = Extent::literal(2, 5).shifted(&Expr::int(10));
        assert_eq!(a.lo, Expr::int(12));
        assert_eq!(a.hi, Expr::int(15));
    }

    #[test]
    fn count_matching_finds_nested_statements() {
        let mut names = Names::new();
        let i = names.fresh("i");
        let prog = vec![Stmt::For {
            var: i,
            lo: Expr::int(0),
            hi: Expr::int(3),
            body: vec![
                Stmt::Comment("inner".into()),
                Stmt::if_then(Expr::bool(true), vec![Stmt::Comment("nested".into())]),
            ],
        }];
        let n = Stmt::count_matching(&prog, &|s| matches!(s, Stmt::Comment(_)));
        assert_eq!(n, 2);
    }

    #[test]
    fn substitution_reaches_nested_statements() {
        let mut names = Names::new();
        let i = names.fresh("i");
        let p = names.fresh("p");
        let stmt = Stmt::While {
            cond: Expr::lt(Expr::Var(p), Expr::Var(i)),
            body: vec![Stmt::Assign { var: p, value: Expr::add(Expr::Var(p), Expr::Var(i)) }],
        };
        let replaced = stmt.substitute(i, &Expr::int(10));
        let mentions = |s: &Stmt| {
            let mut found = false;
            s.visit(&mut |node| {
                if let Stmt::Assign { value, .. } = node {
                    if value.mentions(i) {
                        found = true;
                    }
                }
            });
            found
        };
        assert!(!mentions(&replaced));
        if let Stmt::While { cond, .. } = &replaced {
            assert!(!cond.mentions(i));
        } else {
            panic!("shape changed");
        }
    }

    #[test]
    fn nonempty_condition_folds_for_literals() {
        assert_eq!(Extent::literal(0, 3).nonempty(), Expr::bool(true));
        assert_eq!(Extent::literal(4, 3).nonempty(), Expr::bool(false));
    }
}
