//! Typed flat buffers: the runtime storage the generated code reads and
//! writes.
//!
//! Every array mentioned by a level format (`pos`, `idx`, `ofs`, `val`, ...)
//! and every output tensor becomes one [`Buffer`] registered in a
//! [`BufferSet`].  Buffers are monomorphically typed so the interpreter's
//! inner loop avoids boxing every element.

use std::fmt;

use crate::error::RuntimeError;
use crate::expr::BinOp;
use crate::value::Value;

/// Identifier of a buffer within a [`BufferSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub(crate) u32);

impl BufId {
    /// The dense index of this buffer in its [`BufferSet`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BufId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// The byte alignment guaranteed for the first element of every
/// [`AlignedVec`] (and therefore of every `i64`/`f64` buffer lane):
/// one full cache line / AVX-512 vector.
pub const LANE_ALIGN: usize = 64;

/// Meters growable-output appends against an optional element budget — the
/// allocation-side companion of the step budget.  Both engines charge one
/// unit per appended element (coordinate, value, or fiber boundary) at the
/// append itself, so a budget overrun faults at the same logical element on
/// the tree-walker, the scalar VM, the vectorized tier (which declines a
/// bulk that might not fit and lets the scalar loop fault exactly), and the
/// sharded tier (which re-checks the stitched total).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocMeter {
    budget: Option<u64>,
    used: u64,
}

impl AllocMeter {
    /// Set or clear the element budget (`None` = unlimited).
    pub fn set_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    /// The configured element budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Elements charged since the last [`AllocMeter::reset`].
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Zero the usage counter (run-to-run reset; the budget persists).
    pub fn reset(&mut self) {
        self.used = 0;
    }

    /// Charge `n` appended elements, failing once the budget is exceeded.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::AllocBudgetExceeded`] when the running total
    /// passes the configured budget.
    #[inline]
    pub fn charge(&mut self, n: u64) -> Result<(), RuntimeError> {
        self.used += n;
        match self.budget {
            Some(budget) if self.used > budget => Err(RuntimeError::AllocBudgetExceeded { budget }),
            _ => Ok(()),
        }
    }

    /// Whether a worst-case bulk of `n` elements provably fits under the
    /// budget (the vectorized tier's decline check, mirroring the step
    /// budget's `vbudget_ok`).
    #[inline]
    pub fn fits(&self, n: u64) -> bool {
        match self.budget {
            None => true,
            Some(budget) => self.used.checked_add(n).is_some_and(|total| total <= budget),
        }
    }

    /// Add already-validated usage without a budget check (bulk paths that
    /// pre-checked with [`AllocMeter::fits`], and shard-delta stitching).
    #[inline]
    pub fn add_used(&mut self, n: u64) {
        self.used += n;
    }

    /// Re-check the running total against the budget (the sharded tier's
    /// post-stitch check).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::AllocBudgetExceeded`] when the total is
    /// already past the budget.
    #[inline]
    pub fn check(&self) -> Result<(), RuntimeError> {
        match self.budget {
            Some(budget) if self.used > budget => Err(RuntimeError::AllocBudgetExceeded { budget }),
            _ => Ok(()),
        }
    }
}

/// A growable array whose live elements always start on a
/// [`LANE_ALIGN`]-byte boundary, so the vectorized kernel ops (and any
/// SIMD the compiler emits for them) operate on aligned, contiguous
/// slices.
///
/// Implemented without `unsafe`: the backing `Vec<T>` is over-allocated
/// by up to one cache line and the live range `offset..` starts at the
/// first aligned element.  Every operation that can move the allocation
/// re-anchors the live range, so the alignment guarantee holds across
/// pushes, reserves, and conversions.  `T` must be sized such that
/// `size_of::<T>()` divides [`LANE_ALIGN`] (both lane types, `i64` and
/// `f64`, are 8 bytes).
pub struct AlignedVec<T> {
    /// Backing storage; `data[offset..]` is live, `data[..offset]` is
    /// alignment padding.
    data: Vec<T>,
    /// Index of the first live element.
    offset: usize,
}

impl<T: Copy + Default> AlignedVec<T> {
    /// The worst-case padding in elements.
    fn pad_max() -> usize {
        LANE_ALIGN / std::mem::size_of::<T>()
    }

    /// Create an empty aligned vector (no allocation yet).
    pub fn new() -> Self {
        Self { data: Vec::new(), offset: 0 }
    }

    /// Create an empty aligned vector with room for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        let mut v = Self::new();
        v.grow_for(cap);
        v
    }

    /// The padding the current allocation needs in front of the live
    /// range for it to start on a [`LANE_ALIGN`] boundary.
    fn want_offset(&self) -> usize {
        if self.data.capacity() == 0 {
            return 0;
        }
        let mis = self.data.as_ptr() as usize % LANE_ALIGN;
        if mis == 0 {
            0
        } else {
            debug_assert_eq!((LANE_ALIGN - mis) % std::mem::size_of::<T>(), 0);
            (LANE_ALIGN - mis) / std::mem::size_of::<T>()
        }
    }

    /// Make room for `additional` more live elements and restore the
    /// alignment invariant.  Afterwards the backing capacity always has
    /// worst-case-padding slack, so the in-place append the caller does
    /// next cannot reallocate (which would move the anchor again).
    fn grow_for(&mut self, additional: usize) {
        let need = self.data.len() + additional + Self::pad_max();
        if need > self.data.capacity() {
            self.data.reserve(need - self.data.len());
        }
        let want = self.want_offset();
        if want != self.offset {
            let old = self.offset;
            let n = self.data.len() - old;
            if want > old {
                self.data.resize(want + n, T::default());
                self.data.copy_within(old..old + n, want);
            } else {
                self.data.copy_within(old..old + n, want);
                self.data.truncate(want + n);
            }
            self.offset = want;
        }
    }

    /// Append one element, keeping the live range aligned.
    pub fn push(&mut self, x: T) {
        self.grow_for(1);
        self.data.push(x);
    }

    /// Append every element of `xs`, keeping the live range aligned.
    pub fn extend_from_slice(&mut self, xs: &[T]) {
        self.grow_for(xs.len());
        self.data.extend_from_slice(xs);
    }

    /// Reserve room for at least `additional` more elements.
    pub fn reserve(&mut self, additional: usize) {
        self.grow_for(additional);
    }

    /// Remove every element while keeping the allocated capacity (and
    /// its alignment anchor).
    pub fn clear(&mut self) {
        self.data.truncate(self.offset);
    }

    /// Shorten to `len` elements (no-op when already shorter).
    pub fn truncate(&mut self, len: usize) {
        let keep = self.offset.saturating_add(len);
        if keep < self.data.len() {
            self.data.truncate(keep);
        }
    }

    /// Resize to `len` elements, filling new space with `value`.
    pub fn resize(&mut self, len: usize, value: T) {
        if len > self.len() {
            self.grow_for(len - self.len());
        }
        let target = self.offset + len;
        self.data.resize(target, value);
    }
}

impl<T> AlignedVec<T> {
    /// The live elements as a contiguous slice (64-byte-aligned when
    /// non-empty).
    pub fn as_slice(&self) -> &[T] {
        &self.data[self.offset..]
    }

    /// The live elements as a contiguous mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data[self.offset..]
    }
}

impl<T> std::ops::Deref for AlignedVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> std::ops::DerefMut for AlignedVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default> From<Vec<T>> for AlignedVec<T> {
    fn from(data: Vec<T>) -> Self {
        let mut v = Self { data, offset: 0 };
        v.grow_for(0);
        v
    }
}

impl<T: Copy + Default> FromIterator<T> for AlignedVec<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<T>>())
    }
}

impl<'a, T> IntoIterator for &'a AlignedVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: Copy + Default> Default for AlignedVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        // Re-anchor rather than copying the padding: the clone's
        // allocation lands at its own address.
        Self::from(self.as_slice().to_vec())
    }
}

impl<T: PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: fmt::Debug> fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// A typed, flat runtime array.
#[derive(Debug, Clone, PartialEq)]
pub enum Buffer {
    /// Signed 64-bit integers (positions, coordinates, run boundaries);
    /// the lane is 64-byte-aligned and contiguous.
    I64(AlignedVec<i64>),
    /// 64-bit floats (most values arrays); the lane is 64-byte-aligned
    /// and contiguous.
    F64(AlignedVec<f64>),
    /// Unsigned bytes (image data).
    U8(Vec<u8>),
    /// Booleans (bitmaps / bytemaps).
    Bool(Vec<bool>),
}

impl Buffer {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Buffer::I64(v) => v.len(),
            Buffer::F64(v) => v.len(),
            Buffer::U8(v) => v.len(),
            Buffer::Bool(v) => v.len(),
        }
    }

    /// Whether the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load element `i` as a [`Value`].
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds; the interpreter performs its own
    /// bounds check first in order to report a friendlier error.
    pub fn load(&self, i: usize) -> Value {
        match self {
            Buffer::I64(v) => Value::Int(v[i]),
            Buffer::F64(v) => Value::Float(v[i]),
            Buffer::U8(v) => Value::Float(v[i] as f64),
            Buffer::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Store `value` into element `i`, optionally combining with the current
    /// element through `reduce` (e.g. `Some(BinOp::Add)` for `+=`).
    ///
    /// # Errors
    ///
    /// Returns an error when the value cannot be represented in the buffer's
    /// element type (including storing `Missing`).
    pub fn store(
        &mut self,
        i: usize,
        value: Value,
        reduce: Option<BinOp>,
    ) -> Result<(), RuntimeError> {
        let value = match reduce {
            Some(op) => Value::binop(op, self.load(i), value)?,
            None => value,
        };
        if value.is_missing() {
            return Err(RuntimeError::UnexpectedMissing { context: "a buffer store".into() });
        }
        match self {
            Buffer::I64(v) => v[i] = value.as_int()?,
            Buffer::F64(v) => v[i] = value.as_float()?,
            Buffer::U8(v) => v[i] = value.as_float()?.clamp(0.0, 255.0).round() as u8,
            Buffer::Bool(v) => v[i] = value.as_bool()?,
        }
        Ok(())
    }

    /// Append `value` at the end of the buffer, growing it by one element.
    ///
    /// This is the runtime primitive behind the IR's `Append` statement:
    /// sparse output assembly builds its `pos`/`idx`/`val` arrays by
    /// appending, so the buffer length is the number of entries assembled
    /// so far.
    ///
    /// # Errors
    ///
    /// Returns an error when the value cannot be represented in the buffer's
    /// element type (including appending `Missing`).
    pub fn push(&mut self, value: Value) -> Result<(), RuntimeError> {
        if value.is_missing() {
            return Err(RuntimeError::UnexpectedMissing { context: "a buffer append".into() });
        }
        match self {
            Buffer::I64(v) => v.push(value.as_int()?),
            Buffer::F64(v) => v.push(value.as_float()?),
            Buffer::U8(v) => v.push(value.as_float()?.clamp(0.0, 255.0).round() as u8),
            Buffer::Bool(v) => v.push(value.as_bool()?),
        }
        Ok(())
    }

    /// Remove every element while keeping the allocated capacity.
    ///
    /// This is the zero-allocation reset for growable (sparse-output)
    /// buffers: re-running a kernel truncates and refills the same
    /// allocation instead of replacing it with a fresh `Vec`.
    pub fn clear(&mut self) {
        match self {
            Buffer::I64(v) => v.clear(),
            Buffer::F64(v) => v.clear(),
            Buffer::U8(v) => v.clear(),
            Buffer::Bool(v) => v.clear(),
        }
    }

    /// Fill every element with `value` (used to re-initialise outputs
    /// between benchmark repetitions).
    ///
    /// # Errors
    ///
    /// Returns an error when the value cannot be represented.
    pub fn fill(&mut self, value: Value) -> Result<(), RuntimeError> {
        match self {
            Buffer::I64(v) => {
                let x = value.as_int()?;
                v.iter_mut().for_each(|e| *e = x);
            }
            Buffer::F64(v) => {
                let x = value.as_float()?;
                v.iter_mut().for_each(|e| *e = x);
            }
            Buffer::U8(v) => {
                let x = value.as_float()?.clamp(0.0, 255.0).round() as u8;
                v.iter_mut().for_each(|e| *e = x);
            }
            Buffer::Bool(v) => {
                let x = value.as_bool()?;
                v.iter_mut().for_each(|e| *e = x);
            }
        }
        Ok(())
    }

    /// View the buffer as a slice of floats, converting lazily.
    ///
    /// This is a convenience for tests and benchmark harnesses that want to
    /// compare outputs regardless of element type.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            Buffer::I64(v) => v.iter().map(|&x| x as f64).collect(),
            Buffer::F64(v) => v.to_vec(),
            Buffer::U8(v) => v.iter().map(|&x| x as f64).collect(),
            Buffer::Bool(v) => v.iter().map(|&x| if x { 1.0 } else { 0.0 }).collect(),
        }
    }

    /// Borrow the underlying `i64` data as a contiguous (64-byte-aligned)
    /// slice, if this is an integer buffer.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Buffer::I64(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Borrow the underlying `f64` data as a contiguous (64-byte-aligned)
    /// slice, if this is a float buffer.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Buffer::F64(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// Mutably borrow the underlying `i64` data as a contiguous slice,
    /// if this is an integer buffer.
    pub fn as_i64_mut(&mut self) -> Option<&mut [i64]> {
        match self {
            Buffer::I64(v) => Some(v.as_mut_slice()),
            _ => None,
        }
    }

    /// Mutably borrow the underlying `f64` data as a contiguous slice,
    /// if this is a float buffer.
    pub fn as_f64_mut(&mut self) -> Option<&mut [f64]> {
        match self {
            Buffer::F64(v) => Some(v.as_mut_slice()),
            _ => None,
        }
    }
}

/// The set of all buffers a compiled kernel reads and writes.
#[derive(Debug, Clone, Default)]
pub struct BufferSet {
    bufs: Vec<Buffer>,
    names: Vec<String>,
}

impl BufferSet {
    /// Create an empty buffer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a buffer under `name`, returning its id.
    pub fn add(&mut self, name: &str, buf: Buffer) -> BufId {
        let id = BufId(self.bufs.len() as u32);
        self.bufs.push(buf);
        self.names.push(name.to_string());
        id
    }

    /// Number of registered buffers.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// Whether no buffers are registered.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Borrow a buffer.
    pub fn get(&self, id: BufId) -> &Buffer {
        &self.bufs[id.index()]
    }

    /// Mutably borrow a buffer.
    pub fn get_mut(&mut self, id: BufId) -> &mut Buffer {
        &mut self.bufs[id.index()]
    }

    /// Replace the contents of a buffer (used to rebind inputs between
    /// benchmark repetitions without recompiling).
    pub fn replace(&mut self, id: BufId, buf: Buffer) {
        self.bufs[id.index()] = buf;
    }

    /// The registered name of a buffer.
    pub fn name(&self, id: BufId) -> &str {
        &self.names[id.index()]
    }

    /// Find a buffer id by its registered name, if present.
    pub fn lookup(&self, name: &str) -> Option<BufId> {
        self.names.iter().position(|n| n == name).map(|i| BufId(i as u32))
    }

    /// Iterate over `(id, name, buffer)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (BufId, &str, &Buffer)> + '_ {
        self.bufs
            .iter()
            .zip(self.names.iter())
            .enumerate()
            .map(|(i, (b, n))| (BufId(i as u32), n.as_str(), b))
    }
}

/// The buffer-access surface the VM dispatch loop needs, abstracted so
/// the parallel runtime (`crate::par`) can substitute a sharded view —
/// shared reads from the master set, private per-shard copies for the
/// buffers a sharded loop writes — without duplicating the dispatch loop.
pub(crate) trait VmBufs {
    /// Borrow a buffer for reading.
    fn get(&self, id: BufId) -> &Buffer;
    /// Borrow a buffer for writing.
    fn get_mut(&mut self, id: BufId) -> &mut Buffer;
    /// The registered name of a buffer (for error messages).
    fn name(&self, id: BufId) -> &str;
}

impl VmBufs for BufferSet {
    #[inline]
    fn get(&self, id: BufId) -> &Buffer {
        BufferSet::get(self, id)
    }
    #[inline]
    fn get_mut(&mut self, id: BufId) -> &mut Buffer {
        BufferSet::get_mut(self, id)
    }
    #[inline]
    fn name(&self, id: BufId) -> &str {
        BufferSet::name(self, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip_all_types() {
        let mut bufs = BufferSet::new();
        let a = bufs.add("a", Buffer::I64(vec![0; 3].into()));
        let b = bufs.add("b", Buffer::F64(vec![0.0; 3].into()));
        let c = bufs.add("c", Buffer::U8(vec![0; 3]));
        let d = bufs.add("d", Buffer::Bool(vec![false; 3]));

        bufs.get_mut(a).store(1, Value::Int(7), None).unwrap();
        bufs.get_mut(b).store(2, Value::Float(2.5), None).unwrap();
        bufs.get_mut(c).store(0, Value::Float(300.0), None).unwrap();
        bufs.get_mut(d).store(1, Value::Bool(true), None).unwrap();

        assert_eq!(bufs.get(a).load(1), Value::Int(7));
        assert_eq!(bufs.get(b).load(2), Value::Float(2.5));
        assert_eq!(bufs.get(c).load(0), Value::Float(255.0)); // clamped
        assert_eq!(bufs.get(d).load(1), Value::Bool(true));
    }

    #[test]
    fn reducing_store_accumulates() {
        let mut buf = Buffer::F64(vec![1.0].into());
        buf.store(0, Value::Float(2.0), Some(BinOp::Add)).unwrap();
        buf.store(0, Value::Float(4.0), Some(BinOp::Max)).unwrap();
        assert_eq!(buf.load(0), Value::Float(4.0));
    }

    #[test]
    fn storing_missing_is_an_error() {
        let mut buf = Buffer::F64(vec![0.0].into());
        let err = buf.store(0, Value::Missing, None).unwrap_err();
        assert!(matches!(err, RuntimeError::UnexpectedMissing { .. }));
    }

    #[test]
    fn push_grows_every_buffer_type() {
        let mut i = Buffer::I64(vec![0].into());
        i.push(Value::Int(7)).unwrap();
        assert_eq!(i.as_i64(), Some(&[0, 7][..]));
        let mut f = Buffer::F64(vec![].into());
        f.push(Value::Float(2.5)).unwrap();
        assert_eq!(f.as_f64(), Some(&[2.5][..]));
        let mut u = Buffer::U8(vec![]);
        u.push(Value::Float(300.0)).unwrap();
        assert_eq!(u.load(0), Value::Float(255.0)); // clamped
        let mut b = Buffer::Bool(vec![]);
        b.push(Value::Bool(true)).unwrap();
        assert_eq!(b.load(0), Value::Bool(true));
    }

    #[test]
    fn pushing_missing_is_an_error() {
        let mut buf = Buffer::F64(vec![].into());
        let err = buf.push(Value::Missing).unwrap_err();
        assert!(matches!(err, RuntimeError::UnexpectedMissing { .. }));
        assert!(buf.is_empty(), "a failed push must not grow the buffer");
    }

    #[test]
    fn lookup_by_name() {
        let mut bufs = BufferSet::new();
        let a = bufs.add("A_pos", Buffer::I64(vec![].into()));
        assert_eq!(bufs.lookup("A_pos"), Some(a));
        assert_eq!(bufs.lookup("nope"), None);
        assert_eq!(bufs.name(a), "A_pos");
    }

    #[test]
    fn fill_resets_contents() {
        let mut buf = Buffer::F64(vec![1.0, 2.0, 3.0].into());
        buf.fill(Value::Float(0.0)).unwrap();
        assert_eq!(buf.to_f64_vec(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn to_f64_vec_converts_all_types() {
        assert_eq!(Buffer::I64(vec![1, 2].into()).to_f64_vec(), vec![1.0, 2.0]);
        assert_eq!(Buffer::U8(vec![3]).to_f64_vec(), vec![3.0]);
        assert_eq!(Buffer::Bool(vec![true, false]).to_f64_vec(), vec![1.0, 0.0]);
    }

    fn assert_aligned<T>(v: &AlignedVec<T>) {
        if !v.is_empty() {
            assert_eq!(
                v.as_slice().as_ptr() as usize % LANE_ALIGN,
                0,
                "live range must start on a {LANE_ALIGN}-byte boundary"
            );
        }
    }

    #[test]
    fn aligned_vec_from_vec_is_lane_aligned() {
        let v: AlignedVec<f64> = vec![1.0, 2.0, 3.0].into();
        assert_aligned(&v);
        assert_eq!(v.as_slice(), &[1.0, 2.0, 3.0]);
        let w: AlignedVec<i64> = (0..17).collect();
        assert_aligned(&w);
        assert_eq!(w.len(), 17);
    }

    #[test]
    fn aligned_vec_stays_aligned_across_growth() {
        let mut v: AlignedVec<f64> = AlignedVec::new();
        for i in 0..1000 {
            v.push(i as f64);
            assert_aligned(&v);
        }
        assert_eq!(v.len(), 1000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as f64));

        v.clear();
        assert!(v.is_empty());
        v.extend_from_slice(&[7.0; 100]);
        assert_aligned(&v);
        assert_eq!(v.len(), 100);

        v.reserve(4096);
        assert_aligned(&v);
        v.resize(513, 0.5);
        assert_aligned(&v);
        assert_eq!(v[512], 0.5);
        assert_eq!(v[99], 7.0);
        v.truncate(3);
        assert_eq!(v.as_slice(), &[7.0, 7.0, 7.0]);
        assert_aligned(&v);
    }

    #[test]
    fn aligned_vec_clone_reanchors() {
        let mut v: AlignedVec<i64> = AlignedVec::new();
        for i in 0..100 {
            v.push(i);
        }
        let c = v.clone();
        assert_aligned(&c);
        assert_eq!(c, v);
    }

    #[test]
    fn buffer_lanes_are_aligned_and_mutable() {
        let mut f = Buffer::F64(vec![1.0, 2.0].into());
        let lanes = f.as_f64_mut().expect("f64 lanes");
        assert_eq!(lanes.as_ptr() as usize % LANE_ALIGN, 0);
        lanes[0] = 9.0;
        assert_eq!(f.as_f64(), Some(&[9.0, 2.0][..]));

        let mut i = Buffer::I64(vec![3, 4].into());
        let lanes = i.as_i64_mut().expect("i64 lanes");
        assert_eq!(lanes.as_ptr() as usize % LANE_ALIGN, 0);
        lanes[1] = -1;
        assert_eq!(i.as_i64(), Some(&[3, -1][..]));

        assert!(Buffer::U8(vec![0]).clone().as_f64_mut().is_none());
        assert!(Buffer::Bool(vec![true]).clone().as_i64_mut().is_none());
    }

    #[test]
    fn iter_yields_all_buffers() {
        let mut bufs = BufferSet::new();
        bufs.add("x", Buffer::I64(vec![1].into()));
        bufs.add("y", Buffer::F64(vec![2.0].into()));
        let names: Vec<_> = bufs.iter().map(|(_, n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["x", "y"]);
        assert_eq!(bufs.len(), 2);
    }
}
