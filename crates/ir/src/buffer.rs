//! Typed flat buffers: the runtime storage the generated code reads and
//! writes.
//!
//! Every array mentioned by a level format (`pos`, `idx`, `ofs`, `val`, ...)
//! and every output tensor becomes one [`Buffer`] registered in a
//! [`BufferSet`].  Buffers are monomorphically typed so the interpreter's
//! inner loop avoids boxing every element.

use std::fmt;

use crate::error::RuntimeError;
use crate::expr::BinOp;
use crate::value::Value;

/// Identifier of a buffer within a [`BufferSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub(crate) u32);

impl BufId {
    /// The dense index of this buffer in its [`BufferSet`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BufId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A typed, flat runtime array.
#[derive(Debug, Clone, PartialEq)]
pub enum Buffer {
    /// Signed 64-bit integers (positions, coordinates, run boundaries).
    I64(Vec<i64>),
    /// 64-bit floats (most values arrays).
    F64(Vec<f64>),
    /// Unsigned bytes (image data).
    U8(Vec<u8>),
    /// Booleans (bitmaps / bytemaps).
    Bool(Vec<bool>),
}

impl Buffer {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Buffer::I64(v) => v.len(),
            Buffer::F64(v) => v.len(),
            Buffer::U8(v) => v.len(),
            Buffer::Bool(v) => v.len(),
        }
    }

    /// Whether the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Load element `i` as a [`Value`].
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds; the interpreter performs its own
    /// bounds check first in order to report a friendlier error.
    pub fn load(&self, i: usize) -> Value {
        match self {
            Buffer::I64(v) => Value::Int(v[i]),
            Buffer::F64(v) => Value::Float(v[i]),
            Buffer::U8(v) => Value::Float(v[i] as f64),
            Buffer::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Store `value` into element `i`, optionally combining with the current
    /// element through `reduce` (e.g. `Some(BinOp::Add)` for `+=`).
    ///
    /// # Errors
    ///
    /// Returns an error when the value cannot be represented in the buffer's
    /// element type (including storing `Missing`).
    pub fn store(
        &mut self,
        i: usize,
        value: Value,
        reduce: Option<BinOp>,
    ) -> Result<(), RuntimeError> {
        let value = match reduce {
            Some(op) => Value::binop(op, self.load(i), value)?,
            None => value,
        };
        if value.is_missing() {
            return Err(RuntimeError::UnexpectedMissing { context: "a buffer store".into() });
        }
        match self {
            Buffer::I64(v) => v[i] = value.as_int()?,
            Buffer::F64(v) => v[i] = value.as_float()?,
            Buffer::U8(v) => v[i] = value.as_float()?.clamp(0.0, 255.0).round() as u8,
            Buffer::Bool(v) => v[i] = value.as_bool()?,
        }
        Ok(())
    }

    /// Append `value` at the end of the buffer, growing it by one element.
    ///
    /// This is the runtime primitive behind the IR's `Append` statement:
    /// sparse output assembly builds its `pos`/`idx`/`val` arrays by
    /// appending, so the buffer length is the number of entries assembled
    /// so far.
    ///
    /// # Errors
    ///
    /// Returns an error when the value cannot be represented in the buffer's
    /// element type (including appending `Missing`).
    pub fn push(&mut self, value: Value) -> Result<(), RuntimeError> {
        if value.is_missing() {
            return Err(RuntimeError::UnexpectedMissing { context: "a buffer append".into() });
        }
        match self {
            Buffer::I64(v) => v.push(value.as_int()?),
            Buffer::F64(v) => v.push(value.as_float()?),
            Buffer::U8(v) => v.push(value.as_float()?.clamp(0.0, 255.0).round() as u8),
            Buffer::Bool(v) => v.push(value.as_bool()?),
        }
        Ok(())
    }

    /// Remove every element while keeping the allocated capacity.
    ///
    /// This is the zero-allocation reset for growable (sparse-output)
    /// buffers: re-running a kernel truncates and refills the same
    /// allocation instead of replacing it with a fresh `Vec`.
    pub fn clear(&mut self) {
        match self {
            Buffer::I64(v) => v.clear(),
            Buffer::F64(v) => v.clear(),
            Buffer::U8(v) => v.clear(),
            Buffer::Bool(v) => v.clear(),
        }
    }

    /// Fill every element with `value` (used to re-initialise outputs
    /// between benchmark repetitions).
    ///
    /// # Errors
    ///
    /// Returns an error when the value cannot be represented.
    pub fn fill(&mut self, value: Value) -> Result<(), RuntimeError> {
        match self {
            Buffer::I64(v) => {
                let x = value.as_int()?;
                v.iter_mut().for_each(|e| *e = x);
            }
            Buffer::F64(v) => {
                let x = value.as_float()?;
                v.iter_mut().for_each(|e| *e = x);
            }
            Buffer::U8(v) => {
                let x = value.as_float()?.clamp(0.0, 255.0).round() as u8;
                v.iter_mut().for_each(|e| *e = x);
            }
            Buffer::Bool(v) => {
                let x = value.as_bool()?;
                v.iter_mut().for_each(|e| *e = x);
            }
        }
        Ok(())
    }

    /// View the buffer as a slice of floats, converting lazily.
    ///
    /// This is a convenience for tests and benchmark harnesses that want to
    /// compare outputs regardless of element type.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            Buffer::I64(v) => v.iter().map(|&x| x as f64).collect(),
            Buffer::F64(v) => v.clone(),
            Buffer::U8(v) => v.iter().map(|&x| x as f64).collect(),
            Buffer::Bool(v) => v.iter().map(|&x| if x { 1.0 } else { 0.0 }).collect(),
        }
    }

    /// Borrow the underlying `i64` data, if this is an integer buffer.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Buffer::I64(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the underlying `f64` data, if this is a float buffer.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Buffer::F64(v) => Some(v),
            _ => None,
        }
    }
}

/// The set of all buffers a compiled kernel reads and writes.
#[derive(Debug, Clone, Default)]
pub struct BufferSet {
    bufs: Vec<Buffer>,
    names: Vec<String>,
}

impl BufferSet {
    /// Create an empty buffer set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a buffer under `name`, returning its id.
    pub fn add(&mut self, name: &str, buf: Buffer) -> BufId {
        let id = BufId(self.bufs.len() as u32);
        self.bufs.push(buf);
        self.names.push(name.to_string());
        id
    }

    /// Number of registered buffers.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// Whether no buffers are registered.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Borrow a buffer.
    pub fn get(&self, id: BufId) -> &Buffer {
        &self.bufs[id.index()]
    }

    /// Mutably borrow a buffer.
    pub fn get_mut(&mut self, id: BufId) -> &mut Buffer {
        &mut self.bufs[id.index()]
    }

    /// Replace the contents of a buffer (used to rebind inputs between
    /// benchmark repetitions without recompiling).
    pub fn replace(&mut self, id: BufId, buf: Buffer) {
        self.bufs[id.index()] = buf;
    }

    /// The registered name of a buffer.
    pub fn name(&self, id: BufId) -> &str {
        &self.names[id.index()]
    }

    /// Find a buffer id by its registered name, if present.
    pub fn lookup(&self, name: &str) -> Option<BufId> {
        self.names.iter().position(|n| n == name).map(|i| BufId(i as u32))
    }

    /// Iterate over `(id, name, buffer)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (BufId, &str, &Buffer)> + '_ {
        self.bufs
            .iter()
            .zip(self.names.iter())
            .enumerate()
            .map(|(i, (b, n))| (BufId(i as u32), n.as_str(), b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip_all_types() {
        let mut bufs = BufferSet::new();
        let a = bufs.add("a", Buffer::I64(vec![0; 3]));
        let b = bufs.add("b", Buffer::F64(vec![0.0; 3]));
        let c = bufs.add("c", Buffer::U8(vec![0; 3]));
        let d = bufs.add("d", Buffer::Bool(vec![false; 3]));

        bufs.get_mut(a).store(1, Value::Int(7), None).unwrap();
        bufs.get_mut(b).store(2, Value::Float(2.5), None).unwrap();
        bufs.get_mut(c).store(0, Value::Float(300.0), None).unwrap();
        bufs.get_mut(d).store(1, Value::Bool(true), None).unwrap();

        assert_eq!(bufs.get(a).load(1), Value::Int(7));
        assert_eq!(bufs.get(b).load(2), Value::Float(2.5));
        assert_eq!(bufs.get(c).load(0), Value::Float(255.0)); // clamped
        assert_eq!(bufs.get(d).load(1), Value::Bool(true));
    }

    #[test]
    fn reducing_store_accumulates() {
        let mut buf = Buffer::F64(vec![1.0]);
        buf.store(0, Value::Float(2.0), Some(BinOp::Add)).unwrap();
        buf.store(0, Value::Float(4.0), Some(BinOp::Max)).unwrap();
        assert_eq!(buf.load(0), Value::Float(4.0));
    }

    #[test]
    fn storing_missing_is_an_error() {
        let mut buf = Buffer::F64(vec![0.0]);
        let err = buf.store(0, Value::Missing, None).unwrap_err();
        assert!(matches!(err, RuntimeError::UnexpectedMissing { .. }));
    }

    #[test]
    fn push_grows_every_buffer_type() {
        let mut i = Buffer::I64(vec![0]);
        i.push(Value::Int(7)).unwrap();
        assert_eq!(i.as_i64(), Some(&[0, 7][..]));
        let mut f = Buffer::F64(vec![]);
        f.push(Value::Float(2.5)).unwrap();
        assert_eq!(f.as_f64(), Some(&[2.5][..]));
        let mut u = Buffer::U8(vec![]);
        u.push(Value::Float(300.0)).unwrap();
        assert_eq!(u.load(0), Value::Float(255.0)); // clamped
        let mut b = Buffer::Bool(vec![]);
        b.push(Value::Bool(true)).unwrap();
        assert_eq!(b.load(0), Value::Bool(true));
    }

    #[test]
    fn pushing_missing_is_an_error() {
        let mut buf = Buffer::F64(vec![]);
        let err = buf.push(Value::Missing).unwrap_err();
        assert!(matches!(err, RuntimeError::UnexpectedMissing { .. }));
        assert!(buf.is_empty(), "a failed push must not grow the buffer");
    }

    #[test]
    fn lookup_by_name() {
        let mut bufs = BufferSet::new();
        let a = bufs.add("A_pos", Buffer::I64(vec![]));
        assert_eq!(bufs.lookup("A_pos"), Some(a));
        assert_eq!(bufs.lookup("nope"), None);
        assert_eq!(bufs.name(a), "A_pos");
    }

    #[test]
    fn fill_resets_contents() {
        let mut buf = Buffer::F64(vec![1.0, 2.0, 3.0]);
        buf.fill(Value::Float(0.0)).unwrap();
        assert_eq!(buf.to_f64_vec(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn to_f64_vec_converts_all_types() {
        assert_eq!(Buffer::I64(vec![1, 2]).to_f64_vec(), vec![1.0, 2.0]);
        assert_eq!(Buffer::U8(vec![3]).to_f64_vec(), vec![3.0]);
        assert_eq!(Buffer::Bool(vec![true, false]).to_f64_vec(), vec![1.0, 0.0]);
    }

    #[test]
    fn iter_yields_all_buffers() {
        let mut bufs = BufferSet::new();
        bufs.add("x", Buffer::I64(vec![1]));
        bufs.add("y", Buffer::F64(vec![2.0]));
        let names: Vec<_> = bufs.iter().map(|(_, n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["x", "y"]);
        assert_eq!(bufs.len(), 2);
    }
}
